"""Opt-in perf smoke: the batched HOP kernel must actually be faster.

Correctness of the batched path is pinned bit-for-bit by
``test_core_batched.py``; this module guards the *point* of the kernel —
throughput on huge_conference-scale sessions.  Timing tests are
machine-sensitive, so they are opt-in (``REPRO_PERF=1``) and assert a
conservative floor (2x) below the 3x the benchmarks demonstrate; the
BENCH targets in ``benchmarks/bench_core_perf.py`` capture the full
before/after hops/sec numbers.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.workloads.scenarios import ScenarioParams, scenario_conference

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_PERF"),
        reason="perf smoke is opt-in; set REPRO_PERF=1",
    ),
]

#: Conservative floor for the opt-in smoke; benches document >= 3x.
MIN_SPEEDUP = 2.0


def hops_per_second(batched: bool, conference, evaluator, num_hops: int) -> float:
    solver = MarkovAssignmentSolver(
        evaluator,
        nearest_assignment(conference),
        config=MarkovConfig(beta=64.0, batched=batched),
        rng=np.random.default_rng(0),
    )
    solver.run(20)  # warm caches outside the timed window
    start = time.perf_counter()
    solver.run(num_hops)
    return num_hops / (time.perf_counter() - start)


def test_batched_hop_faster_on_huge_conference_scale():
    """huge_conference-scale draw (500 users over 384 sites)."""
    conference = scenario_conference(
        seed=11, params=ScenarioParams(num_user_sites=384, num_users=500)
    )
    evaluator = ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )
    reference = hops_per_second(False, conference, evaluator, 150)
    batched = hops_per_second(True, conference, evaluator, 150)
    assert batched > MIN_SPEEDUP * reference, (
        f"batched {batched:.0f} hops/s vs reference {reference:.0f} hops/s "
        f"(< {MIN_SPEEDUP}x)"
    )
