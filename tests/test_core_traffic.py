"""Tests for repro.core.traffic — hand-computed mu accounting.

Fixture geometry (conftest): agents L0/L1, D = 20 ms, H[L0,u0]=10,
H[L1,u1]=8.  Bitrates: 720p=5, 480p=2.5, 360p=1.
"""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.traffic import (
    compute_session_usage,
    stream_mu,
    total_inter_agent_traffic,
)
from repro.errors import ModelError
from tests.conftest import build_pair_conference


def split_assignment(conf, task_agent=0):
    """u0 on L0, u1 on L1 (and u2 on L0 when present)."""
    ua = np.array([0, 1] + [0] * (conf.num_users - 2))
    ta = np.full(conf.theta_sum, task_agent)
    return Assignment(ua, ta)


class TestNoTranscoding:
    """u0 up 720p / u1 demands 720p; u1 up 480p / u0 demands 480p."""

    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "480p", "480p", "720p")

    def test_raw_streams_cross_once(self, conf):
        usage = compute_session_usage(conf, split_assignment(conf), 0)
        # u0's 5 Mbps raw goes L0 -> L1; u1's 2.5 Mbps goes L1 -> L0.
        assert usage.inter_in[0] == pytest.approx(2.5)
        assert usage.inter_in[1] == pytest.approx(5.0)
        assert usage.total_inter_agent_mbps == pytest.approx(7.5)

    def test_lastmile_terms(self, conf):
        usage = compute_session_usage(conf, split_assignment(conf), 0)
        # download = own users' upstream + incoming inter-agent.
        assert usage.download[0] == pytest.approx(5.0 + 2.5)
        assert usage.download[1] == pytest.approx(2.5 + 5.0)
        # upload = streams delivered to own users + outgoing inter-agent.
        assert usage.upload[0] == pytest.approx(2.5 + 5.0)
        assert usage.upload[1] == pytest.approx(5.0 + 2.5)

    def test_co_located_users_generate_no_inter_traffic(self, conf):
        both_l0 = Assignment(np.array([0, 0]), np.zeros(0, dtype=np.int64))
        usage = compute_session_usage(conf, both_l0, 0)
        assert usage.total_inter_agent_mbps == 0.0

    def test_no_transcodes(self, conf):
        usage = compute_session_usage(conf, split_assignment(conf), 0)
        assert usage.transcodes.sum() == 0


class TestWithTranscoding:
    """u0 up 720p, u1 demands 480p (one task); u1 up 360p demanded raw."""

    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "360p", "360p", "480p")

    def test_transcode_at_source_agent(self, conf):
        usage = compute_session_usage(conf, split_assignment(conf, task_agent=0), 0)
        # Transcoded 2.5 ships L0 -> L1; raw 720p never crosses.
        assert usage.inter_in[1] == pytest.approx(2.5)
        # u1's raw 1.0 ships L1 -> L0.
        assert usage.inter_in[0] == pytest.approx(1.0)
        assert usage.transcodes[0] == 1
        assert usage.transcodes[1] == 0

    def test_transcode_at_destination_agent(self, conf):
        usage = compute_session_usage(conf, split_assignment(conf, task_agent=1), 0)
        # Raw 5.0 ships L0 -> L1 for transcoding there; output is local.
        assert usage.inter_in[1] == pytest.approx(5.0)
        assert usage.transcodes[1] == 1

    def test_stream_mu_matrix_orientation(self, conf):
        mu = stream_mu(conf, split_assignment(conf, task_agent=0), 0, source=0)
        assert mu[0, 1] == pytest.approx(2.5)  # from L0 into L1
        assert mu[1, 0] == 0.0

    def test_mu_excludes_source_own_agent(self, conf):
        """The published (1 - lambda_lu) factor: transcoded traffic back
        into the source's own agent is not charged by mu."""
        # Task at L1, destination u1 also at L1 -> nothing flows back to L0.
        mu = stream_mu(conf, split_assignment(conf, task_agent=1), 0, source=0)
        assert mu[1, 0] == 0.0

    def test_unassigned_user_raises(self, conf):
        with pytest.raises(ModelError):
            compute_session_usage(conf, Assignment.empty(conf), 0)


class TestSharedTranscodeOutput:
    """Three users: u1 and u2 both demand 480p of u0's 720p stream."""

    @pytest.fixture()
    def conf(self):
        from tests.conftest import build_shared_dest_conference

        return build_shared_dest_conference()

    def test_one_task_serves_two_destinations(self, conf):
        assert conf.theta_sum == 2  # (0->1) and (0->2)
        # u0, u2 on L0; u1 on L1; both tasks at L0.
        assignment = Assignment(np.array([0, 1, 0]), np.array([0, 0]))
        usage = compute_session_usage(conf, assignment, 0)
        # A single (u0, 480p) task occupies one slot...
        assert usage.transcodes[0] == 1
        # ...and one 2.5 Mbps copy crosses to L1 (u2 consumes locally).
        mu = stream_mu(conf, assignment, 0, source=0)
        assert mu[0, 1] == pytest.approx(2.5)

    def test_split_tasks_occupy_two_slots(self, conf):
        # Same demands, but the two pairs are placed on different agents.
        assignment = Assignment(np.array([0, 1, 0]), np.array([0, 1]))
        usage = compute_session_usage(conf, assignment, 0)
        assert usage.transcodes[0] == 1
        assert usage.transcodes[1] == 1


class TestTotals:
    def test_total_matches_session_sum(self, proto_conf):
        from repro.core.nearest import nearest_assignment

        assignment = nearest_assignment(proto_conf)
        total = total_inter_agent_traffic(proto_conf, assignment)
        by_session = sum(
            compute_session_usage(proto_conf, assignment, sid).total_inter_agent_mbps
            for sid in range(proto_conf.num_sessions)
        )
        assert total == pytest.approx(by_session)

    def test_inter_in_equals_inter_out_globally(self, proto_conf):
        from repro.core.nearest import nearest_assignment

        assignment = nearest_assignment(proto_conf)
        for sid in range(proto_conf.num_sessions):
            usage = compute_session_usage(proto_conf, assignment, sid)
            assert usage.inter_in.sum() == pytest.approx(usage.inter_out.sum())
