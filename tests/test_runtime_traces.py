"""Property/regression suite for the trace layer (ISSUE 4 tentpole).

Locks the open-loop trace player and the stochastic session processes:

* every generated trace lowers into a valid ``DynamicsSchedule`` —
  canonical event order, no double arrivals, the conference never
  empties — across process kinds and seeds;
* seeded generation is bit-for-bit deterministic, and empirical
  inter-arrival / holding statistics converge to the configured means;
* the CSV/JSONL codecs round-trip exactly and name the offending line
  on every malformed input;
* intra-timestamp ordering is deterministic (arrivals < resizes <
  departures, stable by sid) regardless of construction order — the
  fix for the order-dependent same-``time_s`` behaviour;
* the player streams unbounded generators incrementally and a
  player-fed simulation reproduces the schedule-fed one bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import SimulationError, SpecError
from repro.runtime.dynamics import (
    DynamicsSchedule,
    SessionArrival,
    SessionDeparture,
    SessionResize,
    canonical_event_order,
)
from repro.runtime.simulation import ConferencingSimulator, SimulationConfig
from repro.runtime.traces import (
    HOLDING_KINDS,
    PROCESS_KINDS,
    SessionProcess,
    TraceEvent,
    TracePlayer,
    dump_trace,
    format_trace,
    load_trace,
    parse_trace,
    replay_speed,
    schedule_from_trace,
    sort_trace,
    trace_from_schedule,
    validate_trace,
)
from repro.workloads.prototype import prototype_conference


def make_process(kind: str = "poisson", seed: int = 0, **overrides) -> SessionProcess:
    params = dict(
        kind=kind,
        rate_per_s=0.2,
        mean_holding_s=25.0,
        initial=2,
        max_sessions=8,
        seed=seed,
    )
    if kind == "mmpp":
        params["burst_rate_per_s"] = 0.8
    params.update(overrides)
    return SessionProcess(**params)


def active_trajectory(events) -> list[int]:
    """Active-session counts after each event (canonical order)."""
    active: set[int] = set()
    counts = []
    for event in sort_trace(events):
        if event.kind == "arrive":
            active.add(event.sid)
        elif event.kind == "depart":
            active.remove(event.sid)
        counts.append(len(active))
    return counts


# --------------------------------------------------------------------- #
# Generated traces are always valid                                     #
# --------------------------------------------------------------------- #


class TestGeneratedTracesAreValid:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_every_generated_trace_lowers_to_a_schedule(self, kind, seed):
        events = make_process(kind, seed=seed).trace(400.0)
        schedule = schedule_from_trace(events, max_sessions=8)
        assert schedule.initial_sids == (0, 1)
        # Events are canonically ordered and within the horizon.
        times = [event.time_s for event in events]
        assert times == sorted(times)
        assert all(0 <= t <= 400.0 for t in times)

    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    @pytest.mark.parametrize("seed", range(8))
    def test_never_empties_and_never_double_arrives(self, kind, seed):
        events = make_process(kind, seed=seed, max_sessions=3).trace(600.0)
        counts = active_trajectory(events)  # raises KeyError on bad traces
        assert min(counts) >= 1
        assert max(counts) <= 3

    @pytest.mark.parametrize("holding", HOLDING_KINDS)
    def test_holding_kinds_generate(self, holding):
        events = make_process(holding=holding, holding_sigma=0.9).trace(300.0)
        assert schedule_from_trace(events)

    def test_pool_exhaustion_blocks_arrivals(self):
        # rate*holding >> pool: the pool saturates, arrivals are blocked.
        events = make_process(
            rate_per_s=2.0, mean_holding_s=500.0, max_sessions=4
        ).trace(400.0)
        counts = active_trajectory(events)
        assert max(counts) == 4
        sids = {event.sid for event in events}
        assert sids <= set(range(4))

    def test_saturated_pool_terminates_at_the_horizon(self):
        """Regression: a saturated pool with holding times far beyond
        the horizon must return promptly (blocked arrivals yield
        nothing, so the generator itself has to stop at the horizon
        instead of spinning through ~rate*holding rejected candidates)."""
        events = SessionProcess(
            rate_per_s=10.0,
            mean_holding_s=1e7,
            initial=2,
            max_sessions=2,
            seed=0,
        ).trace(100.0)
        assert {e.sid for e in events} == {0, 1}
        assert all(e.time_s <= 100.0 for e in events)

    def test_departed_sids_are_reused_lowest_first(self):
        events = make_process(
            rate_per_s=1.0, mean_holding_s=2.0, max_sessions=3, seed=5
        ).trace(500.0)
        arrivals = [e.sid for e in events if e.kind == "arrive"]
        # A tight pool with fast churn must recycle sids.
        assert len(arrivals) > 3 * len(set(arrivals))


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_same_seed_bit_for_bit(self, kind):
        first = make_process(kind, seed=42).trace(500.0)
        second = make_process(kind, seed=42).trace(500.0)
        assert first == second

    def test_different_seeds_differ(self):
        assert make_process(seed=1).trace(300.0) != make_process(seed=2).trace(300.0)

    def test_stream_is_lazy_and_unbounded(self):
        stream = make_process(rate_per_s=1.0, mean_holding_s=5.0).stream()
        horizon = 0.0
        for _ in range(500):
            event = next(stream)
            assert event.time_s >= horizon or event.time_s == 0.0
            horizon = max(horizon, event.time_s)
        assert horizon > 100.0  # far past any materialized default

    def test_trace_prefix_matches_stream(self):
        process = make_process(seed=9)
        materialized = process.trace(200.0)
        streamed = []
        for event in process.stream():
            if event.time_s > 200.0:
                break
            streamed.append(event)
        assert tuple(streamed) == materialized


class TestEmpiricalStatistics:
    def test_poisson_interarrival_mean_converges(self):
        rate = 0.5
        events = make_process(
            rate_per_s=rate, mean_holding_s=4.0, max_sessions=64, seed=11
        ).trace(4000.0)
        arrivals = [e.time_s for e in events if e.kind == "arrive"]
        assert len(arrivals) > 1000
        mean = float(np.mean(np.diff(arrivals)))
        assert mean == pytest.approx(1.0 / rate, rel=0.1)

    @pytest.mark.parametrize("holding", HOLDING_KINDS)
    def test_holding_mean_converges(self, holding):
        mean_holding = 6.0
        events = make_process(
            rate_per_s=0.5,
            mean_holding_s=mean_holding,
            holding=holding,
            holding_sigma=0.5,
            max_sessions=64,
            seed=3,
        ).trace(4000.0)
        arrive_at: dict[int, float] = {}
        holds = []
        for event in events:
            if event.kind == "arrive":
                arrive_at[event.sid] = event.time_s
            elif event.kind == "depart":
                holds.append(event.time_s - arrive_at.pop(event.sid))
        assert len(holds) > 500
        assert float(np.mean(holds)) == pytest.approx(mean_holding, rel=0.15)

    def test_mmpp_is_overdispersed_relative_to_poisson(self):
        """Burstiness shows up as an index of dispersion well above 1."""

        def dispersion(events) -> float:
            arrivals = np.array(
                [e.time_s for e in events if e.kind == "arrive"]
            )
            counts, _ = np.histogram(arrivals, bins=np.arange(0, 4000 + 20, 20))
            return float(np.var(counts) / np.mean(counts))

        poisson = make_process(
            rate_per_s=0.3, mean_holding_s=3.0, max_sessions=64, seed=7
        ).trace(4000.0)
        bursty = make_process(
            "mmpp",
            rate_per_s=0.05,
            burst_rate_per_s=1.0,
            mean_burst_s=30.0,
            mean_calm_s=60.0,
            mean_holding_s=3.0,
            max_sessions=64,
            seed=7,
        ).trace(4000.0)
        assert dispersion(poisson) < 1.5
        assert dispersion(bursty) > 2.0

    def test_diurnal_rate_follows_the_cycle(self):
        period = 200.0
        events = make_process(
            "diurnal",
            rate_per_s=0.5,
            diurnal_amplitude=0.9,
            diurnal_period_s=period,
            mean_holding_s=2.0,
            max_sessions=64,
            seed=13,
        ).trace(4000.0)
        arrivals = np.array([e.time_s for e in events if e.kind == "arrive"])
        phase = np.mod(arrivals, period) / period
        # sin > 0 on the first half-period: more arrivals land there.
        peak_share = float(np.mean(phase < 0.5))
        assert peak_share > 0.6


# --------------------------------------------------------------------- #
# File formats                                                          #
# --------------------------------------------------------------------- #


class TestTraceCodecs:
    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_round_trip_exact(self, fmt):
        events = make_process(seed=21).trace(300.0)
        assert parse_trace(format_trace(events, fmt=fmt), fmt=fmt) == events

    def test_file_round_trip_by_suffix(self, tmp_path):
        events = make_process(seed=4).trace(200.0)
        for name in ("trace.csv", "trace.jsonl"):
            path = tmp_path / name
            dump_trace(events, path)
            assert load_trace(path) == events

    def test_comments_blanks_and_header_skipped(self):
        text = "# a comment\n\ntime_s,event,sid\n0,arrive,0\n1.5,depart,0\n"
        events = parse_trace(text)
        assert [(e.time_s, e.kind, e.sid) for e in events] == [
            (0.0, "arrive", 0),
            (1.5, "depart", 0),
        ]

    def test_parse_records_line_numbers(self):
        events = parse_trace("time_s,event,sid\n0,arrive,3\n7,depart,3\n")
        assert [event.line for event in events] == [2, 3]

    @pytest.mark.parametrize(
        "row,fragment",
        [
            ("0,arrive", "expected 'time_s,event,sid'"),
            ("x,arrive,0", "not a number"),
            ("0,arrive,x", "not an integer"),
            ("0,join,0", "unknown event kind"),
            ("-1,arrive,0", "must be finite and >= 0"),
            ("nan,arrive,0", "must be finite and >= 0"),
            ("0,arrive,-2", "sid must be >= 0"),
        ],
    )
    def test_csv_errors_name_the_line(self, row, fragment):
        with pytest.raises(SpecError, match="churn.csv:3"):
            parse_trace(
                f"time_s,event,sid\n0,arrive,0\n{row}\n", origin="churn.csv"
            )
        with pytest.raises(SpecError, match=fragment):
            parse_trace(f"0,arrive,0\n{row}\n")

    @pytest.mark.parametrize(
        "row,fragment",
        [
            ("not json", "not valid JSON"),
            ("[1, 2]", "expected an object"),
            ('{"time_s": 0, "event": "arrive"}', "missing key"),
            ('{"time_s": 0, "event": "arrive", "sid": 0, "x": 1}', "unknown key"),
            ('{"time_s": "a", "event": "arrive", "sid": 0}', "must be a number"),
            ('{"time_s": 0, "event": 1, "sid": 0}', "must be a string"),
            ('{"time_s": 0, "event": "arrive", "sid": 1.5}', "must be an integer"),
        ],
    )
    def test_jsonl_errors_name_the_line(self, row, fragment):
        good = '{"time_s": 0, "event": "arrive", "sid": 0}'
        with pytest.raises(SpecError, match=r"trace:2.*" + fragment):
            parse_trace(f"{good}\n{row}\n", fmt="jsonl")

    def test_unknown_format_rejected(self):
        with pytest.raises(SpecError, match="unknown trace format"):
            parse_trace("", fmt="xml")
        with pytest.raises(SpecError, match="unknown trace format"):
            format_trace((), fmt="xml")

    def test_missing_file_named(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_trace(tmp_path / "nope.csv")


# --------------------------------------------------------------------- #
# Validation / schedule lowering                                        #
# --------------------------------------------------------------------- #


class TestTraceValidation:
    def base(self) -> list[TraceEvent]:
        return [
            TraceEvent(0.0, "arrive", 0),
            TraceEvent(0.0, "arrive", 1),
            TraceEvent(10.0, "arrive", 2),
        ]

    def test_double_arrival_named(self):
        events = self.base() + [TraceEvent(12.0, "arrive", 2, line=9)]
        with pytest.raises(
            SimulationError, match=r"line 9.*arrive sid=2 t=12.*already active"
        ):
            validate_trace(events)

    def test_departure_of_inactive_named(self):
        events = self.base() + [TraceEvent(11.0, "depart", 7)]
        with pytest.raises(
            SimulationError, match=r"depart sid=7 t=11.*departs while inactive"
        ):
            validate_trace(events)

    def test_resize_of_inactive_named(self):
        events = self.base() + [TraceEvent(11.0, "resize", 7)]
        with pytest.raises(SimulationError, match="resizes while inactive"):
            validate_trace(events)

    def test_emptying_departure_named(self):
        events = [
            TraceEvent(0.0, "arrive", 0),
            TraceEvent(5.0, "depart", 0),
        ]
        with pytest.raises(SimulationError, match="empty the conference"):
            validate_trace(events)

    def test_sid_beyond_pool_named(self):
        events = self.base() + [TraceEvent(11.0, "arrive", 12)]
        with pytest.raises(
            SimulationError, match=r"sid=12.*exceeds the workload's session pool"
        ):
            validate_trace(events, max_sessions=4)

    def test_no_initial_sessions_rejected(self):
        with pytest.raises(SimulationError, match="no arrivals at t=0"):
            validate_trace([TraceEvent(3.0, "arrive", 0)])

    def test_schedule_round_trip(self):
        schedule = schedule_from_trace(make_process(seed=8).trace(250.0))
        again = schedule_from_trace(trace_from_schedule(schedule))
        assert again == schedule

    def test_replacement_at_shared_timestamp_is_valid(self):
        """With canonical ordering, a sid can depart at the exact instant
        another arrives without transiently emptying the conference."""
        events = [
            TraceEvent(0.0, "arrive", 0),
            TraceEvent(20.0, "depart", 0),
            TraceEvent(20.0, "arrive", 1),
        ]
        schedule = schedule_from_trace(events)
        assert [type(e).__name__ for e in schedule.events] == [
            "SessionArrival",
            "SessionDeparture",
        ]

    def test_replay_speed_scales_times(self):
        events = make_process(seed=2).trace(200.0)
        fast = replay_speed(events, 2.0)
        assert max(e.time_s for e in fast) == pytest.approx(
            max(e.time_s for e in events) / 2.0
        )
        assert schedule_from_trace(fast)
        with pytest.raises(SpecError, match="replay factor"):
            replay_speed(events, 0.0)


class TestCanonicalIntraTimestampOrder:
    """Regression for the order-dependent same-``time_s`` behaviour."""

    def test_construction_order_no_longer_matters(self):
        forward = DynamicsSchedule(
            initial_sids=(0, 1),
            events=(SessionArrival(40.0, 2), SessionDeparture(40.0, 0)),
        )
        reversed_ = DynamicsSchedule(
            initial_sids=(0, 1),
            events=(SessionDeparture(40.0, 0), SessionArrival(40.0, 2)),
        )
        assert forward == reversed_
        assert [type(e).__name__ for e in forward.events] == [
            "SessionArrival",
            "SessionDeparture",
        ]

    def test_order_within_timestamp_is_kind_then_sid(self):
        schedule = DynamicsSchedule(
            initial_sids=(0, 1, 2),
            events=(
                SessionDeparture(10.0, 2),
                SessionResize(10.0, 1),
                SessionDeparture(10.0, 0),
                SessionArrival(10.0, 5),
                SessionArrival(10.0, 3),
            ),
        )
        assert [(type(e).__name__, e.sid) for e in schedule.events] == [
            ("SessionArrival", 3),
            ("SessionArrival", 5),
            ("SessionResize", 1),
            ("SessionDeparture", 0),
            ("SessionDeparture", 2),
        ]

    def test_same_sid_depart_then_rearrive_at_same_instant_rejected(self):
        """Previously legal-or-illegal depending on tuple order; now it is
        deterministically rejected (the arrival sorts first and collides
        with the still-active session)."""
        for order in [
            (SessionDeparture(10.0, 0), SessionArrival(10.0, 0)),
            (SessionArrival(10.0, 0), SessionDeparture(10.0, 0)),
        ]:
            with pytest.raises(SimulationError, match="arrives twice"):
                DynamicsSchedule(initial_sids=(0, 1), events=order)

    def test_churn_waves_sharing_a_timestamp_arrivals_first(self):
        schedule = DynamicsSchedule.churn(
            4, 2, waves=[(30.0, 0, 1), (30.0, 2, 0)]
        )
        kinds = [type(e).__name__ for e in schedule.events]
        assert kinds == [
            "SessionArrival",
            "SessionArrival",
            "SessionDeparture",
        ]

    def test_canonical_event_order_is_idempotent(self):
        events = [
            SessionDeparture(5.0, 1),
            SessionArrival(5.0, 2),
            SessionArrival(1.0, 9),
        ]
        once = canonical_event_order(events)
        assert canonical_event_order(once) == once


# --------------------------------------------------------------------- #
# The open-loop player                                                  #
# --------------------------------------------------------------------- #


class TestTracePlayer:
    def test_batches_group_shared_timestamps(self):
        schedule = DynamicsSchedule(
            initial_sids=(0, 1),
            events=(
                SessionArrival(10.0, 2),
                SessionDeparture(10.0, 0),
                SessionArrival(25.0, 3),
            ),
        )
        player = TracePlayer.from_schedule(schedule)
        first = player.next_batch()
        assert [type(e).__name__ for e in first] == [
            "SessionArrival",
            "SessionDeparture",
        ]
        assert [e.time_s for e in player.next_batch()] == [25.0]
        assert player.next_batch() == []
        assert player.events_streamed == 3

    def test_horizon_cuts_the_stream_permanently(self):
        player = TracePlayer.from_trace(
            make_process(rate_per_s=1.0, mean_holding_s=3.0).stream()
        )
        drained = 0
        while True:
            batch = player.next_batch(limit_s=30.0)
            if not batch:
                break
            drained += len(batch)
            assert all(e.time_s <= 30.0 for e in batch)
        assert drained > 0
        # Once exhausted, even a wider horizon yields nothing.
        assert player.next_batch(limit_s=math.inf) == []

    def test_out_of_order_stream_rejected(self):
        player = TracePlayer(
            (0, 1), iter([SessionArrival(9.0, 2), SessionArrival(5.0, 3)])
        )
        player.next_batch()
        with pytest.raises(SimulationError, match="out of order"):
            player.next_batch()

    def test_streamed_violations_rejected_incrementally(self):
        player = TracePlayer((0,), iter([SessionDeparture(4.0, 0)]))
        with pytest.raises(SimulationError, match="empty the conference"):
            player.next_batch()
        player = TracePlayer((0,), iter([SessionArrival(4.0, 0)]))
        with pytest.raises(SimulationError, match="arrives twice"):
            player.next_batch()

    def test_from_trace_reads_initial_from_t0(self):
        events = [
            TraceEvent(0.0, "arrive", 1),
            TraceEvent(0.0, "arrive", 0),
            TraceEvent(6.0, "arrive", 2),
        ]
        player = TracePlayer.from_trace(iter(events))
        assert player.initial_sids == (0, 1)
        assert [e.sid for e in player.next_batch()] == [2]

    def test_from_trace_requires_initial_sessions(self):
        with pytest.raises(SimulationError, match="no arrivals at t=0"):
            TracePlayer.from_trace(iter([TraceEvent(5.0, "arrive", 0)]))


class TestPlayerFedSimulation:
    @pytest.fixture(scope="class")
    def evaluator(self):
        conference = prototype_conference(seed=3, num_sessions=6)
        return ObjectiveEvaluator(
            conference, ObjectiveWeights.normalized_for(conference)
        )

    def config(self) -> SimulationConfig:
        return SimulationConfig(
            duration_s=40.0, hop_interval_mean_s=5.0, seed=12
        )

    def test_player_matches_schedule_bit_for_bit(self, evaluator):
        schedule = make_process(
            rate_per_s=0.25, mean_holding_s=12.0, max_sessions=6, seed=6
        ).schedule(40.0)
        via_schedule = ConferencingSimulator(
            evaluator, schedule, self.config()
        ).run()
        player = TracePlayer.from_trace(iter(trace_from_schedule(schedule)))
        via_player = ConferencingSimulator(
            evaluator, player, self.config()
        ).run()
        for name in ("traffic", "delay", "phi", "sessions"):
            t1, v1 = via_schedule.series(name)
            t2, v2 = via_player.series(name)
            assert np.array_equal(t1, t2) and np.array_equal(v1, v2)
        assert via_schedule.hops == via_player.hops
        assert via_schedule.trace_events == via_player.trace_events

    def test_unbounded_stream_plays_to_horizon(self, evaluator):
        process = make_process(
            rate_per_s=0.5, mean_holding_s=8.0, max_sessions=6, seed=2
        )
        player = TracePlayer.from_trace(process.stream())
        result = ConferencingSimulator(evaluator, player, self.config()).run()
        times, counts = result.series("sessions")
        assert times[-1] == pytest.approx(40.0)
        assert counts.min() >= 1
        assert result.trace_events > 0

    def test_dynamics_execute_before_samples_at_shared_timestamps(
        self, evaluator
    ):
        """Tie-break regression: a departure at exactly a sample instant
        lands before the sample even when its batch was pumped after the
        sample event was enqueued (events closer together than one
        sample interval)."""
        schedule = DynamicsSchedule(
            initial_sids=(0, 1),
            events=(SessionArrival(39.5, 2), SessionDeparture(40.0, 1)),
        )
        result = ConferencingSimulator(
            evaluator,
            schedule,
            SimulationConfig(duration_s=42.0, hop_interval_mean_s=5.0, seed=1),
        ).run()
        times, counts = result.series("sessions")
        assert counts[times == 40.0][0] == 2.0  # departure already applied

    def test_resize_reexecutes_bootstrap_and_counts(self, evaluator):
        schedule = DynamicsSchedule(
            initial_sids=(0, 1, 2),
            events=(SessionResize(10.0, 1), SessionResize(20.0, 2)),
        )
        result = ConferencingSimulator(evaluator, schedule, self.config()).run()
        assert result.resizes == 2
        _times, counts = result.series("sessions")
        assert set(counts) == {3.0}  # resizes never change the active count
