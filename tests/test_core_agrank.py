"""Tests for repro.core.agrank — Alg. 2."""

import numpy as np
import pytest

from repro.core.agrank import AgRankConfig, agrank_assignment, rank_agents
from repro.core.capacity import CapacityLedger
from repro.core.feasibility import is_feasible
from repro.core.nearest import nearest_assignment
from repro.errors import InfeasibleError, SolverError
from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER
from tests.conftest import PAIR_D, PAIR_H, build_pair_conference


class TestConfig:
    def test_validation(self):
        with pytest.raises(SolverError):
            AgRankConfig(n_ngbr=0)
        with pytest.raises(SolverError):
            AgRankConfig(damping=0.0)
        with pytest.raises(SolverError):
            AgRankConfig(damping=1.5)
        with pytest.raises(SolverError):
            AgRankConfig(epsilon=0.0)


class TestRanking:
    def test_candidate_pool_union_of_user_neighbours(self, motivating_conf):
        result = rank_agents(motivating_conf, 0, config=AgRankConfig(n_ngbr=1))
        # With n_ngbr=1 the pool is exactly the set of nearest agents.
        nearest = {
            int(motivating_conf.topology.nearest_agents(u)[0])
            for u in motivating_conf.session(0).user_ids
        }
        assert set(result.candidates) == nearest

    def test_scores_normalized(self, motivating_conf):
        result = rank_agents(motivating_conf, 0, config=AgRankConfig(n_ngbr=4))
        assert sum(result.scores.values()) == pytest.approx(1.0)
        assert all(s >= 0 for s in result.scores.values())

    def test_ordered_by_score(self, motivating_conf):
        result = rank_agents(motivating_conf, 0, config=AgRankConfig(n_ngbr=4))
        ordered = result.ordered()
        scores = [result.scores[a] for a in ordered]
        assert scores == sorted(scores, reverse=True)

    def test_converges_quickly(self, motivating_conf):
        result = rank_agents(motivating_conf, 0, config=AgRankConfig(n_ngbr=4))
        assert result.iterations < 200

    def test_single_candidate_degenerate(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        # Both users' nearest agent may differ; force single-agent pool.
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="only")
        u0 = builder.user("720p")
        u1 = builder.user("720p")
        builder.add_session(u0, u1)
        solo = builder.build(
            inter_agent_ms=np.zeros((1, 1)), agent_user_ms=np.full((1, 2), 9.0)
        )
        result = rank_agents(solo, 0)
        assert result.candidates == (0,)
        assert result.scores[0] == pytest.approx(1.0)

    def test_residual_awareness_prefers_unloaded_agent(self):
        """Two identical agents, one pre-loaded: the free one ranks higher."""
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0", download_mbps=100.0, upload_mbps=100.0)
        builder.add_agent(name="L1", download_mbps=100.0, upload_mbps=100.0)
        ids = [builder.user("720p", name=f"u{i}") for i in range(4)]
        builder.add_session(ids[0], ids[1])
        builder.add_session(ids[2], ids[3])
        symmetric_d = np.array([[0.0, 10.0], [10.0, 0.0]])
        symmetric_h = np.full((2, 4), 10.0)
        conf = builder.build(inter_agent_ms=symmetric_d, agent_user_ms=symmetric_h)
        from repro.core.assignment import Assignment
        from repro.core.traffic import compute_session_usage

        loaded = Assignment(np.array([0, 0, -1, -1]), np.zeros(0, dtype=np.int64))
        ledger = CapacityLedger(conf)
        ledger.set_session(compute_session_usage(conf, loaded, 0))
        result = rank_agents(conf, 1, ledger=ledger, config=AgRankConfig(n_ngbr=2))
        assert result.scores[1] > result.scores[0]


class TestAssignment:
    def test_nngbr1_matches_nearest_user_choice(self, motivating_conf):
        """n_ngbr = 1 reduces to the Nrst user placement (Sec. V-B.3)."""
        agrank = agrank_assignment(
            motivating_conf, 0, config=AgRankConfig(n_ngbr=1)
        )
        nearest = nearest_assignment(motivating_conf)
        for uid in motivating_conf.session(0).user_ids:
            assert agrank.agent_of(uid) == nearest.agent_of(uid)

    def test_nngbr_L_consolidates_session(self, motivating_conf):
        """n_ngbr = L subscribes the whole session to one agent."""
        assignment = agrank_assignment(
            motivating_conf, 0, config=AgRankConfig(n_ngbr=4)
        )
        agents = {assignment.agent_of(u) for u in motivating_conf.session(0).user_ids}
        assert len(agents) == 1

    def test_shared_rep_task_placed_at_source_agent(self):
        """Paper rule of thumb: >= 2 destinations with the same downstream
        representation -> transcode at the source agent."""
        conf = build_pair_conference(
            "720p", "360p", "360p", "480p", extra_user=("360p", "480p")
        )
        assignment = agrank_assignment(conf, 0, config=AgRankConfig(n_ngbr=1))
        source_agent = assignment.agent_of(0)
        for i in conf.session_pair_indices(0):
            if conf.transcode_pairs[i][0] == 0:
                assert assignment.task_agent_of(i) == source_agent

    def test_result_is_feasible_when_unconstrained(self, proto_conf):
        from repro.core.bootstrap import bootstrap_assignment

        assignment = bootstrap_assignment(proto_conf, "agrank")
        assert is_feasible(proto_conf, assignment)

    def test_infeasible_when_capacity_exhausted(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0", download_mbps=1.0, upload_mbps=1.0)
        builder.add_agent(name="L1", download_mbps=1.0, upload_mbps=1.0)
        u0 = builder.user("720p", name="u0")  # 5 Mbps upstream cannot fit
        u1 = builder.user("720p", name="u1")
        builder.add_session(u0, u1)
        conf = builder.build(inter_agent_ms=PAIR_D, agent_user_ms=PAIR_H)
        with pytest.raises(InfeasibleError):
            agrank_assignment(conf, 0, ledger=CapacityLedger(conf))

    def test_capacity_fallback_uses_lower_ranked_candidate(self):
        """When the top-ranked agent cannot host both users, AgRank falls
        back instead of failing (the Fig. 9 mechanism)."""
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0", download_mbps=6.0, upload_mbps=6.0)
        builder.add_agent(name="L1", download_mbps=6.0, upload_mbps=6.0)
        u0 = builder.user("480p", "480p", name="u0")  # 2.5 Mbps
        u1 = builder.user("480p", "480p", name="u1")
        builder.add_session(u0, u1)
        symmetric_h = np.array([[10.0, 10.0], [12.0, 12.0]])
        conf = builder.build(inter_agent_ms=PAIR_D, agent_user_ms=symmetric_h)
        assignment = agrank_assignment(
            conf, 0, ledger=CapacityLedger(conf), config=AgRankConfig(n_ngbr=2)
        )
        assert is_feasible(conf, assignment)
