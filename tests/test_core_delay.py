"""Tests for repro.core.delay — hand-computed end-to-end delays.

Geometry: D(L0,L1)=20; H[L0,u0]=10, H[L1,u0]=25, H[L0,u1]=30, H[L1,u1]=8.
Reference transcoding latency (speed 1.0) for 720p->480p:
24 + 1.6*5 + 2.4*2.5 = 38 ms.
"""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.delay import (
    average_conferencing_delay,
    delay_violations,
    flow_delay,
    max_session_flow_delay,
    session_delay_cost,
    session_user_delays,
)
from repro.errors import ModelError
from tests.conftest import build_pair_conference

SIGMA_720_480 = 38.0


class TestUntranscodedFlow:
    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "480p", "480p", "720p")

    def test_direct_path(self, conf):
        assignment = Assignment(np.array([0, 1]), np.zeros(0, dtype=np.int64))
        # u0 -> u1: H[L0,u0] + D + H[L1,u1] = 10 + 20 + 8.
        assert flow_delay(conf, assignment, 0, 1) == pytest.approx(38.0)
        assert flow_delay(conf, assignment, 1, 0) == pytest.approx(38.0)

    def test_same_agent_no_inter_hop(self, conf):
        assignment = Assignment(np.array([0, 0]), np.zeros(0, dtype=np.int64))
        # u0 -> u1: 10 + 0 + 30.
        assert flow_delay(conf, assignment, 0, 1) == pytest.approx(40.0)

    def test_requires_same_session_distinct_users(self, conf):
        assignment = Assignment(np.array([0, 1]), np.zeros(0, dtype=np.int64))
        with pytest.raises(ModelError):
            flow_delay(conf, assignment, 0, 0)


class TestTranscodedFlow:
    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "360p", "360p", "480p")

    def test_transcode_at_source_agent(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        # 10 + D(L0,L0) + D(L0,L1) + sigma + 8 = 10 + 0 + 20 + 38 + 8.
        assert flow_delay(conf, assignment, 0, 1) == pytest.approx(76.0)

    def test_transcode_at_destination_agent(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([1]))
        # 10 + D(L0,L1) + D(L1,L1) + sigma + 8.
        assert flow_delay(conf, assignment, 0, 1) == pytest.approx(76.0)

    def test_tertiary_round_trip(self, conf):
        """Users co-located on L0 but task on L1: the stream pays the
        round trip 2 * D, matching the paper's D_lk (lambda_ku +
        lambda_kv) term."""
        assignment = Assignment(np.array([0, 0]), np.array([1]))
        # H[L0,u0] + D + D + sigma + H[L0,u1] = 10 + 20 + 20 + 38 + 30.
        assert flow_delay(conf, assignment, 0, 1) == pytest.approx(118.0)

    def test_untranscoded_reverse_flow_unaffected(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        # u1 -> u0 raw: 8 + 20 + 10.
        assert flow_delay(conf, assignment, 1, 0) == pytest.approx(38.0)

    def test_faster_agent_reduces_delay(self):
        conf = build_pair_conference(
            "720p", "360p", "360p", "480p", agent_speeds=(2.0, 1.0)
        )
        fast = Assignment(np.array([0, 1]), np.array([0]))
        slow = Assignment(np.array([0, 1]), np.array([1]))
        assert flow_delay(conf, fast, 0, 1) < flow_delay(conf, slow, 0, 1)


class TestAggregates:
    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "360p", "360p", "480p")

    def test_per_user_worst_incoming(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        delays = session_user_delays(conf, assignment, 0)
        assert delays[1] == pytest.approx(76.0)  # receives the transcoded flow
        assert delays[0] == pytest.approx(38.0)  # receives u1's raw flow

    def test_session_delay_cost_is_mean(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert session_delay_cost(conf, assignment, 0) == pytest.approx(57.0)

    def test_max_flow_delay(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert max_session_flow_delay(conf, assignment, 0) == pytest.approx(76.0)

    def test_average_conferencing_delay(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert average_conferencing_delay(conf, assignment) == pytest.approx(57.0)

    def test_delay_violations_against_cap(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert delay_violations(conf, assignment, 0) == []  # Dmax = 400
        violations = delay_violations(conf, assignment, 0, dmax_ms=50.0)
        assert (0, 1, pytest.approx(76.0)) in [
            (s, d, v) for s, d, v in violations
        ]
        assert len(violations) == 1
