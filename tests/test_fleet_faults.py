"""Fleet-level fault injection: the ``faults:`` spec section, run-id
folding, compile-time diagnostics, cross-backend byte-stability of a
canonical outage sweep, and minimal schema stamping (faulted records
stamp v4; everything else keeps its pre-fault-layer bytes)."""

import json

import pytest

from repro.analysis.report import canonical_results_digest
from repro.errors import SpecError
from repro.fleet.compile import compile_spec
from repro.fleet.matrix import expand_matrix
from repro.fleet.orchestrator import FleetOrchestrator
from repro.fleet.spec import (
    AxisSpec,
    ChaosSpec,
    FaultsSpec,
    FaultWindow,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
    spec_hash,
)


def outage_spec(**kwargs) -> RunSpec:
    """The canonical resilience golden: staggered outages + migrate."""
    defaults = dict(
        name="outage-golden",
        workload=WorkloadSpec(kind="prototype", num_sessions=3),
        simulation=SimulationSpec(
            duration_s=12.0, hop_interval_mean_s=4.0, seed=3
        ),
        faults=FaultsSpec(
            policy="migrate",
            windows=(
                FaultWindow(kind="outage", site=1, start_s=3.0, end_s=8.0),
                FaultWindow(
                    kind="latency",
                    site=0,
                    start_s=5.0,
                    end_s=9.0,
                    severity=1.0,
                ),
            ),
        ),
        sweep=SweepSpec(replicates=2),
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


def plain_spec(**kwargs) -> RunSpec:
    defaults = dict(
        name="plain",
        workload=WorkloadSpec(kind="prototype", num_sessions=2),
        simulation=SimulationSpec(
            duration_s=8.0, hop_interval_mean_s=4.0, seed=3
        ),
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


def on_disk_records(out_dir) -> list[dict]:
    lines = (out_dir / "results.jsonl").read_text().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


class TestFaultsSpecValidation:
    def test_windows_and_chaos_mutually_exclusive(self):
        with pytest.raises(SpecError, match="mutually exclusive"):
            FaultsSpec(
                windows=(
                    FaultWindow(kind="outage", site=0, start_s=0.0, end_s=1.0),
                ),
                chaos=ChaosSpec(rate_per_s=0.1),
            )

    def test_policy_validated(self):
        with pytest.raises(SpecError, match="policy"):
            FaultsSpec(policy="hope")

    def test_chaos_severity_above_one_needs_latency_only(self):
        ChaosSpec(rate_per_s=0.1, severity=2.0, kinds=("latency",))
        with pytest.raises(SpecError, match="severity"):
            ChaosSpec(rate_per_s=0.1, severity=2.0)

    def test_yaml_round_trip(self):
        spec = outage_spec()
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.faults.enabled


class TestRunIdFolding:
    def test_empty_section_hashes_like_absent_section(self):
        """Declaring `faults: {}` must not move run ids or invalidate
        resume caches of pre-fault-layer runs."""
        bare = plain_spec()
        with_section = RunSpec.from_dict(
            {**plain_spec().to_dict(), "faults": {}}
        )
        assert spec_hash(bare) == spec_hash(with_section)
        assert [u.run_id for u in expand_matrix(bare)] == [
            u.run_id for u in expand_matrix(with_section)
        ]

    def test_fault_content_folds_into_run_ids(self):
        bare_ids = {u.run_id for u in expand_matrix(plain_spec())}
        faulted = plain_spec(
            faults=FaultsSpec(
                windows=(
                    FaultWindow(kind="outage", site=0, start_s=1.0, end_s=2.0),
                )
            )
        )
        faulted_ids = {u.run_id for u in expand_matrix(faulted)}
        assert bare_ids.isdisjoint(faulted_ids)

    def test_chaos_axis_gets_one_id_per_grid_point(self):
        spec = plain_spec(
            faults=FaultsSpec(chaos=ChaosSpec(rate_per_s=0.05)),
            sweep=SweepSpec(
                axes=(
                    AxisSpec(
                        path="faults.chaos.rate_per_s",
                        values=(0.02, 0.05, 0.1),
                    ),
                )
            ),
        )
        units = expand_matrix(spec)
        assert len(units) == 3
        assert len({u.run_id for u in units}) == 3


class TestCompileDiagnostics:
    def test_window_site_validated_against_conference(self):
        spec = plain_spec(
            faults=FaultsSpec(
                windows=(
                    FaultWindow(
                        kind="outage", site=99, start_s=1.0, end_s=2.0
                    ),
                )
            )
        )
        with pytest.raises(SpecError, match=r"faults\.windows\[0\].*site 99"):
            compile_spec(spec)

    def test_all_sites_dead_names_the_window(self):
        num_agents = compile_spec(plain_spec()).conference.num_agents
        spec = plain_spec(
            faults=FaultsSpec(
                windows=tuple(
                    FaultWindow(
                        kind="outage", site=s, start_s=2.0, end_s=10.0
                    )
                    for s in range(num_agents)
                )
            )
        )
        with pytest.raises(SpecError, match=r"kill every site during \[2, 10\]"):
            compile_spec(spec)

    def test_chaos_seed_follows_simulation_seed(self):
        """`chaos.seed: -1` (default) draws per-replicate storms; a
        pinned seed holds the schedule fixed across simulation seeds."""

        def schedule(sim_seed, chaos_seed):
            spec = plain_spec(
                simulation=SimulationSpec(
                    duration_s=8.0, hop_interval_mean_s=4.0, seed=sim_seed
                ),
                faults=FaultsSpec(
                    chaos=ChaosSpec(rate_per_s=0.5, seed=chaos_seed)
                ),
            )
            return compile_spec(spec).faults

        assert schedule(3, -1) != schedule(4, -1)
        assert schedule(3, 9) == schedule(4, 9)

    def test_disabled_section_compiles_to_no_schedule(self):
        assert compile_spec(plain_spec()).faults is None


class TestByteStability:
    def test_empty_section_digests_identically_to_absent(self, tmp_path):
        """The no-fault acceptance criterion at the results.jsonl level:
        an empty `faults:` section changes nothing on disk."""
        bare = plain_spec()
        with_section = RunSpec.from_dict({**bare.to_dict(), "faults": {}})
        FleetOrchestrator(tmp_path / "bare", backend="serial").run(bare)
        FleetOrchestrator(tmp_path / "empty", backend="serial").run(
            with_section
        )
        assert canonical_results_digest(
            tmp_path / "bare"
        ) == canonical_results_digest(tmp_path / "empty")
        for record in on_disk_records(tmp_path / "bare"):
            assert record["schema_version"] == 3
            assert "faults_injected" not in record

    def test_outage_spec_bit_identical_across_backends(self, tmp_path):
        """The faulted acceptance criterion: serial, local and
        subprocess agree bit-for-bit on the canonical outage spec,
        resilience metrics included."""
        digests = {}
        for backend, workers in (
            ("serial", 1),
            ("local", 2),
            ("subprocess", 2),
        ):
            out = tmp_path / backend
            result = FleetOrchestrator(
                out, workers=workers, backend=backend
            ).run(outage_spec())
            assert result.executed == 2 and result.failed == 0
            digests[backend] = canonical_results_digest(out)
        assert len(set(digests.values())) == 1, digests
        for record in on_disk_records(tmp_path / "serial"):
            assert record["schema_version"] == 4
            assert record["faults_injected"] == 2
            for metric in (
                "fault_migrations",
                "sessions_dropped",
                "sla_violation_s",
                "recovery_mean_s",
            ):
                assert metric in record

    def test_resume_cache_replays_faulted_units(self, tmp_path):
        out = tmp_path / "run"
        first = FleetOrchestrator(out, backend="serial").run(outage_spec())
        assert first.executed == 2
        second = FleetOrchestrator(out, backend="serial", resume=True).run(
            outage_spec()
        )
        assert second.executed == 0 and second.skipped == 2

    def test_report_renders_resilience_summary(self, tmp_path):
        from repro.analysis.report import load_fleet_run, render_run_report

        out = tmp_path / "run"
        FleetOrchestrator(out, backend="serial").run(outage_spec())
        report = render_run_report(load_fleet_run(out))
        assert "resilience summary" in report
        assert "faults_injected" in report
