"""Tests for the fleet compiler: spec -> concrete engine objects."""

import math

import pytest

from repro.core.agrank import AgRankConfig
from repro.errors import SpecError
from repro.experiments.common import effective_beta
from repro.fleet.compile import compile_spec, execute_spec
from repro.fleet.library import library_spec_names, load_library_spec
from repro.fleet.orchestrator import expand_matrix
from repro.fleet.spec import (
    ChurnSpec,
    ChurnWave,
    NoiseSpec,
    RunSpec,
    SimulationSpec,
    SolverSpec,
    SweepSpec,
    AxisSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.netsim.noise import GaussianNoise, QuantizedPerturbation

FAST_SIM = SimulationSpec(duration_s=10.0, hop_interval_mean_s=5.0, seed=3)


def small_prototype(**kwargs) -> RunSpec:
    defaults = dict(
        name="t",
        workload=WorkloadSpec(kind="prototype", num_sessions=3),
        simulation=FAST_SIM,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


class TestCompile:
    def test_prototype_compiles(self):
        compiled = compile_spec(small_prototype())
        assert compiled.conference.num_agents == 6
        assert compiled.conference.num_sessions == 3
        assert compiled.config.markov.beta == effective_beta(400.0)
        assert compiled.noise is None

    def test_scenario_compiles_with_custom_regions(self):
        spec = RunSpec(
            name="t",
            workload=WorkloadSpec(kind="scenario", num_users=20),
            topology=TopologySpec(
                regions=("Virginia", "Sydney"), num_user_sites=16
            ),
            simulation=FAST_SIM,
        )
        compiled = compile_spec(spec)
        assert compiled.conference.num_agents == 2
        names = {agent.name for agent in compiled.conference.agents}
        assert names == {"Virginia", "Sydney"}

    def test_scenario_capacity_envelopes_applied(self):
        spec = RunSpec(
            name="t",
            workload=WorkloadSpec(
                kind="scenario",
                num_users=20,
                mean_bandwidth_mbps=800.0,
                mean_transcode_slots=40.0,
            ),
            topology=TopologySpec(num_user_sites=16),
            simulation=FAST_SIM,
        )
        compiled = compile_spec(spec)
        for agent in compiled.conference.agents:
            assert not math.isinf(agent.upload_mbps)
            assert not math.isinf(agent.transcode_slots)

    def test_agrank_policy_builds_config(self):
        compiled = compile_spec(
            small_prototype(solver=SolverSpec(policy="agrank", n_ngbr=3))
        )
        assert compiled.config.initial_policy == "agrank"
        assert compiled.config.agrank == AgRankConfig(n_ngbr=3)

    def test_noise_models_resolve(self):
        gauss = compile_spec(
            small_prototype(noise=NoiseSpec(kind="gaussian", sigma=0.1))
        )
        assert isinstance(gauss.noise, GaussianNoise)
        quant = compile_spec(
            small_prototype(noise=NoiseSpec(kind="quantized", delta=0.2, levels=2))
        )
        assert isinstance(quant.noise, QuantizedPerturbation)
        zero = compile_spec(
            small_prototype(noise=NoiseSpec(kind="gaussian", sigma=0.0))
        )
        assert zero.noise is None

    def test_churn_schedule_resolves(self):
        spec = small_prototype(
            workload=WorkloadSpec(kind="prototype", num_sessions=4),
            churn=ChurnSpec(
                initial=2,
                waves=(ChurnWave(time_s=2.0, arrive=2, depart=1),),
            ),
        )
        schedule = compile_spec(spec).schedule
        assert schedule.initial_sids == (0, 1)
        assert len(schedule.events) == 3

    def test_infeasible_churn_fails_fast(self):
        spec = small_prototype(
            workload=WorkloadSpec(kind="prototype", num_sessions=2),
            churn=ChurnSpec(
                initial=1, waves=(ChurnWave(time_s=2.0, arrive=5),)
            ),
        )
        with pytest.raises(SpecError, match="churn plan infeasible"):
            compile_spec(spec)

    def test_sweep_spec_must_be_expanded_first(self):
        spec = small_prototype(
            sweep=SweepSpec(axes=(AxisSpec(path="solver.beta", values=(200,)),))
        )
        with pytest.raises(SpecError, match="expand"):
            compile_spec(spec)
        resolved = expand_matrix(spec)
        assert len(resolved) == 1
        compile_spec(resolved[0].spec)  # expanded unit compiles


class TestExecute:
    def test_execute_returns_json_safe_record(self):
        import json

        record = execute_spec(small_prototype())
        assert record["num_sessions"] == 3
        assert record["traffic_mbps"] >= 0.0
        assert record["delay_ms"] > 0.0
        assert record["schema_version"] >= 1
        # Strict-JSON safe: round-trips without NaN/Infinity literals.
        assert json.loads(json.dumps(record, allow_nan=False)) == record
        series = record["series"]
        assert set(series) == {"traffic", "delay", "phi"}
        for payload in series.values():
            assert len(payload["t"]) == len(payload["v"]) <= 32

    def test_execute_deterministic_under_seed(self):
        a = execute_spec(small_prototype())
        b = execute_spec(small_prototype())
        assert a == b

    def test_failed_unit_record_carries_traceback(self):
        """One-bad-unit diagnostics: the error record keeps the formatted
        traceback (schema-v5 envelope field), so a fleet failure is
        diagnosable from results.jsonl alone."""
        from repro.analysis.report import (
            record_schema_version,
            validate_record,
        )
        from repro.fleet.compile import execute_payload

        bad = small_prototype().to_dict()
        bad["workload"]["num_sessions"] = 0  # fails validation in-worker
        record = execute_payload("unit-1", bad, axes={}, seed=3)
        assert record["status"] == "error"
        assert record["error"].startswith("SpecError")
        assert "Traceback (most recent call last)" in record["traceback"]
        assert "SpecError" in record["traceback"]
        assert record["schema_version"] == 5
        assert record_schema_version(record) == 5
        validate_record(record)  # the field is schema-registered

    def test_traceback_is_digest_volatile(self, tmp_path):
        """Tracebacks name worker-specific frames, so the canonical
        results digest must ignore them (backends still compare equal)."""
        import json

        from repro.analysis.report import canonical_results_digest
        from repro.fleet.compile import execute_payload

        bad = small_prototype().to_dict()
        bad["workload"]["num_sessions"] = 0
        record = execute_payload("unit-1", bad, axes={}, seed=3)
        for out, mutate in (("a", False), ("b", True)):
            out_dir = tmp_path / out
            out_dir.mkdir()
            shaped = dict(record)
            if mutate:
                shaped["traceback"] = "File worker.py, line 1\nboom"
                shaped["wall_time_s"] = 123.0
            (out_dir / "results.jsonl").write_text(
                json.dumps(shaped, sort_keys=True) + "\n", encoding="utf-8"
            )
        assert canonical_results_digest(
            tmp_path / "a"
        ) == canonical_results_digest(tmp_path / "b")


class TestLibrary:
    def test_library_has_six_specs(self):
        assert len(library_spec_names()) >= 6

    def test_every_library_spec_parses_and_expands(self):
        for name in library_spec_names():
            spec = load_library_spec(name)
            assert spec.name == name
            units = expand_matrix(spec)
            assert units
            assert len({unit.run_id for unit in units}) == len(units)

    def test_unknown_library_spec_rejected(self):
        with pytest.raises(SpecError, match="unknown library spec"):
            load_library_spec("does_not_exist")

    def test_artifact_references_resolve_via_registry(self):
        from repro.experiments.registry import experiment_ids

        referenced = [
            load_library_spec(name).artifact for name in library_spec_names()
        ]
        assert any(referenced), "library should link some paper artifacts"
        for artifact in filter(None, referenced):
            assert artifact in experiment_ids()
