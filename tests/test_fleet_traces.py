"""Trace-driven fleet specs: validation diagnostics, golden stability,
export -> play round-trips and the ``repro trace`` CLI.

The golden tests extend the warm-cache pattern of
``tests/test_fleet_substrate.py``: a trace-driven spec's
``results.jsonl`` must be byte-identical across two fleet runs, and a
trace exported from a schedule must play back into the same metrics
record on every invocation.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import SpecError
from repro.fleet.compile import compile_spec, compile_trace, execute_trace
from repro.fleet.library import library_spec_names, load_library_spec
from repro.fleet.orchestrator import FleetOrchestrator, expand_matrix
from repro.fleet.spec import ChurnSpec, RunSpec, TraceSpec, spec_hash
from repro.runtime.traces import (
    SessionProcess,
    dump_trace,
    schedule_from_trace,
    trace_from_schedule,
)

TRACE_LIBRARY_SPECS = ("poisson_churn", "bursty_mmpp", "diurnal_cycle")


def trace_spec_yaml(**trace_fields) -> str:
    trace = "\n".join(f"    {key}: {value}" for key, value in trace_fields.items())
    return f"""\
name: trace-spec
workload:
  kind: prototype
  num_sessions: 8
churn:
  initial: 3
  trace:
{trace}
simulation:
  duration_s: 12
  hop_interval_mean_s: 4
  seed: 2
"""


def small_trace_spec(rate: float = 0.2, seed: int = 2) -> RunSpec:
    spec = RunSpec.from_yaml(trace_spec_yaml(kind="poisson", rate_per_s=rate))
    data = spec.to_dict()
    data["simulation"]["seed"] = seed
    return RunSpec.from_dict(data)


# --------------------------------------------------------------------- #
# Spec-section validation                                               #
# --------------------------------------------------------------------- #


class TestTraceSpecValidation:
    def test_default_is_none_and_round_trips(self):
        spec = small_trace_spec()
        assert RunSpec.from_yaml(spec.to_yaml()) == spec
        assert spec.churn.trace.kind == "poisson"

    @pytest.mark.parametrize(
        "fields,fragment",
        [
            (dict(kind="'weibull'"), "churn.trace.kind"),
            (dict(kind="poisson", holding="'pareto'"), "churn.trace.holding"),
            (dict(kind="file"), "churn.trace.path is required"),
            (dict(kind="poisson", path="x.csv"), "applies to kind 'file'"),
            (dict(kind="poisson", rate_per_s=0), "rate_per_s must be > 0"),
            (
                dict(kind="poisson", mean_holding_s=-3),
                "mean_holding_s must be > 0",
            ),
            (
                dict(kind="poisson", holding="'lognormal'", holding_sigma=0),
                "holding_sigma must be > 0",
            ),
            (
                dict(kind="mmpp", rate_per_s=0.5, burst_rate_per_s=0.1),
                "burst_rate_per_s must be >=",
            ),
            (dict(kind="mmpp", burst_rate_per_s=1, mean_calm_s=0), "dwell means"),
            (
                dict(kind="diurnal", diurnal_amplitude=1.0),
                "diurnal_amplitude must be in",
            ),
            (
                dict(kind="diurnal", diurnal_period_s=0),
                "diurnal_period_s must be > 0",
            ),
            (dict(kind="poisson", seed=-2), "churn.trace.seed must be >= -1"),
        ],
    )
    def test_bad_section_rejected(self, fields, fragment):
        with pytest.raises(SpecError, match=fragment):
            RunSpec.from_yaml(trace_spec_yaml(**fields))

    def test_waves_and_trace_mutually_exclusive(self):
        from repro.fleet.spec import ChurnWave

        with pytest.raises(SpecError, match="mutually exclusive"):
            ChurnSpec(
                initial=2,
                waves=(ChurnWave(time_s=5.0, arrive=1),),
                trace=TraceSpec(kind="poisson"),
            )

    def test_file_trace_forbids_initial(self):
        with pytest.raises(SpecError, match="churn.initial applies to generated"):
            ChurnSpec(initial=2, trace=TraceSpec(kind="file", path="t.csv"))

    def test_generated_trace_requires_initial(self):
        with pytest.raises(SpecError, match="churn.initial must be >= 1"):
            ChurnSpec(initial=0, trace=TraceSpec(kind="poisson"))

    def test_trace_knobs_are_sweepable_and_hashed(self):
        base = small_trace_spec()
        data = base.to_dict()
        data["sweep"]["axes"] = [
            {"path": "churn.trace.rate_per_s", "values": [0.1, 0.2]}
        ]
        swept = RunSpec.from_dict(data)
        units = expand_matrix(swept)
        assert [u.axes["churn.trace.rate_per_s"] for u in units] == [0.1, 0.2]
        assert len({u.run_id for u in units}) == 2
        assert spec_hash(units[0].spec) != spec_hash(units[1].spec)


# --------------------------------------------------------------------- #
# Compiler diagnostics                                                  #
# --------------------------------------------------------------------- #


class TestCompilerDiagnostics:
    def file_spec(self, path) -> RunSpec:
        return RunSpec.from_yaml(
            f"""\
name: file-trace
workload:
  kind: prototype
  num_sessions: 4
churn:
  trace:
    kind: file
    path: {path}
simulation:
  duration_s: 12
  hop_interval_mean_s: 4
"""
        )

    def test_file_trace_compiles(self, tmp_path):
        path = tmp_path / "ok.csv"
        dump_trace(
            trace_from_schedule(
                SessionProcess(
                    rate_per_s=0.3, mean_holding_s=10.0, initial=2,
                    max_sessions=4, seed=1,
                ).schedule(12.0)
            ),
            path,
        )
        compiled = compile_spec(self.file_spec(path))
        assert compiled.schedule.initial_sids == (0, 1)

    def test_missing_trace_file_named_without_infeasible_prefix(self, tmp_path):
        """A bad path is a load problem, not a pool infeasibility."""
        with pytest.raises(SpecError, match="churn trace: .*does not exist") as err:
            compile_spec(self.file_spec(tmp_path / "missing.csv"))
        assert "infeasible" not in str(err.value)

    def test_malformed_trace_row_not_labelled_infeasible(self, tmp_path):
        path = tmp_path / "mangled.csv"
        path.write_text("0,arrive,0\nbogus row\n", encoding="utf-8")
        with pytest.raises(SpecError, match="mangled.csv:2") as err:
            compile_spec(self.file_spec(path))
        assert "infeasible" not in str(err.value)

    def test_sid_beyond_workload_pool_names_event_and_line(self, tmp_path):
        path = tmp_path / "pool.csv"
        path.write_text(
            "time_s,event,sid\n0,arrive,0\n3,arrive,9\n", encoding="utf-8"
        )
        with pytest.raises(
            SpecError,
            match=r"trace infeasible for 4 sessions.*line 3.*arrive sid=9",
        ):
            compile_spec(self.file_spec(path))

    def test_departure_of_inactive_sid_names_line(self, tmp_path):
        path = tmp_path / "inactive.csv"
        path.write_text(
            "time_s,event,sid\n0,arrive,0\n5,depart,2\n", encoding="utf-8"
        )
        with pytest.raises(
            SpecError, match=r"line 3.*depart sid=2.*departs while inactive"
        ):
            compile_spec(self.file_spec(path))

    def test_negative_timestamp_names_line(self, tmp_path):
        path = tmp_path / "negative.csv"
        path.write_text(
            "time_s,event,sid\n0,arrive,0\n-4,arrive,1\n", encoding="utf-8"
        )
        with pytest.raises(SpecError, match=r"negative.csv:3.*finite and >= 0"):
            compile_spec(self.file_spec(path))

    def test_generated_more_initial_than_pool(self):
        spec = RunSpec.from_yaml(
            trace_spec_yaml(kind="poisson").replace("initial: 3", "initial: 20")
        )
        with pytest.raises(SpecError, match="trace infeasible for 8 sessions"):
            compile_spec(spec)

    def test_trace_seed_follows_simulation_seed_by_default(self):
        a = compile_spec(small_trace_spec(seed=2)).schedule
        b = compile_spec(small_trace_spec(seed=3)).schedule
        assert a != b  # replicates draw distinct traces

    def test_pinned_trace_seed_holds_trace_fixed(self):
        def pinned(sim_seed: int) -> RunSpec:
            spec = small_trace_spec(seed=sim_seed)
            data = spec.to_dict()
            data["churn"]["trace"]["seed"] = 77
            return RunSpec.from_dict(data)

        a = compile_spec(pinned(2)).schedule
        b = compile_spec(pinned(3)).schedule
        assert a == b


# --------------------------------------------------------------------- #
# Golden stability                                                      #
# --------------------------------------------------------------------- #


def _normalized_lines(path):
    """results.jsonl lines with the only nondeterministic field removed."""
    lines = []
    for line in path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        record.pop("wall_time_s", None)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


class TestGoldenTrajectories:
    def sweep_spec(self) -> RunSpec:
        data = small_trace_spec().to_dict()
        data["sweep"] = {
            "replicates": 2,
            "axes": [{"path": "churn.trace.rate_per_s", "values": [0.1, 0.3]}],
        }
        return RunSpec.from_dict(data)

    def test_trace_fleet_results_byte_stable_across_runs(self, tmp_path):
        spec = self.sweep_spec()
        first = FleetOrchestrator(tmp_path / "a", workers=1).run(spec)
        second = FleetOrchestrator(tmp_path / "b", workers=1).run(spec)
        assert first.failed == 0 and second.failed == 0
        assert _normalized_lines(first.results_path) == _normalized_lines(
            second.results_path
        )

    def test_editing_a_file_trace_invalidates_the_resume_cache(self, tmp_path):
        """The run id covers a file trace's contents: editing the file
        under an unchanged spec re-executes instead of serving stale
        cached records."""
        trace_path = tmp_path / "live.csv"
        process = SessionProcess(
            rate_per_s=0.3, mean_holding_s=10.0, initial=2,
            max_sessions=4, seed=1,
        )
        dump_trace(process.trace(12.0), trace_path)
        spec = RunSpec.from_yaml(
            f"""\
name: live-trace
workload:
  kind: prototype
  num_sessions: 4
churn:
  trace:
    kind: file
    path: {trace_path}
simulation:
  duration_s: 12
  hop_interval_mean_s: 4
"""
        )
        out = tmp_path / "out"
        first = FleetOrchestrator(out, workers=1).run(spec)
        assert (first.executed, first.failed) == (1, 0)
        cached = FleetOrchestrator(out, workers=1).run(spec)
        assert (cached.executed, cached.skipped) == (0, 1)

        dump_trace(
            SessionProcess(
                rate_per_s=0.3, mean_holding_s=10.0, initial=2,
                max_sessions=4, seed=2,
            ).trace(12.0),
            trace_path,
        )
        rerun = FleetOrchestrator(out, workers=1).run(spec)
        assert (rerun.executed, rerun.skipped, rerun.failed) == (1, 0, 0)
        assert rerun.records[0]["run_id"] != first.records[0]["run_id"]

    def test_export_play_reproduces_schedule_and_metrics(self, tmp_path):
        spec = small_trace_spec()
        compiled = compile_spec(spec)
        exported = trace_from_schedule(compiled.schedule)
        # Round trip 1: the exported trace lowers to the same schedule.
        assert schedule_from_trace(exported) == compiled.schedule
        # Round trip 2: playing it twice produces identical records.
        first = execute_trace(exported, spec)
        second = execute_trace(exported, spec)
        assert first == second
        # And the played run equals the spec-compiled run's dynamics.
        played = compile_trace(exported, spec)
        assert played.schedule == compiled.schedule

    def test_library_trace_specs_parse_expand_and_compile(self):
        for name in TRACE_LIBRARY_SPECS:
            assert name in library_spec_names()
            spec = load_library_spec(name)
            units = expand_matrix(spec)
            assert len(units) >= 4
            # Compiling (conference + trace -> schedule) is cheap at the
            # spec's full horizon; only simulation would be slow.
            compiled = compile_spec(units[0].spec)
            assert compiled.schedule.events  # churn actually happens


# --------------------------------------------------------------------- #
# CLI                                                                   #
# --------------------------------------------------------------------- #


class TestTraceCli:
    GENERATE = [
        "trace", "generate", "--rate", "0.2", "--mean-holding", "20",
        "--duration", "40", "--initial", "2", "--max-sessions", "6",
        "--seed", "9",
    ]

    def test_generate_stdout_deterministic(self, capsys):
        assert main(self.GENERATE) == 0
        first = capsys.readouterr().out
        assert main(self.GENERATE) == 0
        assert capsys.readouterr().out == first
        assert first.startswith("time_s,event,sid\n")

    def test_generate_validate_play_pipeline(self, tmp_path, capsys):
        out = tmp_path / "churn.csv"
        assert main(self.GENERATE + ["--out", str(out)]) == 0
        capsys.readouterr()

        assert main(["trace", "validate", str(out), "--sessions", "6"]) == 0
        assert "trace ok" in capsys.readouterr().out

        assert main(["trace", "play", str(out)]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "play", str(out)]) == 0
        assert capsys.readouterr().out == first
        record = json.loads(first)
        assert record["status"] if "status" in record else True
        assert record["num_sessions"] >= 2
        assert record["schema_version"] >= 1

    def test_play_against_library_spec(self, tmp_path, capsys):
        out = tmp_path / "churn.jsonl"
        # Cap the sid pool at the target spec's 4 workload sessions.
        generate = [
            arg if arg != "6" else "4" for arg in self.GENERATE
        ]
        assert main(generate + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "trace", "play", str(out),
                    "--spec", "prototype_smoke",
                    "--duration", "15",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["name"] == "prototype_smoke"

    def test_validate_infeasible_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("0,arrive,0\n5,depart,3\n", encoding="utf-8")
        assert main(["trace", "validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "departs while inactive" in err and "sid=3" in err

    def test_validate_parse_error_names_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("0,arrive,0\nfive,depart,0\n", encoding="utf-8")
        assert main(["trace", "validate", str(bad)]) == 2
        assert "bad.csv:2" in capsys.readouterr().err

    def test_play_pool_mismatch_exits_2(self, tmp_path, capsys):
        out = tmp_path / "wide.csv"
        rows = ["time_s,event,sid"] + [f"0,arrive,{sid}" for sid in range(8)]
        out.write_text("\n".join(rows) + "\n", encoding="utf-8")
        # prototype_smoke's workload has fewer than 8 sessions.
        assert main(["trace", "play", str(out), "--spec", "prototype_smoke"]) == 2
        assert "trace infeasible" in capsys.readouterr().err

    def test_fleet_sweep_on_trace_library_spec(self, tmp_path, capsys):
        """Acceptance: a churn-intensity x seed sweep end to end."""
        out = tmp_path / "sweep"
        assert (
            main(
                [
                    "fleet", "sweep", "poisson_churn",
                    "--axis", "churn.trace.rate_per_s=0.05,0.2",
                    "--replicates", "2",
                    "--set", "simulation.duration_s=12",
                    "--out", str(out),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "4 runs" in output and "0 failed" in output
        records = [
            json.loads(line)
            for line in (out / "results.jsonl").read_text().splitlines()
        ]
        assert {r["axes"]["churn.trace.rate_per_s"] for r in records} == {0.05, 0.2}
        assert {r["seed"] for r in records} == {11, 12}
        assert all(r["status"] == "ok" for r in records)
