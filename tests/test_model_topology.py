"""Tests for repro.model.topology."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.topology import Topology

D = np.array([[0.0, 30.0], [30.0, 0.0]])
H = np.array([[10.0, 40.0], [35.0, 5.0]])


class TestTopologyValidation:
    def test_valid(self):
        topo = Topology(D, H)
        assert topo.num_agents == 2
        assert topo.num_users == 2

    def test_rejects_non_square_d(self):
        with pytest.raises(ModelError):
            Topology(np.zeros((2, 3)), H)

    def test_rejects_mismatched_h(self):
        with pytest.raises(ModelError):
            Topology(D, np.zeros((3, 2)))

    def test_rejects_negative_delays(self):
        bad = D.copy()
        bad[0, 1] = -1.0
        bad[1, 0] = -1.0
        with pytest.raises(ModelError):
            Topology(bad, H)

    def test_rejects_nonzero_diagonal(self):
        bad = D.copy()
        bad[0, 0] = 5.0
        with pytest.raises(ModelError):
            Topology(bad, H)

    def test_rejects_nonfinite(self):
        bad = H.copy()
        bad[0, 0] = np.inf
        with pytest.raises(ModelError):
            Topology(D, bad)


class TestTopologyAccess:
    def test_lookups(self):
        topo = Topology(D, H)
        assert topo.agent_to_agent(0, 1) == 30.0
        assert topo.agent_to_user(1, 0) == 35.0

    def test_matrices_are_read_only_copies(self):
        source = D.copy()
        topo = Topology(source, H)
        source[0, 1] = 999.0
        assert topo.agent_to_agent(0, 1) == 30.0
        with pytest.raises(ValueError):
            topo.inter_agent_ms[0, 1] = 1.0

    def test_nearest_agents_sorted_by_delay(self):
        topo = Topology(D, H)
        assert list(topo.nearest_agents(0)) == [0, 1]  # 10 < 35
        assert list(topo.nearest_agents(1)) == [1, 0]  # 5 < 40

    def test_nearest_agents_stable_ties(self):
        h_tie = np.array([[10.0], [10.0]])
        topo = Topology(D, h_tie)
        assert list(topo.nearest_agents(0)) == [0, 1]

    def test_is_symmetric(self):
        assert Topology(D, H).is_symmetric()
        asym = np.array([[0.0, 30.0], [31.0, 0.0]])
        assert not Topology(asym, H).is_symmetric()
