"""Tests for the shared latency-substrate cache (ROADMAP
"Shared-substrate caching").

Fleet sweeps compile one scenario per grid point; when only solver or
simulation knobs vary, the latency substrate is identical across points
and must be synthesized exactly once per process.  Correctness bar: a
warm cache changes nothing about the results — records are byte-identical
to a cold run (modulo wall time).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fleet.compile import compile_spec, substrate_cache_info
from repro.fleet.orchestrator import FleetOrchestrator, expand_matrix
from repro.fleet.spec import (
    AxisSpec,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.netsim.latency import (
    LatencyModel,
    clear_substrate_cache,
    substrate_cache_stats,
    substrate_matrices,
)
from repro.netsim.sites import region, sample_user_sites


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from cross-test cache state."""
    clear_substrate_cache()
    yield
    clear_substrate_cache()


@pytest.fixture()
def synthesis_spy(monkeypatch):
    """Count actual matrix syntheses through the LatencyModel kernels."""
    calls = {"inter_agent": 0, "agent_user": 0}
    original_inter = LatencyModel.inter_agent_matrix
    original_user = LatencyModel.agent_user_matrix

    def counting_inter(self, regions):
        calls["inter_agent"] += 1
        return original_inter(self, regions)

    def counting_user(self, regions, sites):
        calls["agent_user"] += 1
        return original_user(self, regions, sites)

    monkeypatch.setattr(LatencyModel, "inter_agent_matrix", counting_inter)
    monkeypatch.setattr(LatencyModel, "agent_user_matrix", counting_user)
    return calls


def sweep_spec(latency_seed: int = 99, replicates: int = 1) -> RunSpec:
    """A solver-axis sweep: every grid point shares the substrate."""
    return RunSpec(
        name="substrate-sweep",
        workload=WorkloadSpec(kind="scenario", num_users=12),
        topology=TopologySpec(num_user_sites=24, latency_seed=latency_seed),
        simulation=SimulationSpec(duration_s=6.0, hop_interval_mean_s=3.0, seed=2),
        sweep=SweepSpec(
            replicates=replicates,
            axes=(AxisSpec(path="solver.beta", values=(100, 200, 400)),),
        ),
    )


class TestSubstrateMemo:
    def test_same_key_synthesizes_once(self, synthesis_spy):
        regions = [region(n) for n in ("Virginia", "Tokyo")]
        sites = sample_user_sites(8, np.random.default_rng(0))
        model = LatencyModel(seed=5)
        first = substrate_matrices(model, regions, sites)
        second = substrate_matrices(LatencyModel(seed=5), regions, sites)
        assert synthesis_spy["inter_agent"] == 1
        assert synthesis_spy["agent_user"] == 1
        assert first[0] is second[0] and first[1] is second[1]
        stats = substrate_cache_stats()
        assert stats["builds"] == 1 and stats["hits"] == 1

    def test_different_seed_or_sites_do_not_share(self, synthesis_spy):
        regions = [region(n) for n in ("Virginia", "Tokyo")]
        sites = sample_user_sites(8, np.random.default_rng(0))
        base = substrate_matrices(LatencyModel(seed=5), regions, sites)
        other_seed = substrate_matrices(LatencyModel(seed=6), regions, sites)
        other_sites = substrate_matrices(
            LatencyModel(seed=5), regions, sites[:-1]
        )
        assert synthesis_spy["inter_agent"] == 3
        assert not np.array_equal(base[0], other_seed[0])
        assert base[1].shape != other_sites[1].shape
        assert substrate_cache_stats()["builds"] == 3

    def test_cached_matrices_are_read_only(self):
        regions = [region(n) for n in ("Virginia", "Tokyo")]
        sites = sample_user_sites(4, np.random.default_rng(1))
        inter_agent, agent_user = substrate_matrices(
            LatencyModel(seed=3), regions, sites
        )
        with pytest.raises(ValueError):
            inter_agent[0, 1] = 1.0
        with pytest.raises(ValueError):
            agent_user[0, 0] = 1.0

    def test_eviction_is_lru_not_fifo(self, synthesis_spy, monkeypatch):
        """A hit must promote its entry: with the cache full, the *least
        recently used* substrate is evicted, not the oldest-inserted one
        (the FIFO regression rebuilt a sweep's hottest substrate on
        every grid point once the working set exceeded the limit)."""
        import repro.netsim.latency as latency_module

        monkeypatch.setattr(latency_module, "_SUBSTRATE_CACHE_LIMIT", 2)
        regions = [region("Virginia"), region("Tokyo")]
        sites = sample_user_sites(4, np.random.default_rng(1))
        model_a, model_b, model_c = (LatencyModel(seed=s) for s in (1, 2, 3))

        first_a = substrate_matrices(model_a, regions, sites)
        substrate_matrices(model_b, regions, sites)
        # Touch A: under LRU the next eviction must take B.
        substrate_matrices(model_a, regions, sites)
        substrate_matrices(model_c, regions, sites)
        assert synthesis_spy["inter_agent"] == 3

        # A survived the eviction (FIFO would have dropped it) ...
        again_a = substrate_matrices(model_a, regions, sites)
        assert synthesis_spy["inter_agent"] == 3
        assert again_a[0] is first_a[0]
        # ... and B is the one that was evicted.
        substrate_matrices(model_b, regions, sites)
        assert synthesis_spy["inter_agent"] == 4
        assert substrate_cache_stats()["entries"] == 2

    def test_clear_resets_counters(self):
        regions = [region("Virginia"), region("Tokyo")]
        sites = sample_user_sites(4, np.random.default_rng(1))
        substrate_matrices(LatencyModel(seed=3), regions, sites)
        clear_substrate_cache()
        stats = substrate_cache_stats()
        assert stats == {"builds": 0, "hits": 0, "entries": 0}


class TestFleetCompileSharing:
    def test_grid_points_share_one_substrate(self, synthesis_spy):
        units = expand_matrix(sweep_spec())
        assert len(units) == 3
        for unit in units:
            compile_spec(unit.spec)
        # One synthesis for three grid points: the sweep only varies beta.
        assert synthesis_spy["inter_agent"] == 1
        assert synthesis_spy["agent_user"] == 1
        info = substrate_cache_info()
        assert info["builds"] == 1
        assert info["hits"] == 2

    def test_distinct_latency_seeds_compile_distinct_substrates(self, synthesis_spy):
        compile_spec(expand_matrix(sweep_spec(latency_seed=99))[0].spec)
        compile_spec(expand_matrix(sweep_spec(latency_seed=100))[0].spec)
        assert synthesis_spy["inter_agent"] == 2
        assert substrate_cache_info()["builds"] == 2

    def test_seed_replicates_do_not_share_site_draws(self, synthesis_spy):
        """Replicates redraw users (different sites) -> separate entries."""
        units = expand_matrix(
            RunSpec(
                name="replicated",
                workload=WorkloadSpec(kind="scenario", num_users=10),
                topology=TopologySpec(num_user_sites=16, latency_seed=1),
                simulation=SimulationSpec(
                    duration_s=6.0, hop_interval_mean_s=3.0, seed=0
                ),
                sweep=SweepSpec(replicates=2),
            )
        )
        for unit in units:
            compile_spec(unit.spec)
        assert substrate_cache_info()["builds"] == 2

    def test_compiled_conference_identical_with_and_without_cache(self):
        spec = expand_matrix(sweep_spec())[0].spec
        cold = compile_spec(spec).conference
        warm = compile_spec(spec).conference  # second compile hits the cache
        assert np.array_equal(
            cold.topology.inter_agent_ms, warm.topology.inter_agent_ms
        )
        assert np.array_equal(
            cold.topology.agent_user_ms, warm.topology.agent_user_ms
        )
        # The model layer copies on ingest: cache hits share no state.
        assert cold.topology.inter_agent_ms is not warm.topology.inter_agent_ms


class TestFaultViewsKeepCachePristine:
    """Fault injection builds substrate *views*; the shared cache (and
    every conference compiled from it) must never see faulted values."""

    def faulted_spec(self) -> RunSpec:
        data = sweep_spec().to_dict()
        data["name"] = "substrate-chaos"
        data["sweep"] = {}
        data["faults"] = {
            "policy": "migrate",
            "chaos": {"rate_per_s": 1.0, "mean_duration_s": 3.0, "seed": 5},
        }
        return RunSpec.from_dict(data)

    def test_chaos_run_leaves_cached_matrices_pristine(self, synthesis_spy):
        from repro.fleet.compile import execute_spec

        clean = expand_matrix(sweep_spec())[0].spec
        cold = compile_spec(clean).conference
        cold_inter = cold.topology.inter_agent_ms.copy()
        cold_user = cold.topology.agent_user_ms.copy()
        assert synthesis_spy["inter_agent"] == 1

        # Simulate under chaos: every fault boundary derives a view from
        # the cached substrate.  An in-place mutation would either raise
        # (the cached arrays are write-protected) or corrupt what the
        # clean compile below reads back.
        record = execute_spec(self.faulted_spec())
        assert record["faults_injected"] > 0

        warm = compile_spec(clean).conference
        assert synthesis_spy["inter_agent"] == 1  # served from cache
        assert np.array_equal(warm.topology.inter_agent_ms, cold_inter)
        assert np.array_equal(warm.topology.agent_user_ms, cold_user)

    def test_faulted_and_clean_units_share_the_substrate(self, synthesis_spy):
        """A faults section changes computation, not the substrate key:
        faulted and clean grid points still compile against one cache
        entry."""
        compile_spec(self.faulted_spec())
        compile_spec(expand_matrix(sweep_spec())[0].spec)
        assert synthesis_spy["inter_agent"] == 1
        assert substrate_cache_info()["hits"] >= 1


def _normalized_lines(path):
    """results.jsonl lines with the only nondeterministic field removed."""
    lines = []
    for line in path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        record.pop("wall_time_s", None)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


class TestOrchestratorWithCache:
    def test_warm_cache_runs_are_byte_identical(self, tmp_path):
        spec = sweep_spec(replicates=2)
        cold_result = FleetOrchestrator(tmp_path / "cold", workers=1).run(spec)
        assert cold_result.failed == 0
        # Substrate cache is now warm; a second fleet must produce
        # byte-identical solver output.
        warm_result = FleetOrchestrator(tmp_path / "warm", workers=1).run(spec)
        assert warm_result.failed == 0
        cold_lines = _normalized_lines(cold_result.results_path)
        warm_lines = _normalized_lines(warm_result.results_path)
        assert cold_lines == warm_lines

    def test_pending_units_ordered_by_substrate_affinity(self):
        spec = RunSpec(
            name="affinity",
            workload=WorkloadSpec(kind="scenario", num_users=10),
            topology=TopologySpec(num_user_sites=16),
            simulation=SimulationSpec(
                duration_s=6.0, hop_interval_mean_s=3.0, seed=0
            ),
            sweep=SweepSpec(
                replicates=2,
                axes=(AxisSpec(path="solver.beta", values=(200, 400)),),
            ),
        )
        units = expand_matrix(spec)
        ordered = sorted(units, key=FleetOrchestrator._substrate_affinity)
        seeds = [unit.seed for unit in ordered]
        # Same-substrate (same seed) units are adjacent after ordering.
        assert seeds == sorted(seeds)
