"""Tests for the analysis utilities."""

import numpy as np
import pytest

from repro.analysis.convergence import convergence_time
from repro.analysis.series import moving_average, resample_step
from repro.analysis.stats import box_stats, summarize
from repro.analysis.tables import render_table
from repro.errors import ExperimentError


class TestResampleStep:
    def test_holds_last_value(self):
        times = np.array([0.0, 10.0, 20.0])
        values = np.array([1.0, 2.0, 3.0])
        grid = np.array([0.0, 5.0, 10.0, 15.0, 25.0])
        assert list(resample_step(times, values, grid)) == [1, 1, 2, 2, 3]

    def test_before_first_sample_takes_first(self):
        out = resample_step(np.array([5.0]), np.array([7.0]), np.array([0.0]))
        assert out[0] == 7.0

    def test_empty_series_rejected(self):
        with pytest.raises(ExperimentError):
            resample_step(np.array([]), np.array([]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            resample_step(np.array([1.0]), np.array([1.0, 2.0]), np.array([1.0]))


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.array_equal(moving_average(values, 1), values)

    def test_smooths(self):
        values = np.array([0.0, 10.0, 0.0, 10.0, 0.0])
        smoothed = moving_average(values, 3)
        assert smoothed[2] == pytest.approx(20.0 / 3)
        assert smoothed.std() < values.std()

    def test_bad_window_rejected(self):
        with pytest.raises(ExperimentError):
            moving_average(np.array([1.0]), 0)


class TestBoxStats:
    def test_five_number_ordering(self):
        stats = box_stats(np.arange(1, 101, dtype=float))
        assert (
            stats.minimum
            <= stats.lower_whisker
            <= stats.q1
            <= stats.median
            <= stats.q3
            <= stats.upper_whisker
            <= stats.maximum
        )

    def test_median_and_quartiles(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.q1 == 2.0
        assert stats.q3 == 4.0

    def test_outliers_excluded_from_whiskers(self):
        data = [10.0] * 20 + [1000.0]
        stats = box_stats(data)
        assert stats.upper_whisker == 10.0
        assert stats.maximum == 1000.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            box_stats([])

    def test_row_keys(self):
        row = box_stats([1.0, 2.0]).row()
        assert set(row) == {"q1", "median", "q3", "lo_whisker", "hi_whisker", "mean"}


class TestSummarize:
    def test_values(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["std"] == pytest.approx(1.0)

    def test_single_value_std_zero(self):
        assert summarize([5.0])["std"] == 0.0


class TestConvergenceTime:
    def test_converging_series(self):
        times = np.arange(0.0, 100.0)
        values = np.where(times < 30, 100.0 - 3 * times, 10.0)
        t_conv = convergence_time(times, values)
        assert 25.0 <= t_conv <= 35.0

    def test_constant_series_converges_immediately(self):
        times = np.arange(0.0, 10.0)
        assert convergence_time(times, np.full(10, 5.0)) == 0.0

    def test_never_settling_returns_last(self):
        times = np.arange(0.0, 20.0)
        values = np.where(times % 2 == 0, 0.0, 100.0)
        assert convergence_time(times, values, band=0.01) == times[-1]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            convergence_time(np.array([1.0]), np.array([1.0]))
        times = np.arange(0.0, 5.0)
        with pytest.raises(ExperimentError):
            convergence_time(times, times, tail_fraction=1.5)
        with pytest.raises(ExperimentError):
            convergence_time(times, times, band=0.0)


class TestRenderTable:
    def test_sequence_rows(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.25]], precision=2)
        assert "2.50" in text
        assert "4.25" in text

    def test_mapping_rows(self):
        text = render_table(["x", "y"], [{"x": 1, "y": 2}], precision=0)
        lines = text.splitlines()
        assert lines[0].split() == ["x", "y"]

    def test_title_prepended(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_alignment(self):
        text = render_table(["col"], [[1.0], [100.0]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ExperimentError):
            render_table([], [])
