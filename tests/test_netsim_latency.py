"""Tests for repro.netsim.latency — the synthetic delay substrate."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.netsim.latency import FIBER_KM_PER_MS, LatencyModel
from repro.netsim.sites import CLOUD_REGIONS, region, sample_user_sites

REGIONS = [region(n) for n in ("Virginia", "Oregon", "Tokyo", "Singapore")]


@pytest.fixture(scope="module")
def model():
    return LatencyModel(seed=3)


@pytest.fixture(scope="module")
def matrices(model):
    sites = sample_user_sites(12, np.random.default_rng(0))
    return model.inter_agent_matrix(REGIONS), model.agent_user_matrix(REGIONS, sites)


class TestInterAgentMatrix:
    def test_symmetric_zero_diagonal(self, matrices):
        d, _ = matrices
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_magnitudes_realistic(self, matrices):
        """One-way delays between major regions live in 10-300 ms."""
        d, _ = matrices
        off = d[~np.eye(d.shape[0], dtype=bool)]
        assert off.min() > 5.0
        assert off.max() < 300.0

    def test_regional_clustering(self, model):
        """Virginia-Oregon (same continent) is faster than Virginia-
        Singapore (trans-pacific)."""
        d = model.inter_agent_matrix(REGIONS)
        virginia, oregon, tokyo, singapore = range(4)
        assert d[virginia, oregon] < d[virginia, singapore]
        assert d[tokyo, singapore] < d[oregon, singapore]

    def test_exceeds_speed_of_light_floor(self, model):
        """Synthetic delay can never beat propagation physics."""
        from repro.netsim.geo import great_circle_km

        d = model.inter_agent_matrix(REGIONS)
        for i in range(len(REGIONS)):
            for j in range(i + 1, len(REGIONS)):
                floor = great_circle_km(REGIONS[i].point, REGIONS[j].point) / FIBER_KM_PER_MS
                assert d[i, j] >= floor

    def test_deterministic_under_seed(self):
        a = LatencyModel(seed=9).inter_agent_matrix(REGIONS)
        b = LatencyModel(seed=9).inter_agent_matrix(REGIONS)
        assert np.array_equal(a, b)

    def test_seed_changes_matrix(self):
        a = LatencyModel(seed=1).inter_agent_matrix(REGIONS)
        b = LatencyModel(seed=2).inter_agent_matrix(REGIONS)
        assert not np.array_equal(a, b)


class TestAgentUserMatrix:
    def test_shape_and_positivity(self, matrices):
        _, h = matrices
        assert h.shape == (4, 12)
        assert (h > 0).all()

    def test_user_lastmile_larger_than_agent(self, model):
        """User tails dominate agent tails: the nearest agent is still a
        couple ms away even for a co-located user."""
        sites = sample_user_sites(3, np.random.default_rng(0))
        h = model.agent_user_matrix(REGIONS, sites)
        assert h.min() >= 2.0  # at least the lower user last-mile bound


class TestValidation:
    def test_inflation_below_one_rejected(self):
        with pytest.raises(ModelError):
            LatencyModel(mean_inflation=0.9)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ModelError):
            LatencyModel(inflation_sigma=-0.1)

    def test_all_catalog_regions_work(self, model):
        regions = list(CLOUD_REGIONS)
        d = model.inter_agent_matrix(regions)
        assert d.shape == (len(regions), len(regions))
