"""Smoke + shape tests for the experiment harness (small scales)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.common import (
    PAPER_BETA_CALIBRATION,
    SeriesBundle,
    effective_beta,
    percent_change,
    scenarios_from_env,
)
from repro.experiments.fig2_motivating import run_fig2
from repro.experiments.fig3_theory import run_fig3
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.workloads.scenarios import ScenarioParams


class TestCommon:
    def test_effective_beta(self):
        assert effective_beta(400.0) == pytest.approx(400.0 / PAPER_BETA_CALIBRATION)
        with pytest.raises(ExperimentError):
            effective_beta(0.0)

    def test_percent_change(self):
        assert percent_change(100.0, 50.0) == -50.0
        with pytest.raises(ExperimentError):
            percent_change(0.0, 1.0)

    def test_scenarios_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCENARIOS", raising=False)
        assert scenarios_from_env(7) == 7
        monkeypatch.setenv("REPRO_SCENARIOS", "3")
        assert scenarios_from_env(7) == 3
        monkeypatch.setenv("REPRO_SCENARIOS", "zero")
        with pytest.raises(ExperimentError):
            scenarios_from_env(7)

    def test_series_bundle(self):
        bundle = SeriesBundle(label="x")
        bundle.add("traffic", np.array([0.0, 1.0]), np.array([5.0, 4.0]))
        times, values = bundle.get("traffic")
        assert list(values) == [5.0, 4.0]
        rows = bundle.csv_rows()
        assert rows[0].startswith("x,traffic,0.000,")
        with pytest.raises(ExperimentError):
            bundle.get("delay")


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "table2",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extension_experiments_registered(self):
        assert "noise" in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_descriptions_non_empty(self):
        assert all(spec.description for spec in EXPERIMENTS.values())


class TestFig2:
    def test_paper_claims(self):
        result = run_fig2()
        assert result.nearest_agent_of_user4 == "SG"
        traffic = {row["assignment of user 4"]: row["traffic (Mbps)"] for row in result.rows}
        delay = {row["assignment of user 4"]: row["delay cost F (ms)"] for row in result.rows}
        # Claim: TO beats SG on both traffic and delay.
        assert traffic["TO (session-aware)"] < traffic["SG (nearest)"]
        assert delay["TO (session-aware)"] < delay["SG (nearest)"]
        # Claim: SG transcodes faster.
        assert result.sg_transcode_ms < result.to_transcode_ms
        assert "Fig. 2" in result.format_report()


class TestFig3:
    def test_theory_checks(self):
        result = run_fig3(beta=6.0)
        assert result.num_states == 8
        assert result.tv_metropolis_rule < 1e-8
        assert result.tv_paper_rule > result.tv_metropolis_rule
        assert result.eq10_lower <= result.eq10_phi_hat <= result.eq10_upper
        assert 0.0 <= result.eq12_gap <= result.eq12_bound
        assert 0.0 <= result.eq13_gap <= result.eq13_bound_value
        assert "theory" in result.format_report()


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.fig4_convergence import run_fig4

        return run_fig4(seed=7, betas=(200.0, 400.0), duration_s=120.0)

    def test_traffic_drops_from_nrst(self, result):
        for beta, sim in result.simulations.items():
            assert sim.steady_state_mean("traffic") < 0.6 * sim.initial_value(
                "traffic"
            )

    def test_higher_beta_converges_lower(self, result):
        ss200 = result.simulations[200.0].steady_state_mean("traffic")
        ss400 = result.simulations[400.0].steady_state_mean("traffic")
        assert ss400 <= ss200

    def test_report_renders(self, result):
        text = result.format_report()
        assert "beta" in text and "200" in text and "400" in text


class TestFig5:
    def test_dynamics_shape(self):
        from repro.experiments.fig5_dynamics import run_fig5

        result = run_fig5(seed=7, duration_s=120.0)
        rows = {row["phase"]: row for row in result.phase_rows()}
        # Arrival raises traffic relative to the pre-arrival converged level.
        assert (
            rows["after arrival (10)"]["traffic@start"]
            > rows["initial (6 sessions)"]["traffic@end"]
        )
        # Departure lowers traffic relative to the pre-departure level.
        assert (
            rows["after departure (7)"]["traffic@start"]
            < rows["after arrival (10)"]["traffic@end"] * 1.5
        )
        assert rows["after departure (7)"]["sessions"] == 7.0


class TestFig10:
    def test_nngbr_shape(self):
        from repro.experiments.fig10_nngbr import run_fig10

        params = ScenarioParams(num_user_sites=64, num_users=40)
        result = run_fig10(num_scenarios=2, n_values=(1, 3, 7), params=params)
        traffic = {n: result.points[n][0] for n in result.points}
        delay = {n: result.points[n][1] for n in result.points}
        assert traffic[1] > traffic[3] > traffic[7]
        assert delay[7] >= delay[1]
        assert "n_ngbr" in result.format_report()


class TestFig9:
    def test_success_rate_shape(self):
        from repro.experiments.fig9_success_rate import run_fig9

        result = run_fig9(
            num_scenarios=4,
            bandwidth_grid=(500.0, 1000.0),
            transcode_grid=(30.0, 70.0),
        )
        band = result.rates["bandwidth"]
        # Success increases with capacity for every policy.
        for label in ("Nrst", "AgRank#2", "AgRank#3"):
            assert band[1000.0][label] >= band[500.0][label]
        # AgRank beats Nrst at high capacity.
        assert band[1000.0]["AgRank#3"] >= band[1000.0]["Nrst"]
        assert "Fig. 9" in result.format_report()


class TestRunExperiment:
    def test_run_by_id(self):
        result = run_experiment("fig2")
        assert result.nearest_agent_of_user4 == "SG"
