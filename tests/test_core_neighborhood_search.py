"""Tests for repro.core.neighborhood and repro.core.search."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.neighborhood import Move, count_session_moves, session_moves
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.search import SearchContext
from repro.errors import ModelError, SolverError
from tests.conftest import build_pair_conference


@pytest.fixture()
def conf():
    return build_pair_conference("720p", "360p", "360p", "480p")


@pytest.fixture()
def evaluator(conf):
    return ObjectiveEvaluator(conf, ObjectiveWeights.normalized_for(conf))


class TestMoves:
    def test_move_must_change_agent(self):
        with pytest.raises(ModelError):
            Move("user", 0, 1, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            Move("stream", 0, 0, 1)

    def test_apply_user_move(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        moved = Move("user", 0, 0, 1).apply(assignment)
        assert moved.agent_of(0) == 1
        assert moved.task_agent_of(0) == 0

    def test_apply_task_move(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        moved = Move("task", 0, 0, 1).apply(assignment)
        assert moved.task_agent_of(0) == 1

    def test_enumeration_count(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        moves = list(session_moves(conf, assignment, 0))
        # (2 users + 1 task) * (2 - 1) agents.
        assert len(moves) == 3
        assert count_session_moves(conf, 0) == 3

    def test_every_neighbor_differs_in_one_decision(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        for move in session_moves(conf, assignment, 0):
            assert assignment.difference(move.apply(assignment)) == 1

    def test_describe_is_readable(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        texts = [m.describe(conf) for m in session_moves(conf, assignment, 0)]
        assert any("u0" in t for t in texts)
        assert any("transcode" in t for t in texts)


class TestSearchContext:
    def test_initial_costs_cached(self, conf, evaluator):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        context = SearchContext(evaluator, assignment)
        assert context.session_cost(0).phi == pytest.approx(
            evaluator.session_phi(assignment, 0)
        )

    def test_feasible_candidates_all_feasible_when_unconstrained(
        self, conf, evaluator
    ):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        context = SearchContext(evaluator, assignment)
        assert len(context.feasible_candidates(0)) == 3

    def test_commit_swaps_state(self, conf, evaluator):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        context = SearchContext(evaluator, assignment)
        candidate = context.feasible_candidates(0)[0]
        context.commit(0, candidate)
        assert context.assignment == candidate.assignment
        assert context.total_phi() == pytest.approx(candidate.cost.phi)

    def test_delay_cap_filters_candidates(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        # Tight cap: only some states qualify.
        tight = ObjectiveEvaluator(
            build_tight_dmax(conf, 77.0), ObjectiveWeights.raw()
        )
        assignment = Assignment(np.array([0, 1]), np.array([0]))  # max flow 76
        context = SearchContext(tight, assignment)
        candidates = context.feasible_candidates(0)
        # Moving the task to L1 keeps 76 ms; moving u0 to L1 gives
        # H[L1,u0]=25 + sigma + ... -> check each candidate's delay is fine.
        for candidate in candidates:
            from repro.core.delay import max_session_flow_delay

            assert (
                max_session_flow_delay(
                    tight.conference, candidate.assignment, 0
                )
                <= 77.0 + 1e-9
            )

    def test_session_dynamics(self, conf, evaluator):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        context = SearchContext(evaluator, assignment)
        context.remove_session(0)
        assert context.active_sessions == []
        bootstrap = Assignment(np.array([1, 1]), np.array([1]))
        context.add_session(0, bootstrap)
        assert context.active_sessions == [0]
        assert context.assignment == bootstrap

    def test_add_active_session_rejected(self, conf, evaluator):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        context = SearchContext(evaluator, assignment)
        with pytest.raises(ModelError):
            context.add_session(0, assignment)

    def test_requires_active_sessions(self, conf, evaluator):
        with pytest.raises(SolverError):
            SearchContext(evaluator, Assignment.empty(conf), active_sids=[])


def build_tight_dmax(conf, dmax):
    """Rebuild the fixture conference with a custom delay cap."""
    from repro.model.conference import Conference

    return Conference(
        users=conf.users,
        sessions=conf.sessions,
        agents=conf.agents,
        topology=conf.topology,
        representations=conf.representations,
        dmax_ms=dmax,
    )
