"""Tests for repro.model.conference and repro.model.builder."""

import numpy as np
import pytest

from repro.errors import ModelError, UnknownEntityError
from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER
from tests.conftest import PAIR_D, PAIR_H, build_pair_conference


class TestThetaDerivation:
    def test_no_transcoding_when_demands_match_upstreams(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        # u1 demands 720p of u0 (== u0 upstream); u0 demands 480p of u1.
        assert conf.theta_sum == 0

    def test_transcoding_pair_created(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        # u1 demands 480p of u0's 720p stream -> one task (0 -> 1).
        assert conf.transcode_pairs == ((0, 1),)
        assert conf.theta[0, 1]
        assert not conf.theta[1, 0]

    def test_pair_index_lookup(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        assert conf.pair_index(0, 1) == 0
        with pytest.raises(UnknownEntityError):
            conf.pair_index(1, 0)

    def test_theta_never_set_across_sessions(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0")
        u0 = builder.user("720p", "480p")
        u1 = builder.user("480p", "720p")
        u2 = builder.user("720p", "480p")
        u3 = builder.user("480p", "720p")
        builder.add_session(u0, u1)
        builder.add_session(u2, u3)
        conf = builder.build(
            inter_agent_ms=np.zeros((1, 1)),
            agent_user_ms=np.full((1, 4), 10.0),
        )
        assert not conf.theta[0, 2]
        assert not conf.theta[0, 3]

    def test_session_pair_indices_partition_pairs(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0")
        ids = [builder.user("720p", "480p") for _ in range(4)]
        builder.add_session(ids[0], ids[1])
        builder.add_session(ids[2], ids[3])
        conf = builder.build(
            inter_agent_ms=np.zeros((1, 1)),
            agent_user_ms=np.full((1, 4), 10.0),
        )
        all_indices = sorted(
            i
            for sid in range(conf.num_sessions)
            for i in conf.session_pair_indices(sid)
        )
        assert all_indices == list(range(conf.theta_sum))


class TestValidation:
    def test_user_in_two_sessions_rejected(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent()
        u0 = builder.user("720p")
        u1 = builder.user("720p")
        builder.add_session(u0, u1)
        builder.add_session(u0, u1)
        with pytest.raises(ModelError, match="exactly one session"):
            builder.build(
                inter_agent_ms=np.zeros((1, 1)),
                agent_user_ms=np.full((1, 2), 10.0),
            )

    def test_orphan_user_rejected(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent()
        builder.user("720p")
        builder.user("720p")
        with pytest.raises(ModelError, match="without a session"):
            builder.build(
                inter_agent_ms=np.zeros((1, 1)),
                agent_user_ms=np.full((1, 2), 10.0),
            )

    def test_topology_shape_mismatch_rejected(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent()
        u0 = builder.user("720p")
        u1 = builder.user("720p")
        builder.add_session(u0, u1)
        with pytest.raises(ModelError):
            builder.build(
                inter_agent_ms=np.zeros((1, 1)),
                agent_user_ms=np.full((1, 3), 10.0),
            )

    def test_nonpositive_dmax_rejected(self):
        builder = ConferenceBuilder(PAPER_LADDER, dmax_ms=0.0)
        builder.add_agent()
        u0 = builder.user("720p")
        u1 = builder.user("720p")
        builder.add_session(u0, u1)
        with pytest.raises(ModelError):
            builder.build(
                inter_agent_ms=np.zeros((1, 1)),
                agent_user_ms=np.full((1, 2), 10.0),
            )


class TestAccessors:
    def test_participants(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        assert conf.participants(0) == (1,)
        assert conf.session_of(1) == 0

    def test_unknown_ids_raise(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        with pytest.raises(UnknownEntityError):
            conf.user(99)
        with pytest.raises(UnknownEntityError):
            conf.agent(99)
        with pytest.raises(UnknownEntityError):
            conf.session(99)
        with pytest.raises(UnknownEntityError):
            conf.session_of(99)

    def test_upstream_kappa(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        assert list(conf.upstream_kappa()) == [5.0, 1.0]

    def test_state_space_log_size(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        # 2 users + 1 task, 2 agents -> 3 * ln 2.
        assert conf.state_space_log_size() == pytest.approx(3 * np.log(2))

    def test_describe_mentions_sessions(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        text = conf.describe()
        assert "2 users" in text and "s0" in text


class TestBuilder:
    def test_unknown_representation_rejected(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        with pytest.raises(Exception):
            builder.user("4k")

    def test_session_with_unknown_user_rejected(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent()
        with pytest.raises(ModelError):
            builder.add_session(0, 1)

    def test_build_requires_topology(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent()
        u0 = builder.user("720p")
        u1 = builder.user("720p")
        builder.add_session(u0, u1)
        with pytest.raises(ModelError):
            builder.build()

    def test_ids_are_dense(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        assert [u.uid for u in conf.users] == [0, 1]
        assert [a.aid for a in conf.agents] == [0, 1]

    def test_pair_matrices_visible(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        assert np.array_equal(conf.topology.inter_agent_ms, PAIR_D)
        assert np.array_equal(conf.topology.agent_user_ms, PAIR_H)
