"""Tests for the runtime-based experiment runners (Figs. 4, 6, 7) at
reduced horizons."""

import pytest

from repro.experiments.fig4_convergence import run_fig4
from repro.experiments.fig6_agrank_init import run_fig6
from repro.experiments.fig7_sessions import pick_sessions_by_size, run_fig7


class TestFig4Runner:
    def test_summary_rows_complete(self):
        result = run_fig4(seed=3, betas=(400.0,), duration_s=60.0)
        (row,) = result.summary_rows()
        assert row["beta"] == 400
        assert row["traffic0 (Mbps)"] > 0
        assert row["t_conv (s)"] <= 60.0
        assert row["migrations"] > 0

    def test_bundle_series_aligned(self):
        result = run_fig4(seed=3, betas=(400.0,), duration_s=60.0)
        bundle = result.bundles[400.0]
        t_traffic, traffic = bundle.get("traffic")
        t_delay, delay = bundle.get("delay")
        assert len(t_traffic) == len(traffic) == len(t_delay) == len(delay)


class TestFig6Runner:
    def test_agrank_initial_beats_nrst(self):
        result = run_fig6(seed=7, duration_s=50.0)
        _, traffic = result.bundle.get("traffic")
        assert float(traffic[0]) < result.nrst_initial_traffic
        rows = result.summary_rows()
        assert rows[0]["quantity"] == "initial traffic (Mbps)"
        assert rows[0]["change (%)"] < 0


class TestFig7Runner:
    def test_tracks_requested_sizes(self):
        result = run_fig7(seed=7, duration_s=60.0)
        assert sorted(result.session_sizes.values(), reverse=True) == [5, 4, 3]
        for bundle in result.bundles.values():
            times, _ = bundle.get("traffic")
            assert times[-1] <= 60.0

    def test_pick_sessions_by_size(self):
        sizes = {0: 5, 1: 3, 2: 4, 3: 3}
        assert pick_sessions_by_size(sizes, (5, 4, 3)) == [0, 2, 1]
        assert pick_sessions_by_size(sizes, (3, 3)) == [1, 3]

    def test_pick_sessions_missing_size_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            pick_sessions_by_size({0: 5}, (4,))

    def test_report_mentions_all_sessions(self):
        result = run_fig7(seed=7, duration_s=40.0)
        text = result.format_report()
        for sid in result.bundles:
            assert str(sid) in text
