"""Tests for repro.netsim.noise and repro.netsim.pricing."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.netsim.noise import GaussianNoise, NoNoise, QuantizedPerturbation
from repro.netsim.pricing import (
    RegionPricing,
    egress_cost_per_hour,
    transcode_cost_per_hour,
)


class TestNoNoise:
    def test_identity(self, rng):
        assert NoNoise().perturb(42.0, rng) == 42.0


class TestGaussianNoise:
    def test_zero_sigma_is_identity(self, rng):
        assert GaussianNoise(sigma=0.0).perturb(1.5, rng) == 1.5

    def test_bounded(self, rng):
        noise = GaussianNoise(sigma=1.0, bound=0.5)
        draws = [noise.perturb(0.0, rng) for _ in range(200)]
        assert max(abs(d) for d in draws) <= 0.5

    def test_default_bound_three_sigma(self):
        assert GaussianNoise(sigma=2.0).bound == 6.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ModelError):
            GaussianNoise(sigma=-1.0)


class TestQuantizedPerturbation:
    def test_offsets_symmetric(self):
        model = QuantizedPerturbation(delta=0.4, levels=2)
        assert list(model.offsets) == pytest.approx([-0.4, -0.2, 0.0, 0.2, 0.4])

    def test_uniform_eta_default(self):
        model = QuantizedPerturbation(delta=1.0, levels=3)
        assert len(model.eta) == 7
        assert sum(model.eta) == pytest.approx(1.0)

    def test_perturbation_stays_in_support(self, rng):
        model = QuantizedPerturbation(delta=0.3, levels=4)
        support = {round(o, 9) for o in model.offsets}
        for _ in range(100):
            offset = model.perturb(10.0, rng) - 10.0
            assert round(offset, 9) in support

    def test_eta_validation(self):
        with pytest.raises(ModelError):
            QuantizedPerturbation(delta=1.0, levels=1, eta=(0.5, 0.5))  # wrong len
        with pytest.raises(ModelError):
            QuantizedPerturbation(delta=1.0, levels=1, eta=(0.9, 0.2, 0.2))  # sum != 1

    def test_delta_factor_at_least_one_for_uniform(self):
        """delta_f = E[exp(beta * error)] >= exp(E[..]) = 1 by Jensen."""
        model = QuantizedPerturbation(delta=0.2, levels=4)
        assert model.delta_factor(beta=5.0) >= 1.0

    def test_delta_factor_zero_delta_is_one(self):
        model = QuantizedPerturbation(delta=0.0, levels=2)
        assert model.delta_factor(beta=100.0) == pytest.approx(1.0)


class TestPricing:
    def test_egress_linear_in_mbps(self):
        assert egress_cost_per_hour(20.0, 0.09) == pytest.approx(
            2 * egress_cost_per_hour(10.0, 0.09)
        )

    def test_egress_magnitude(self):
        """100 Mbps sustained ~= 41.9 GB/h -> about $3.8/h at $0.09/GB."""
        assert egress_cost_per_hour(100.0, 0.09) == pytest.approx(3.77, rel=0.02)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ModelError):
            egress_cost_per_hour(-1.0, 0.09)

    def test_transcode_cost(self):
        pricing = RegionPricing(transcode_price_per_task_hour=0.05)
        assert transcode_cost_per_hour(4, pricing) == pytest.approx(0.2)

    def test_negative_price_rejected(self):
        with pytest.raises(ModelError):
            RegionPricing(egress_price_per_gb=-0.1)
