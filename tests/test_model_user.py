"""Tests for repro.model.user."""

import pytest

from repro.errors import ModelError
from repro.model.representation import PAPER_LADDER
from repro.model.user import Session, User

R720 = PAPER_LADDER["720p"]
R480 = PAPER_LADDER["480p"]
R360 = PAPER_LADDER["360p"]


class TestUser:
    def test_default_name(self):
        user = User(uid=3, upstream=R720, downstream_default=R480)
        assert user.name == "u3"

    def test_downstream_default_and_override(self):
        user = User(
            uid=0,
            upstream=R720,
            downstream_default=R480,
            downstream_overrides={5: R360},
        )
        assert user.downstream_from(1) == R480
        assert user.downstream_from(5) == R360

    def test_negative_uid_rejected(self):
        with pytest.raises(ModelError):
            User(uid=-1, upstream=R720, downstream_default=R480)

    def test_str_mentions_upstream(self):
        assert "720p" in str(User(uid=0, upstream=R720, downstream_default=R480))


class TestSession:
    def test_user_ids_sorted_and_deduped_check(self):
        session = Session(sid=0, user_ids=(3, 1, 2))
        assert session.user_ids == (1, 2, 3)

    def test_duplicate_users_rejected(self):
        with pytest.raises(ModelError):
            Session(sid=0, user_ids=(1, 1, 2))

    def test_minimum_two_users(self):
        with pytest.raises(ModelError):
            Session(sid=0, user_ids=(1,))

    def test_default_initiator_is_first(self):
        assert Session(sid=0, user_ids=(4, 2)).initiator == 2

    def test_explicit_initiator_must_participate(self):
        assert Session(sid=0, user_ids=(1, 2), initiator=2).initiator == 2
        with pytest.raises(ModelError):
            Session(sid=0, user_ids=(1, 2), initiator=9)

    def test_others_excludes_self(self):
        session = Session(sid=1, user_ids=(1, 2, 3))
        assert session.others(2) == (1, 3)

    def test_others_unknown_user_raises(self):
        with pytest.raises(ModelError):
            Session(sid=1, user_ids=(1, 2)).others(7)

    def test_len_and_contains(self):
        session = Session(sid=0, user_ids=(1, 2, 3))
        assert len(session) == 3
        assert 2 in session
        assert 9 not in session
