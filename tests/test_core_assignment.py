"""Tests for repro.core.assignment."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.errors import ModelError
from repro.types import UNASSIGNED
from tests.conftest import build_pair_conference


@pytest.fixture()
def conf():
    return build_pair_conference("720p", "360p", "360p", "480p")  # 1 task


class TestConstruction:
    def test_empty_all_unassigned(self, conf):
        empty = Assignment.empty(conf)
        assert all(a == UNASSIGNED for a in empty.user_agent)
        assert all(a == UNASSIGNED for a in empty.task_agent)
        assert not empty.is_session_assigned(conf, 0)

    def test_uniform(self, conf):
        uniform = Assignment.uniform(conf, 1)
        assert all(a == 1 for a in uniform.user_agent)
        assert uniform.is_session_assigned(conf, 0)

    def test_uniform_rejects_bad_agent(self, conf):
        with pytest.raises(ModelError):
            Assignment.uniform(conf, 5)

    def test_rejects_non_1d(self):
        with pytest.raises(ModelError):
            Assignment(np.zeros((2, 2)), np.zeros(1))


class TestImmutability:
    def test_arrays_read_only(self, conf):
        assignment = Assignment.uniform(conf, 0)
        with pytest.raises(ValueError):
            assignment.user_agent[0] = 1

    def test_with_user_returns_new(self, conf):
        a = Assignment.uniform(conf, 0)
        b = a.with_user(0, 1)
        assert a.agent_of(0) == 0
        assert b.agent_of(0) == 1
        assert b.agent_of(1) == 0

    def test_with_task_returns_new(self, conf):
        a = Assignment.uniform(conf, 0)
        b = a.with_task(0, 1)
        assert a.task_agent_of(0) == 0
        assert b.task_agent_of(0) == 1

    def test_input_arrays_copied(self, conf):
        ua = np.zeros(2, dtype=np.int64)
        ta = np.zeros(1, dtype=np.int64)
        assignment = Assignment(ua, ta)
        ua[0] = 1
        assert assignment.agent_of(0) == 0


class TestIdentity:
    def test_equality_and_hash(self, conf):
        a = Assignment.uniform(conf, 0)
        b = Assignment.uniform(conf, 0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.with_user(0, 1)

    def test_usable_as_dict_key(self, conf):
        counts = {Assignment.uniform(conf, 0): 1}
        counts[Assignment.uniform(conf, 0)] = 2
        assert len(counts) == 1

    def test_difference_counts_decisions(self, conf):
        a = Assignment.uniform(conf, 0)
        assert a.difference(a) == 0
        assert a.difference(a.with_user(1, 1)) == 1
        assert a.difference(a.with_user(1, 1).with_task(0, 1)) == 2

    def test_difference_shape_mismatch(self, conf):
        a = Assignment.uniform(conf, 0)
        other = Assignment(np.zeros(3, dtype=np.int64), np.zeros(1, dtype=np.int64))
        with pytest.raises(ModelError):
            a.difference(other)


class TestSessionOps:
    def test_clear_session(self, conf):
        a = Assignment.uniform(conf, 1)
        cleared = a.with_session_cleared(conf, 0)
        assert all(x == UNASSIGNED for x in cleared.user_agent)
        assert all(x == UNASSIGNED for x in cleared.task_agent)

    def test_merged_takes_target_sessions_decisions(self, conf):
        base = Assignment.empty(conf)
        other = Assignment.uniform(conf, 1)
        merged = base.merged(other, conf, 0)
        assert merged == other
