"""Protocol-level tests of the runtime: FREEZE semantics, sampling grid,
migration accounting, and hop-interval statistics."""

import numpy as np
import pytest

from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.simulation import ConferencingSimulator, SimulationConfig
from repro.workloads.prototype import prototype_conference


@pytest.fixture(scope="module")
def evaluator():
    conference = prototype_conference(seed=5, num_sessions=5)
    return ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )


class TestFreezeSemantics:
    def test_freeze_count_matches_migrations(self, evaluator):
        config = SimulationConfig(
            duration_s=60.0,
            hop_interval_mean_s=5.0,
            freeze_duration_s=0.1,
            markov=MarkovConfig(beta=32.0),
            seed=1,
        )
        result = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(5)),
            config,
        ).run()
        assert result.freezes == len(result.migrations)

    def test_zero_freeze_duration_skips_handshake(self, evaluator):
        config = SimulationConfig(
            duration_s=30.0,
            hop_interval_mean_s=5.0,
            freeze_duration_s=0.0,
            markov=MarkovConfig(beta=32.0),
            seed=1,
        )
        result = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(5)),
            config,
        ).run()
        assert result.freezes == 0
        assert len(result.migrations) > 0

    def test_large_freeze_reduces_hop_throughput(self, evaluator):
        """Freezing everyone for 2 s per migration must reduce the number
        of wakes that fit into the horizon."""

        def hops_with_freeze(duration: float) -> int:
            config = SimulationConfig(
                duration_s=40.0,
                hop_interval_mean_s=4.0,
                freeze_duration_s=duration,
                markov=MarkovConfig(beta=32.0),
                seed=2,
            )
            return ConferencingSimulator(
                evaluator,
                DynamicsSchedule.static(range(5)),
                config,
            ).run().hops

        assert hops_with_freeze(2.0) < hops_with_freeze(0.0)


class TestHopStatistics:
    def test_mean_hop_interval_close_to_config(self, evaluator):
        """Each session wakes roughly every hop_interval_mean_s seconds."""
        mean_s = 5.0
        config = SimulationConfig(
            duration_s=400.0,
            sample_interval_s=50.0,
            hop_interval_mean_s=mean_s,
            freeze_duration_s=0.0,
            markov=MarkovConfig(beta=32.0),
            seed=3,
        )
        result = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(5)),
            config,
        ).run()
        expected = 5 * 400.0 / mean_s  # sessions * duration / mean
        assert expected * 0.75 <= result.hops <= expected * 1.25


class TestMigrationAccounting:
    def test_overhead_sums_records(self, evaluator):
        config = SimulationConfig(
            duration_s=40.0,
            hop_interval_mean_s=4.0,
            markov=MarkovConfig(beta=32.0),
            seed=4,
        )
        result = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(5)),
            config,
        ).run()
        assert result.total_overhead_kb == pytest.approx(
            sum(r.overhead_kb for r in result.migrations)
        )
        # Every record belongs to an active session and has a description.
        for record in result.migrations:
            assert 0 <= record.sid < 5
            assert record.description
            assert record.kind in ("user", "task")

    def test_migration_times_ordered(self, evaluator):
        config = SimulationConfig(
            duration_s=40.0,
            hop_interval_mean_s=4.0,
            markov=MarkovConfig(beta=32.0),
            seed=4,
        )
        result = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(5)),
            config,
        ).run()
        times = [r.time_s for r in result.migrations]
        assert times == sorted(times)


class TestSamplingGrid:
    def test_samples_equally_spaced(self, evaluator):
        config = SimulationConfig(
            duration_s=20.0,
            sample_interval_s=2.5,
            markov=MarkovConfig(beta=32.0),
            seed=5,
        )
        result = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(5)),
            config,
        ).run()
        times, _ = result.series("traffic")
        assert np.allclose(np.diff(times), 2.5)
