"""Tests for repro.core.markov — Alg. 1."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.exact import solve_exact
from repro.core.markov import (
    MarkovAssignmentSolver,
    MarkovConfig,
    hop_log_weights,
    hop_probabilities,
    metropolis_log_acceptance,
)
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.search import SearchContext
from repro.errors import SolverError
from repro.netsim.noise import QuantizedPerturbation
from tests.conftest import build_pair_conference


@pytest.fixture()
def conf():
    return build_pair_conference("720p", "360p", "360p", "480p")


@pytest.fixture()
def evaluator(conf):
    return ObjectiveEvaluator(conf, ObjectiveWeights.normalized_for(conf))


class TestHopProbabilities:
    def test_sum_to_one(self):
        probabilities = hop_probabilities(1.0, np.array([0.5, 1.5, 2.0]), beta=4.0)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_two_candidate_ratio(self):
        """p_a / p_b = exp(0.5 * beta * (phi_b - phi_a))."""
        beta = 2.0
        probabilities = hop_probabilities(1.0, np.array([0.4, 1.2]), beta=beta)
        expected_ratio = np.exp(0.5 * beta * (1.2 - 0.4))
        assert probabilities[0] / probabilities[1] == pytest.approx(expected_ratio)

    def test_lower_phi_more_probable(self):
        probabilities = hop_probabilities(1.0, np.array([0.2, 0.8, 1.4]), beta=3.0)
        assert probabilities[0] > probabilities[1] > probabilities[2]

    def test_extreme_beta_no_overflow(self):
        """Raw-unit objectives at beta = 400 must not overflow."""
        probabilities = hop_probabilities(
            500.0, np.array([100.0, 900.0]), beta=400.0
        )
        assert np.isfinite(probabilities).all()
        assert probabilities[0] == pytest.approx(1.0)

    def test_log_weights_formula(self):
        weights = hop_log_weights(2.0, np.array([1.0, 3.0]), beta=4.0)
        assert list(weights) == pytest.approx([2.0, -2.0])


class TestConfig:
    def test_validation(self):
        with pytest.raises(SolverError):
            MarkovConfig(beta=0.0)
        with pytest.raises(SolverError):
            MarkovConfig(tau=0.0)
        with pytest.raises(SolverError):
            MarkovConfig(hop_rule="gibbs")


class TestSolver:
    def test_paper_rule_always_migrates(self, evaluator):
        solver = MarkovAssignmentSolver(
            evaluator,
            Assignment(np.array([0, 1]), np.array([0])),
            rng=np.random.default_rng(0),
        )
        for _ in range(20):
            result = solver.session_hop(0)
            assert result.moved
        assert solver.migrations == 20

    def test_escapes_local_optimum_to_find_global(self, conf, evaluator):
        """The fixture's landscape has a local optimum (phi = 3.95) between
        Nrst and the global optimum (phi = 3.6); greedy provably gets stuck
        there (see test_core_solvers), while the chain crosses the ridge at
        moderate beta."""
        exact = solve_exact(evaluator)
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            config=MarkovConfig(beta=8.0),
            rng=np.random.default_rng(1),
        )
        solver.run(400)
        assert solver.best_phi == pytest.approx(exact.phi, rel=1e-9)
        assert solver.best_assignment == exact.assignment

    def test_best_phi_monotone_nonincreasing(self, conf, evaluator):
        solver = MarkovAssignmentSolver(
            evaluator, nearest_assignment(conf), rng=np.random.default_rng(2)
        )
        best_values = []
        for _ in range(30):
            solver.session_hop(0)
            best_values.append(solver.best_phi)
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best_values, best_values[1:]))

    def test_metropolis_rule_can_reject(self, conf, evaluator):
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            config=MarkovConfig(beta=64.0, hop_rule="metropolis"),
            rng=np.random.default_rng(3),
        )
        results = [solver.session_hop(0) for _ in range(60)]
        assert any(not r.moved for r in results)  # rejections happen
        assert any(r.moved for r in results)  # and acceptances too

    def test_run_until_stable_terminates(self, conf, evaluator):
        solver = MarkovAssignmentSolver(
            evaluator, nearest_assignment(conf), rng=np.random.default_rng(4)
        )
        hops = solver.run_until_stable(min_hops=10, max_hops=500)
        assert 10 <= hops <= 500

    def test_deterministic_under_seed(self, conf, evaluator):
        runs = []
        for _ in range(2):
            solver = MarkovAssignmentSolver(
                evaluator, nearest_assignment(conf), rng=np.random.default_rng(7)
            )
            solver.run(50)
            runs.append(solver.assignment)
        assert runs[0] == runs[1]

    def test_noisy_oracle_still_feasible(self, conf, evaluator):
        from repro.core.feasibility import is_feasible

        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            noise=QuantizedPerturbation(delta=0.05, levels=2),
            rng=np.random.default_rng(5),
        )
        solver.run(80)
        assert is_feasible(conf, solver.assignment)

    def test_run_requires_sessions(self, conf, evaluator):
        solver = MarkovAssignmentSolver(
            evaluator,
            Assignment(np.array([0, 1]), np.array([0])),
            rng=np.random.default_rng(0),
        )
        solver.context.remove_session(0)
        with pytest.raises(SolverError):
            solver.run(1)

    def test_hop_callback_invoked(self, conf, evaluator):
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            rng=np.random.default_rng(0),
        )
        seen = []
        solver.run(5, on_hop=seen.append)
        assert len(seen) == 5

class TestMetropolisHastings:
    """The Hastings correction and its (probe-free) backward count."""

    def test_log_acceptance_pins_hastings_ratio(self):
        """``beta * (phi - phi') + log(|N(f)| / |N(f')|)`` exactly."""
        value = metropolis_log_acceptance(
            beta=2.0,
            phi_current=1.0,
            phi_proposal=0.5,
            forward_degree=6,
            backward_degree=3,
        )
        assert value == pytest.approx(2.0 * 0.5 + np.log(2.0))
        # Symmetric neighbourhoods reduce to pure Metropolis.
        symmetric = metropolis_log_acceptance(4.0, 1.0, 1.25, 5, 5)
        assert symmetric == pytest.approx(-1.0)
        # A shrinking neighbourhood at the proposal boosts acceptance.
        assert metropolis_log_acceptance(1.0, 1.0, 1.0, 8, 2) == pytest.approx(
            np.log(4.0)
        )

    @pytest.mark.parametrize("batched", [False, True])
    def test_count_feasible_matches_probe_context(self, batched):
        """The backward degree equals what the old full-SearchContext
        probe computed, without rebuilding any search state."""
        from repro.workloads.scenarios import ScenarioParams, scenario_conference

        conference = scenario_conference(
            seed=23,
            params=ScenarioParams(
                num_user_sites=32,
                num_users=16,
                mean_bandwidth_mbps=200.0,
                mean_transcode_slots=18.0,
            ),
        )
        evaluator = ObjectiveEvaluator(
            conference, ObjectiveWeights.normalized_for(conference)
        )
        assignment = nearest_assignment(conference)
        context = SearchContext(evaluator, assignment, batched=batched)
        for sid in range(min(4, conference.num_sessions)):
            for candidate in context.feasible_candidates(sid)[:5]:
                probe = SearchContext(
                    evaluator,
                    candidate.assignment,
                    active_sids=context.active_sessions,
                    batched=batched,
                )
                expected = len(probe.feasible_candidates(sid))
                assert context.count_feasible(sid, candidate.assignment) == expected

    def test_metropolis_hop_builds_no_probe_context(self, conf, evaluator, monkeypatch):
        """Regression: the Hastings count must reuse the live context."""
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            config=MarkovConfig(beta=16.0, hop_rule="metropolis"),
            rng=np.random.default_rng(11),
        )
        constructions = []
        original_init = SearchContext.__init__

        def counting_init(self, *args, **kwargs):
            constructions.append(self)
            return original_init(self, *args, **kwargs)

        monkeypatch.setattr(SearchContext, "__init__", counting_init)
        for _ in range(25):
            solver.session_hop(0)
        assert constructions == []


class TestSolverMultiSession:
    def test_multi_session_hops_only_touch_own_session(self, proto_conf):
        evaluator = ObjectiveEvaluator(
            proto_conf, ObjectiveWeights.normalized_for(proto_conf)
        )
        solver = MarkovAssignmentSolver(
            evaluator, nearest_assignment(proto_conf), rng=np.random.default_rng(6)
        )
        before = solver.assignment
        result = solver.session_hop(3)
        if result.moved:
            after = solver.assignment
            changed_users = np.nonzero(before.user_agent != after.user_agent)[0]
            changed_pairs = np.nonzero(before.task_agent != after.task_agent)[0]
            touched_sids = {proto_conf.session_of(int(u)) for u in changed_users}
            touched_sids.update(
                proto_conf.session_of(proto_conf.transcode_pairs[int(i)][0])
                for i in changed_pairs
            )
            assert touched_sids == {3}
