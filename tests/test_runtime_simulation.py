"""Tests for repro.runtime.simulation — the event-driven control plane."""

import numpy as np
import pytest

from repro.core.feasibility import is_feasible
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import SimulationError
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.simulation import ConferencingSimulator, SimulationConfig
from repro.workloads.prototype import prototype_conference


@pytest.fixture(scope="module")
def evaluator():
    conference = prototype_conference(seed=3, num_sessions=4)
    return ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )


def quick_config(**overrides):
    defaults = dict(
        duration_s=40.0,
        sample_interval_s=2.0,
        hop_interval_mean_s=4.0,
        markov=MarkovConfig(beta=32.0),
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            SimulationConfig(duration_s=0.0)
        with pytest.raises(SimulationError):
            SimulationConfig(sample_interval_s=0.0)
        with pytest.raises(SimulationError):
            SimulationConfig(hop_interval_mean_s=-1.0)
        with pytest.raises(SimulationError):
            SimulationConfig(freeze_duration_s=-0.1)


class TestStaticRun:
    def test_series_cover_duration(self, evaluator):
        conference = evaluator.conference
        simulator = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(conference.num_sessions)),
            quick_config(),
        )
        result = simulator.run()
        times, values = result.series("traffic")
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(40.0)
        assert len(times) == 21  # every 2 s inclusive
        assert (values >= 0).all()

    def test_traffic_decreases_from_nrst(self, evaluator):
        conference = evaluator.conference
        simulator = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(conference.num_sessions)),
            quick_config(duration_s=60.0),
        )
        result = simulator.run()
        assert result.steady_state_mean("traffic") < result.initial_value("traffic")

    def test_final_assignment_feasible(self, evaluator):
        conference = evaluator.conference
        simulator = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(conference.num_sessions)),
            quick_config(),
        )
        result = simulator.run()
        assert is_feasible(conference, result.final_assignment)

    def test_migrations_match_hops_with_paper_rule(self, evaluator):
        """The paper rule migrates on every wake (when candidates exist)."""
        conference = evaluator.conference
        simulator = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(conference.num_sessions)),
            quick_config(),
        )
        result = simulator.run()
        assert len(result.migrations) == result.hops > 0
        assert result.freezes == len(result.migrations)
        assert result.total_overhead_kb > 0

    def test_deterministic_under_seed(self, evaluator):
        conference = evaluator.conference

        def run():
            return ConferencingSimulator(
                evaluator,
                DynamicsSchedule.static(range(conference.num_sessions)),
                quick_config(),
            ).run()

        a, b = run(), run()
        assert np.array_equal(a.series("traffic")[1], b.series("traffic")[1])
        assert a.final_assignment == b.final_assignment

    def test_per_session_tracking(self, evaluator):
        conference = evaluator.conference
        simulator = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(conference.num_sessions)),
            quick_config(track_sessions=(0, 2)),
        )
        result = simulator.run()
        _, s0 = result.series("s0/traffic")
        assert (s0 >= 0).all()
        assert "s2/delay" in result.recorder


class TestDynamicsRun:
    def test_arrival_and_departure_change_session_count(self, evaluator):
        conference = evaluator.conference
        schedule = DynamicsSchedule.fig5(
            initial_sids=[0, 1],
            arriving_sids=[2, 3],
            departing_sids=[0],
            arrival_time_s=10.0,
            departure_time_s=25.0,
        )
        simulator = ConferencingSimulator(evaluator, schedule, quick_config())
        result = simulator.run()
        times, sessions = result.series("sessions")
        assert sessions[times < 10.0].max() == 2
        assert sessions[(times > 11.0) & (times < 25.0)].max() == 4
        assert sessions[times > 26.0].max() == 3

    def test_departed_session_stops_contributing(self, evaluator):
        conference = evaluator.conference
        schedule = DynamicsSchedule.fig5(
            initial_sids=[0, 1],
            arriving_sids=[],
            departing_sids=[0, 1],
            arrival_time_s=5.0,
            departure_time_s=20.0,
        )
        # Departing everything leaves nothing to sample; keep one session.
        schedule = DynamicsSchedule.fig5(
            initial_sids=[0, 1, 2],
            arriving_sids=[],
            departing_sids=[0, 1],
            arrival_time_s=5.0,
            departure_time_s=20.0,
        )
        simulator = ConferencingSimulator(evaluator, schedule, quick_config())
        result = simulator.run()
        times, sessions = result.series("sessions")
        assert sessions[times > 21.0].max() == 1

    def test_agrank_bootstrap_policy(self, evaluator):
        conference = evaluator.conference
        simulator = ConferencingSimulator(
            evaluator,
            DynamicsSchedule.static(range(conference.num_sessions)),
            quick_config(initial_policy="agrank"),
        )
        result = simulator.run()
        assert is_feasible(conference, result.final_assignment)
