"""Tests for nearest / bootstrap / exact / greedy / annealing solvers."""

import math

import numpy as np
import pytest

from repro.core.annealing import AnnealingConfig, simulated_annealing
from repro.core.assignment import Assignment
from repro.core.bootstrap import bootstrap_assignment, try_bootstrap
from repro.core.exact import enumerate_assignments, solve_exact, state_space_size
from repro.core.feasibility import is_feasible
from repro.core.greedy import greedy_descent
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import InfeasibleError, SolverError
from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER
from tests.conftest import PAIR_D, PAIR_H, build_pair_conference


@pytest.fixture()
def conf():
    return build_pair_conference("720p", "360p", "360p", "480p")


@pytest.fixture()
def evaluator(conf):
    return ObjectiveEvaluator(conf, ObjectiveWeights.normalized_for(conf))


class TestNearest:
    def test_each_user_at_argmin_h(self, proto_conf):
        assignment = nearest_assignment(proto_conf)
        h = proto_conf.topology.agent_user_ms
        for uid in range(proto_conf.num_users):
            chosen = assignment.agent_of(uid)
            assert h[chosen, uid] == pytest.approx(h[:, uid].min())

    def test_tasks_at_source_agent(self, proto_conf):
        assignment = nearest_assignment(proto_conf)
        for i, (source, _dest) in enumerate(proto_conf.transcode_pairs):
            assert assignment.task_agent_of(i) == assignment.agent_of(source)

    def test_partial_sessions_with_base(self, proto_conf):
        base = Assignment.empty(proto_conf)
        partial = nearest_assignment(proto_conf, sids=[2], base=base)
        assert partial.is_session_assigned(proto_conf, 2)
        assert not partial.is_session_assigned(proto_conf, 0)


class TestBootstrap:
    def test_unknown_policy_rejected(self, proto_conf):
        with pytest.raises(SolverError):
            try_bootstrap(proto_conf, "random")

    def test_nearest_policy_success_unconstrained(self, proto_conf):
        result = try_bootstrap(proto_conf, "nearest")
        assert result.success
        assert is_feasible(proto_conf, result.assignment)

    def test_failure_reports_session(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0", download_mbps=1.0)
        builder.add_agent(name="L1", download_mbps=1.0)
        u0 = builder.user("720p", name="u0")
        u1 = builder.user("720p", name="u1")
        builder.add_session(u0, u1)
        conf = builder.build(inter_agent_ms=PAIR_D, agent_user_ms=PAIR_H)
        result = try_bootstrap(conf, "agrank")
        assert not result.success
        assert result.failed_sid == 0
        with pytest.raises(InfeasibleError):
            bootstrap_assignment(conf, "agrank")

    def test_check_delay_toggle(self):
        """With a tiny Dmax every assignment violates (8); the capacity-
        only notion used by Fig. 9 still succeeds."""
        builder = ConferenceBuilder(PAPER_LADDER, dmax_ms=5.0)
        builder.add_agent(name="L0")
        builder.add_agent(name="L1")
        u0 = builder.user("720p", name="u0")
        u1 = builder.user("720p", name="u1")
        builder.add_session(u0, u1)
        conf = builder.build(inter_agent_ms=PAIR_D, agent_user_ms=PAIR_H)
        assert not try_bootstrap(conf, "nearest", check_delay=True).success
        assert try_bootstrap(conf, "nearest", check_delay=False).success


class TestExact:
    def test_state_space_size(self, conf):
        assert state_space_size(conf) == 2 ** 3

    def test_enumeration_counts_feasible(self, conf):
        feasible = list(enumerate_assignments(conf))
        assert len(feasible) == 8  # unconstrained toy-like instance

    def test_enumeration_respects_cap(self, conf):
        with pytest.raises(SolverError):
            list(enumerate_assignments(conf, max_states=4))

    def test_optimum_is_minimal(self, conf, evaluator):
        exact = solve_exact(evaluator)
        for assignment in enumerate_assignments(conf):
            assert evaluator.total(assignment).phi >= exact.phi - 1e-12

    def test_no_feasible_raises(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0", download_mbps=1.0)
        u0 = builder.user("720p", name="u0")
        u1 = builder.user("720p", name="u1")
        builder.add_session(u0, u1)
        conf = builder.build(
            inter_agent_ms=np.zeros((1, 1)), agent_user_ms=np.full((1, 2), 5.0)
        )
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.raw())
        with pytest.raises(SolverError):
            solve_exact(evaluator)


class TestGreedy:
    def test_reaches_local_optimum(self, conf, evaluator):
        result = greedy_descent(evaluator, nearest_assignment(conf))
        assert result.converged
        # No single move improves further.
        from repro.core.search import SearchContext

        context = SearchContext(evaluator, result.assignment)
        phi = context.session_cost(0).phi
        for candidate in context.feasible_candidates(0):
            assert candidate.phi >= phi - 1e-12

    def test_stuck_in_local_optimum_markov_escapes(self, conf, evaluator):
        """The fixture landscape traps best-improvement descent at
        phi = 3.95 while the global optimum is 3.6 — the motivation for
        the Markov chain's ability to take uphill hops."""
        exact = solve_exact(evaluator)
        result = greedy_descent(evaluator, nearest_assignment(conf))
        assert result.converged
        assert result.phi > exact.phi + 0.1
        assert result.phi == pytest.approx(3.95, abs=1e-9)

    def test_never_worsens(self, proto_conf):
        evaluator = ObjectiveEvaluator(
            proto_conf, ObjectiveWeights.normalized_for(proto_conf)
        )
        initial = nearest_assignment(proto_conf)
        initial_phi = evaluator.total(initial).phi
        result = greedy_descent(evaluator, initial, max_iterations=200)
        assert result.phi <= initial_phi + 1e-9


class TestAnnealing:
    def test_config_validation(self):
        with pytest.raises(SolverError):
            AnnealingConfig(initial_temperature=0.0)
        with pytest.raises(SolverError):
            AnnealingConfig(decay=1.0)
        with pytest.raises(SolverError):
            AnnealingConfig(hops=0)

    def test_temperature_schedule(self):
        config = AnnealingConfig(initial_temperature=1.0, decay=0.5, final_temperature=0.1)
        assert config.temperature(0) == 1.0
        assert config.temperature(1) == 0.5
        assert config.temperature(10) == pytest.approx(0.1)  # floored

    def test_finds_toy_optimum(self, conf, evaluator):
        exact = solve_exact(evaluator)
        result = simulated_annealing(
            evaluator,
            nearest_assignment(conf),
            config=AnnealingConfig(hops=300),
            rng=np.random.default_rng(0),
        )
        assert result.phi == pytest.approx(exact.phi)
        assert result.accepted <= result.proposed

    def test_best_state_is_feasible(self, conf, evaluator):
        result = simulated_annealing(
            evaluator,
            nearest_assignment(conf),
            config=AnnealingConfig(hops=100),
            rng=np.random.default_rng(1),
        )
        assert is_feasible(conf, result.assignment)
        assert math.isfinite(result.phi)
