"""Tests for repro.netsim.geo and repro.netsim.sites."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.netsim.geo import EARTH_RADIUS_KM, GeoPoint, great_circle_km
from repro.netsim.sites import (
    CLOUD_REGIONS,
    CONTINENT_WEIGHTS,
    USER_SITES,
    region,
    sample_user_sites,
)


class TestGeo:
    def test_zero_distance(self):
        p = GeoPoint(10.0, 20.0)
        assert great_circle_km(p, p) == 0.0

    def test_symmetry(self):
        a, b = GeoPoint(37.87, -122.27), GeoPoint(35.68, 139.69)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_known_distance_sf_tokyo(self):
        """Berkeley-Tokyo is roughly 8 200 km."""
        a, b = GeoPoint(37.87, -122.27), GeoPoint(35.68, 139.69)
        assert great_circle_km(a, b) == pytest.approx(8250, rel=0.05)

    def test_antipodal_max(self):
        a, b = GeoPoint(0.0, 0.0), GeoPoint(0.0, 180.0)
        assert great_circle_km(a, b) == pytest.approx(np.pi * EARTH_RADIUS_KM, rel=1e-6)

    def test_latitude_bounds(self):
        with pytest.raises(ModelError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ModelError):
            GeoPoint(0.0, 181.0)


class TestSites:
    def test_catalog_continent_mix(self):
        """The catalog is PlanetLab-like: NA-heavy, then EU, then Asia."""
        counts: dict[str, int] = {}
        for site in USER_SITES:
            counts[site.continent] = counts.get(site.continent, 0) + 1
        assert counts["NA"] > counts["EU"] > counts["SA"]
        assert counts["AS"] >= 8

    def test_continent_weights_normalized(self):
        assert sum(CONTINENT_WEIGHTS.values()) == pytest.approx(1.0)

    def test_region_lookup_by_name_and_code(self):
        assert region("Tokyo").code == "ap-northeast-1"
        assert region("ap-northeast-1").name == "Tokyo"
        with pytest.raises(ModelError):
            region("Mars")

    def test_seven_plus_regions_available(self):
        assert len(CLOUD_REGIONS) >= 7

    def test_sample_exact_catalog_prefix(self):
        rng = np.random.default_rng(0)
        sites = sample_user_sites(5, rng)
        assert [s.name for s in sites] == [s.name for s in USER_SITES[:5]]

    def test_sample_expansion_deterministic(self):
        a = sample_user_sites(256, np.random.default_rng(42))
        b = sample_user_sites(256, np.random.default_rng(42))
        assert [s.name for s in a] == [s.name for s in b]
        assert len(a) == 256

    def test_sample_expansion_unique_names(self):
        sites = sample_user_sites(300, np.random.default_rng(1))
        names = [s.name for s in sites]
        assert len(set(names)) == len(names)

    def test_sample_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            sample_user_sites(0, np.random.default_rng(0))
