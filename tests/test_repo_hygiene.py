"""Repository-hygiene tests: docs exist, stay consistent with the code,
and the public API re-exports resolve."""

from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDocs:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")

    @pytest.fixture(scope="class")
    def experiments(self):
        return (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")

    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO_ROOT / "README.md").read_text(encoding="utf-8")

    def test_design_confirms_paper(self, design):
        assert "Hajiesmaili" in design
        assert "ICDCS" in design

    def test_design_indexes_every_artifact(self, design):
        for artifact in ("F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "T2"):
            assert f"| {artifact} " in design, f"missing experiment row {artifact}"

    def test_design_lists_every_bench_target(self, design):
        bench_dir = REPO_ROOT / "benchmarks"
        for bench in sorted(bench_dir.glob("bench_*.py")):
            if bench.name in ("bench_core_perf.py",):
                continue  # perf micro-benches are not paper artifacts
            assert bench.name in design, f"{bench.name} not referenced in DESIGN.md"

    def test_experiments_records_every_figure(self, experiments):
        for heading in (
            "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6",
            "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Table II",
        ):
            assert heading in experiments, f"missing record for {heading}"

    def test_readme_mentions_examples(self, readme):
        examples = REPO_ROOT / "examples"
        for script in sorted(examples.glob("*.py")):
            assert script.name in readme, f"{script.name} not documented in README"

    def test_license_present(self):
        assert (REPO_ROOT / "LICENSE").read_text(encoding="utf-8").startswith(
            "MIT License"
        )


class TestTreeHygiene:
    """No build debris in the tree: bytecode caches and fleet output
    directories are ignored and never committed."""

    REQUIRED_IGNORES = ("__pycache__/", "*.pyc", "fleet_runs/", "runs/")

    def test_gitignore_covers_caches_and_fleet_outputs(self):
        patterns = [
            line.strip()
            for line in (REPO_ROOT / ".gitignore")
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip() and not line.startswith("#")
        ]
        for required in self.REQUIRED_IGNORES:
            assert required in patterns, f".gitignore is missing {required}"

    def test_no_bytecode_or_fleet_outputs_tracked_by_git(self):
        import shutil
        import subprocess

        if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
            pytest.skip("not a git checkout")
        tracked = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
        offenders = [
            path
            for path in tracked
            if "__pycache__" in path
            or path.endswith(".pyc")
            or path.startswith(("fleet_runs/", "runs/"))
        ]
        assert not offenders, f"tracked build debris: {offenders}"


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.model as model
        import repro.netsim as netsim
        import repro.runtime as runtime
        import repro.workloads as workloads

        for module in (core, model, netsim, runtime, workloads):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestExamplesImportable:
    def test_examples_compile(self):
        import py_compile

        for script in sorted((REPO_ROOT / "examples").glob("*.py")):
            py_compile.compile(str(script), doraise=True)
