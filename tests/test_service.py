"""Tests for repro.service: the long-lived online placement service.

The two correctness pins from the service-mode issue live here:

* **Replay determinism** — feeding an identical request log to two
  fresh service instances produces byte-identical ``decisions.jsonl``
  files (latency is observational, never logged into decisions).
* **Simulator equivalence** — a trace driven through the service (with
  refinement disabled) lands on the same final placement, phi and
  active set as the :class:`ConferencingSimulator` playing the same
  trace with hops quiesced.  One engine, two frontends.

Plus the error-path contract: malformed payloads, infeasible arrivals
and fault-window rejections each answer a structured error, leave the
live placement untouched, and keep the process alive.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import InfeasibleError
from repro.fleet.compile import compile_trace
from repro.fleet.spec import RunSpec, SimulationSpec, WorkloadSpec
from repro.runtime.faults import Fault, FaultSchedule
from repro.runtime.simulation import ConferencingSimulator
from repro.runtime.traces import TraceEvent, dump_trace
from repro.service import (
    HTTPServiceClient,
    InProcessClient,
    PlacementService,
    ServiceConfig,
    ServiceServer,
    drive_trace,
    initial_sids_of,
    service_from_spec,
)

#: Quiesced simulation: hops effectively never fire inside the horizon,
#: so placement is fully determined by arrivals/departures/resizes.
QUIET_SIM = SimulationSpec(
    duration_s=40.0, hop_interval_mean_s=1.0e9, seed=3
)


def service_spec(num_sessions: int = 5) -> RunSpec:
    return RunSpec(
        name="svc",
        workload=WorkloadSpec(kind="prototype", num_sessions=num_sessions),
        simulation=QUIET_SIM,
    )


#: A small churn story over a 4-session pool (fits the default
#: ``prototype_smoke`` spec too): grow, shrink, renegotiate, return.
TRACE = (
    TraceEvent(0.0, "arrive", 0),
    TraceEvent(0.0, "arrive", 1),
    TraceEvent(5.0, "arrive", 2),
    TraceEvent(8.0, "arrive", 3),
    TraceEvent(12.0, "depart", 1),
    TraceEvent(15.0, "resize", 0),
    TraceEvent(20.0, "arrive", 1),
    TraceEvent(25.0, "depart", 3),
)


def make_service(config: ServiceConfig | None = None, **spec_kwargs):
    return service_from_spec(
        service_spec(**spec_kwargs),
        initial_sids=initial_sids_of(TRACE),
        config=config,
    )


class TestRequestSurface:
    def test_arrive_returns_full_decision(self):
        client = InProcessClient(make_service())
        response = client.arrive(2, time_s=1.0)
        assert response["status"] == "ok"
        assert response["op"] == "arrive"
        assert response["sid"] == 2
        assert set(response["placement"]) == {"users", "tasks"}
        assert response["placement"]["users"]  # non-empty
        assert response["active"] == 3
        assert response["phi"] > 0.0
        assert response["session_phi"] > 0.0
        assert isinstance(response["refined"], int)
        assert response["latency_ms"] >= 0.0
        assert isinstance(response["budget_overrun"], bool)

    def test_snapshot_names_every_live_user_and_task(self):
        service = make_service()
        snap = InProcessClient(service).snapshot()
        assert snap["active_sids"] == [0, 1]
        conference = service.live.conference
        expected_users = {
            str(uid)
            for sid in (0, 1)
            for uid in conference.session(sid).user_ids
        }
        assert set(snap["users"]) == expected_users
        assert snap["phi"] == service.live.total_phi()
        assert snap["hops"] == 0

    def test_depart_then_rearrive_round_trips(self):
        client = InProcessClient(make_service())
        assert client.depart(1, time_s=1.0)["active"] == 1
        back = client.arrive(1, time_s=2.0)
        assert back["status"] == "ok"
        assert back["active"] == 2

    def test_resolve_recomputes_from_scratch(self):
        client = InProcessClient(make_service())
        client.arrive(2, time_s=1.0)
        response = client.resolve(time_s=2.0)
        assert response["status"] == "ok"
        assert response["active"] == 3

    def test_metrics_counts_decisions(self):
        client = InProcessClient(make_service())
        client.arrive(2, time_s=1.0)
        client.depart(2, time_s=2.0)
        client.request({"op": "depart", "sid": 2, "time_s": 3.0})  # error
        metrics = client.metrics()
        assert metrics["decisions"] >= 3
        assert metrics["errors"] == 1
        assert metrics["by_op"]["arrive"] == 1
        assert metrics["latency_p99_ms"] >= 0.0


class TestReplayDeterminism:
    #: A request log mixing ok decisions and rejected requests.
    REQUESTS = (
        {"op": "arrive", "sid": 2, "time_s": 1.0},
        {"op": "arrive", "sid": 2, "time_s": 2.0},  # duplicate -> error
        {"op": "resize", "sid": 0, "time_s": 3.0},
        {"op": "depart", "sid": 1, "time_s": 4.0},
        {"op": "snapshot"},  # read-only: not decision-logged
        {"op": "arrive", "sid": 99, "time_s": 5.0},  # unknown_session
        {"op": "resolve", "time_s": 6.0},
        {"op": "arrive", "sid": 3, "time_s": 7.0},
    )

    def replay(self, tmp_path, tag: str) -> bytes:
        log = tmp_path / f"decisions-{tag}.jsonl"
        service = make_service(ServiceConfig(decision_log=str(log)))
        client = InProcessClient(service)
        for payload in self.REQUESTS:
            client.request(dict(payload))
        return log.read_bytes()

    def test_identical_request_log_gives_byte_identical_decisions(
        self, tmp_path
    ):
        assert self.replay(tmp_path, "a") == self.replay(tmp_path, "b")

    def test_decision_log_excludes_latency_fields(self, tmp_path):
        raw = self.replay(tmp_path, "c")
        records = [json.loads(line) for line in raw.splitlines()]
        # Mutating ops and errors only; snapshot is absent.
        assert len(records) == len(self.REQUESTS) - 1
        for record in records:
            assert "latency_ms" not in record
            assert "budget_overrun" not in record
        assert [r["status"] for r in records].count("error") == 2

    def test_http_and_inprocess_drives_match(self, tmp_path):
        logs = []
        for tag in ("inproc", "http"):
            log = tmp_path / f"decisions-{tag}.jsonl"
            service = make_service(ServiceConfig(decision_log=str(log)))
            if tag == "inproc":
                client = InProcessClient(service)
                report = drive_trace(client, TRACE)
            else:
                server = ServiceServer(service, port=0).start()
                try:
                    client = HTTPServiceClient(server.url)
                    report = drive_trace(client, TRACE)
                finally:
                    server.shutdown()
            assert report.errors == 0
            assert report.events == 6
            logs.append(log.read_bytes())
        assert logs[0] == logs[1]


class TestSimulatorEquivalence:
    def test_service_drive_matches_quiesced_simulator(self):
        """The tentpole pin: one trace, two frontends, bit-identical
        placement.  Simulator hops are quiesced (enormous WAIT mean)
        and service refinement is disabled, so both sides reduce to the
        same arrive/depart/resize splices on the shared engine."""
        spec = service_spec()
        compiled = compile_trace(list(TRACE), spec)
        result = ConferencingSimulator(
            compiled.evaluator,
            compiled.schedule,
            compiled.config,
            noise=compiled.noise,
        ).run()

        service = service_from_spec(
            spec,
            initial_sids=initial_sids_of(TRACE),
            config=ServiceConfig(refine_hops=0),
        )
        report = drive_trace(InProcessClient(service), TRACE)
        assert report.errors == 0

        live = service.live
        assert live.assignment == result.final_assignment
        assert live.active_sessions == [0, 1, 2]
        assert live.total_phi() == result.final_value("phi")

    def test_refinement_only_improves(self):
        """With refinement on, the service's phi is never worse than the
        splice-only placement (greedy commits are strictly improving)."""
        plain = service_from_spec(
            service_spec(),
            initial_sids=initial_sids_of(TRACE),
            config=ServiceConfig(refine_hops=0),
        )
        refined = service_from_spec(
            service_spec(),
            initial_sids=initial_sids_of(TRACE),
            config=ServiceConfig(refine_hops=4),
        )
        drive_trace(InProcessClient(plain), TRACE)
        drive_trace(InProcessClient(refined), TRACE)
        assert refined.live.total_phi() <= plain.live.total_phi()


def snapshot_of(service: PlacementService) -> dict:
    return service.request({"op": "snapshot"})


def assert_state_unchanged(service: PlacementService, before: dict) -> None:
    after = snapshot_of(service)
    for key in ("active_sids", "users", "tasks", "phi"):
        assert after[key] == before[key]


class TestErrorPaths:
    """Satellite: every rejection is structured, state-preserving, and
    non-fatal — the service keeps answering afterwards."""

    @pytest.mark.parametrize(
        "payload, code",
        [
            ("not a dict", "malformed"),
            ([1, 2, 3], "malformed"),
            ({"op": "teleport", "sid": 0}, "malformed"),
            ({"op": "arrive"}, "malformed"),  # sid missing
            ({"op": "arrive", "sid": "zero"}, "malformed"),
            ({"op": "arrive", "sid": True}, "malformed"),
            ({"op": "arrive", "sid": 2, "when": 4.0}, "malformed"),
            ({"op": "arrive", "sid": 2, "time_s": -1.0}, "malformed"),
            ({"op": "arrive", "sid": 2, "time_s": float("nan")}, "malformed"),
            ({"op": "snapshot", "sid": 0}, "malformed"),
            ({"op": "arrive", "sid": 99}, "unknown_session"),
            ({"op": "arrive", "sid": 0}, "duplicate_session"),
            ({"op": "depart", "sid": 2}, "inactive_session"),
            ({"op": "resize", "sid": 2}, "inactive_session"),
        ],
    )
    def test_rejection_preserves_state_and_process(self, payload, code):
        service = make_service()
        before = snapshot_of(service)
        response = service.request(payload)
        assert response["status"] == "error"
        assert response["error"]["code"] == code
        assert response["error"]["message"]
        assert_state_unchanged(service, before)
        # Still alive: a valid request succeeds afterwards.
        assert service.request({"op": "arrive", "sid": 2})["status"] == "ok"

    def test_last_session_cannot_depart(self):
        service = service_from_spec(service_spec(), initial_sids=[0])
        before = snapshot_of(service)
        response = service.request({"op": "depart", "sid": 0})
        assert response["error"]["code"] == "empty_conference"
        assert_state_unchanged(service, before)

    def test_time_regression_rejected(self):
        service = make_service()
        assert service.request(
            {"op": "arrive", "sid": 2, "time_s": 10.0}
        )["status"] == "ok"
        before = snapshot_of(service)
        response = service.request(
            {"op": "depart", "sid": 2, "time_s": 5.0}
        )
        assert response["error"]["code"] == "time_regression"
        assert_state_unchanged(service, before)
        # The clock did not advance on the rejection.
        assert service.request(
            {"op": "depart", "sid": 2, "time_s": 10.0}
        )["status"] == "ok"

    def test_infeasible_arrival_is_structured_and_state_preserving(
        self, monkeypatch
    ):
        service = make_service()
        before = snapshot_of(service)

        def explode(*args, **kwargs):
            raise InfeasibleError("capacity exhausted")

        monkeypatch.setattr(service.live, "arrive", explode)
        monkeypatch.setattr(service.live, "resolve_from_scratch", explode)
        response = service.request({"op": "arrive", "sid": 2})
        assert response["status"] == "error"
        assert response["error"]["code"] == "infeasible"
        assert "capacity exhausted" in response["error"]["message"]
        assert_state_unchanged(service, before)
        monkeypatch.undo()
        assert service.request({"op": "arrive", "sid": 2})["status"] == "ok"

    def test_infeasible_splice_falls_back_to_from_scratch(self, monkeypatch):
        """First-chance incremental placement fails -> the whole-
        placement re-solve admits the session and the decision is
        flagged as a fallback."""
        service = make_service()

        def explode(sid):
            raise InfeasibleError("splice does not fit")

        monkeypatch.setattr(service.live, "arrive", explode)
        response = service.request({"op": "arrive", "sid": 2})
        assert response["status"] == "ok"
        assert response["fallback"] is True
        assert 2 in service.live.active_sessions

    def test_fault_window_rejects_mutations_not_reads(self):
        faults = FaultSchedule(
            faults=(Fault("outage", 0, 10.0, 20.0, 1.0),)
        )
        base = make_service()
        service = PlacementService(base.live, faults=faults)
        before = snapshot_of(service)
        inside = service.request({"op": "arrive", "sid": 2, "time_s": 15.0})
        assert inside["status"] == "error"
        assert inside["error"]["code"] == "fault_window"
        assert "outage" in inside["error"]["message"]
        assert_state_unchanged(service, before)
        # Read-only ops pass through the window...
        assert service.request({"op": "snapshot"})["status"] == "ok"
        # ...and the same mutation lands once the window clears.
        after = service.request({"op": "arrive", "sid": 2, "time_s": 20.0})
        assert after["status"] == "ok"


class TestHTTPTransport:
    def test_round_trip_and_structured_errors(self):
        server = ServiceServer(make_service(), port=0).start()
        try:
            client = HTTPServiceClient(server.url)
            ok = client.arrive(2, time_s=1.0)
            assert ok["status"] == "ok"
            assert ok["placement"]["users"]
            snap = client.snapshot()
            assert sorted(snap["active_sids"]) == [0, 1, 2]
            bad = client.request({"op": "teleport"})
            assert bad["status"] == "error"
            assert bad["error"]["code"] == "malformed"
            dup = client.arrive(2, time_s=2.0)
            assert dup["error"]["code"] == "duplicate_session"
            metrics = client.metrics()
            assert metrics["decisions"] >= 4
        finally:
            server.shutdown()

    def test_shutdown_endpoint_stops_the_server(self):
        import time

        server = ServiceServer(make_service(), port=0).start()
        client = HTTPServiceClient(server.url, timeout_s=1.0)
        assert client.shutdown()["status"] == "ok"
        # The endpoint answers before the loop stops (it must not
        # deadlock its own handler), so poll until the port goes dark.
        deadline = time.time() + 5.0
        while time.time() < deadline:
            try:
                client.snapshot()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server still answering after shutdown")


class TestMetricsArtifacts:
    def test_rolling_metrics_log_is_written(self, tmp_path):
        path = tmp_path / "service.jsonl"
        service = make_service(
            ServiceConfig(metrics_log=str(path), metrics_flush_every=2)
        )
        client = InProcessClient(service)
        for i, sid in enumerate((2, 3, 4)):
            client.arrive(sid, time_s=float(i + 1))
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert lines, "flush_every=2 must have produced snapshots"
        last = lines[-1]
        assert last["decisions"] >= 2
        assert "latency_p99_ms" in last
        assert len(last["latency_histogram"]) == len(
            last["latency_buckets_ms"]
        ) + 1
        assert sum(last["latency_histogram"]) == last["decisions"]


class TestServeCLI:
    def write_trace(self, tmp_path):
        path = tmp_path / "churn.jsonl"
        dump_trace(list(TRACE), path)
        return path

    def run_drive(self, tmp_path, capsys, tag, extra=()):
        trace = self.write_trace(tmp_path)
        decisions = tmp_path / f"decisions-{tag}.jsonl"
        argv = [
            "serve",
            "--drive",
            str(trace),
            "--decisions",
            str(decisions),
            *extra,
        ]
        assert main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        return decisions.read_bytes(), summary

    def test_drive_replay_is_byte_identical(self, tmp_path, capsys):
        first, summary = self.run_drive(tmp_path, capsys, "a")
        second, _ = self.run_drive(tmp_path, capsys, "b")
        assert first == second
        assert summary["events"] == 6
        assert summary["errors"] == 0
        assert summary["metrics"]["decisions"] >= 6

    def test_http_drive_matches_in_process(self, tmp_path, capsys):
        inproc, _ = self.run_drive(tmp_path, capsys, "inproc")
        http, _ = self.run_drive(tmp_path, capsys, "http", extra=["--http"])
        assert inproc == http

    def test_bad_spec_is_a_usage_error(self, tmp_path, capsys):
        trace = self.write_trace(tmp_path)
        assert (
            main(["serve", "--spec", "nope_not_real", "--drive", str(trace)])
            == 2
        )
        assert "nope_not_real" in capsys.readouterr().err
