"""Tests for repro.netsim.measurement — the measured-vs-true view (A8)."""

import numpy as np
import pytest

from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import ModelError
from repro.netsim.measurement import MeasurementErrorModel, measured_conference


class TestMeasuredConference:
    def test_zero_error_is_identity(self, proto_conf, rng):
        model = MeasurementErrorModel(delay_sigma_ms=0.0, sigma_speed_error=0.0)
        measured = measured_conference(proto_conf, model, rng)
        assert np.array_equal(
            measured.topology.inter_agent_ms, proto_conf.topology.inter_agent_ms
        )
        assert np.array_equal(
            measured.topology.agent_user_ms, proto_conf.topology.agent_user_ms
        )

    def test_structure_preserved(self, proto_conf, rng):
        model = MeasurementErrorModel(delay_sigma_ms=5.0, sigma_speed_error=0.2)
        measured = measured_conference(proto_conf, model, rng)
        assert measured.num_users == proto_conf.num_users
        assert measured.num_sessions == proto_conf.num_sessions
        assert measured.transcode_pairs == proto_conf.transcode_pairs
        assert [a.name for a in measured.agents] == [
            a.name for a in proto_conf.agents
        ]

    def test_measured_d_valid_topology(self, proto_conf, rng):
        model = MeasurementErrorModel(delay_sigma_ms=10.0)
        measured = measured_conference(proto_conf, model, rng)
        d = measured.topology.inter_agent_ms
        assert np.allclose(np.diag(d), 0.0)
        assert measured.topology.is_symmetric()
        assert (d[~np.eye(d.shape[0], dtype=bool)] > 0).all()

    def test_bias_shifts_delays(self, proto_conf, rng):
        model = MeasurementErrorModel(delay_sigma_ms=0.0, delay_bias_ms=7.0)
        measured = measured_conference(proto_conf, model, rng)
        true_h = proto_conf.topology.agent_user_ms
        assert np.allclose(measured.topology.agent_user_ms, true_h + 7.0)

    def test_speed_error_changes_latency(self, proto_conf):
        model = MeasurementErrorModel(delay_sigma_ms=0.0, sigma_speed_error=0.5)
        measured = measured_conference(
            proto_conf, model, np.random.default_rng(1)
        )
        ladder = proto_conf.representations
        high, low = ladder["720p"], ladder["480p"]
        changed = any(
            measured.agent(a.aid).transcoding_latency_ms(high, low)
            != a.transcoding_latency_ms(high, low)
            for a in proto_conf.agents
        )
        assert changed

    def test_validation(self):
        with pytest.raises(ModelError):
            MeasurementErrorModel(delay_sigma_ms=-1.0)
        with pytest.raises(ModelError):
            MeasurementErrorModel(sigma_speed_error=-0.1)


class TestOptimizeOnMeasuredEvaluateOnTrue:
    def test_assignment_transfers_and_stays_useful(self, proto_conf):
        """The A8 mechanism: solve on the measured view, score on the
        truth.  Moderate measurement error must not destroy the win over
        Nrst."""
        rng = np.random.default_rng(2)
        model = MeasurementErrorModel(delay_sigma_ms=5.0, sigma_speed_error=0.2)
        measured = measured_conference(proto_conf, model, rng)

        true_eval = ObjectiveEvaluator(
            proto_conf, ObjectiveWeights.normalized_for(proto_conf)
        )
        measured_eval = ObjectiveEvaluator(
            measured, ObjectiveWeights.normalized_for(measured)
        )
        initial = nearest_assignment(measured)
        solver = MarkovAssignmentSolver(
            measured_eval,
            initial,
            config=MarkovConfig(beta=32.0),
            rng=np.random.default_rng(3),
        )
        solver.run(400)

        true_before = true_eval.total(nearest_assignment(proto_conf)).phi
        true_after = true_eval.total(solver.best_assignment).phi
        assert true_after < true_before
