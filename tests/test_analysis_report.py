"""Tests for the report layer: record schema, loaders, spec diffs,
comparisons, CSV/HTML artifacts, and the DESIGN.md schema round-trip."""

import json
import re
from html.parser import HTMLParser
from pathlib import Path

import pytest

from repro.analysis.html import render_html, sparkline_svg
from repro.analysis.report import (
    ENVELOPE_FIELDS,
    FLEET_METRIC_FIELDS,
    SCHEMA_VERSION,
    compare_fleets,
    comparison_csv,
    flatten_spec,
    load_fleet_run,
    load_fleet_runs,
    load_result_records,
    metric_stats,
    record_schema_version,
    render_comparison,
    render_run_report,
    spec_diff,
    upgrade_record,
    validate_record,
    write_records,
)
from repro.analysis.series import downsample_series
from repro.analysis.stats import bootstrap_ci
from repro.errors import ExperimentError, SpecError
from repro.fleet import FleetOrchestrator
from repro.fleet.spec import RunSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

def small_spec(name: str = "cmp-base", **solver) -> RunSpec:
    """A 2-replicate prototype spec that runs in ~a second."""
    spec = {
        "name": name,
        "workload": {"kind": "prototype", "num_sessions": 2},
        "simulation": {
            "duration_s": 8.0,
            "hop_interval_mean_s": 4.0,
            "seed": 3,
        },
        "sweep": {"replicates": 2, "axes": []},
        "solver": dict(solver) if solver else {},
    }
    return RunSpec.from_dict(spec)


@pytest.fixture(scope="module")
def fleet_dirs(tmp_path_factory):
    """Two finished fleet runs differing only in solver.beta."""
    root = tmp_path_factory.mktemp("fleets")
    base_dir = root / "base"
    b200_dir = root / "beta200"
    FleetOrchestrator(base_dir).run(small_spec("cmp-base"))
    FleetOrchestrator(b200_dir).run(small_spec("cmp-beta200", beta=200))
    return base_dir, b200_dir


class TestBootstrapCi:
    def test_contains_mean_and_is_deterministic(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = bootstrap_ci(values)
        assert lo <= 3.0 <= hi
        assert (lo, hi) == bootstrap_ci(values)

    def test_single_value_degenerates(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ExperimentError):
            bootstrap_ci([])
        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ExperimentError):
            bootstrap_ci([1.0, 2.0], n_boot=0)


class TestDownsample:
    def test_short_series_kept_verbatim(self):
        payload = downsample_series([0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        assert payload == {"t": [0.0, 1.0, 2.0], "v": [5.0, 6.0, 7.0]}

    def test_long_series_capped(self):
        times = list(range(200))
        payload = downsample_series(times, [float(t) for t in times], 32)
        assert len(payload["t"]) == 32 == len(payload["v"])
        assert payload["t"][0] == 0.0 and payload["t"][-1] == 199.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ExperimentError):
            downsample_series([0.0], [1.0], max_points=1)


class TestSchemaUpgrade:
    def test_v0_record_is_stamped(self):
        upgraded = upgrade_record({"status": "ok", "name": "x"})
        assert upgraded["schema_version"] == SCHEMA_VERSION

    def test_newer_writer_rejected(self):
        with pytest.raises(SpecError, match="upgrade repro"):
            upgrade_record({"schema_version": SCHEMA_VERSION + 1})

    def test_non_object_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            upgrade_record([1, 2])

    def test_hops_per_sec_derived_not_persisted(self, fleet_dirs):
        base_dir, _ = fleet_dirs
        on_disk = [
            json.loads(line)
            for line in (base_dir / "results.jsonl").read_text().splitlines()
        ]
        assert all("hops_per_sec" not in record for record in on_disk)
        loaded = load_result_records(base_dir / "results.jsonl")
        assert all(record["hops_per_sec"] > 0 for record in loaded)

    def test_validate_rejects_undocumented_fleet_field(self):
        record = upgrade_record(
            {"name": "x", "status": "ok", "surprise_metric": 1.0}
        )
        with pytest.raises(SpecError, match="undocumented"):
            validate_record(record, fleet=True)
        validate_record(record)  # experiment records may carry extras

    def test_validate_rejects_missing_required(self):
        with pytest.raises(SpecError, match="missing required"):
            validate_record({"schema_version": SCHEMA_VERSION})


class TestLoader:
    def test_missing_file_diagnostic(self, tmp_path):
        with pytest.raises(SpecError, match="no fleet results"):
            load_result_records(tmp_path / "results.jsonl")

    def test_empty_file_diagnostic(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SpecError, match="no complete run records"):
            load_result_records(path)

    def test_all_torn_lines_diagnostic(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"status": "o\n{"na', encoding="utf-8")
        with pytest.raises(SpecError, match="torn"):
            load_result_records(path)

    def test_missing_directory_diagnostic(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_fleet_run(tmp_path / "nope")

    def test_load_fleet_run_recovers_spec(self, fleet_dirs):
        base_dir, _ = fleet_dirs
        run = load_fleet_run(base_dir)
        assert run.label == "base"
        assert run.spec is not None and run.spec.name == "cmp-base"
        assert len(run.ok_records) == 2 and run.failed == 0

    def test_torn_spec_degrades_to_none(self, tmp_path):
        records = [{"name": "x", "status": "ok", "traffic_mbps": 1.0}]
        write_records(records, tmp_path / "results.jsonl")
        (tmp_path / "spec.yaml").write_text("{not yaml", encoding="utf-8")
        run = load_fleet_run(tmp_path)
        assert run.spec is None and len(run.records) == 1

    def test_duplicate_labels_deduped(self, tmp_path):
        for sub in ("a/out", "b/out"):
            d = tmp_path / sub
            d.mkdir(parents=True)
            write_records([{"name": "x", "status": "ok"}], d / "results.jsonl")
        runs = load_fleet_runs([tmp_path / "a/out", tmp_path / "b/out"])
        assert [run.label for run in runs] == ["out", "out#2"]


class TestRecordHelpers:
    def test_result_record_rejects_envelope_collision(self):
        from repro.experiments.common import result_record

        with pytest.raises(ExperimentError, match="envelope"):
            result_record("x", {"status": "partial"})
        with pytest.raises(ExperimentError, match="envelope"):
            result_record("x", {"seed": 1})

    def test_result_record_nullifies_non_finite(self):
        from repro.experiments.common import result_record

        record = result_record("x", {"m": float("nan"), "k": float("inf")})
        assert record["m"] is None and record["k"] is None

    def test_write_records_rejects_raw_nan(self, tmp_path):
        with pytest.raises(ValueError):
            write_records(
                [{"name": "x", "status": "ok", "m": float("nan")}],
                tmp_path / "out.jsonl",
            )


class TestSpecDiff:
    def test_flatten_collapses_lists(self):
        flat = flatten_spec(
            {"a": {"b": 1}, "sweep": {"axes": [{"path": "p"}]}}
        )
        assert flat["a.b"] == 1
        assert flat["sweep.axes"] == '[{"path": "p"}]'

    def test_diff_names_only_varying_fields(self, fleet_dirs):
        runs = load_fleet_runs(fleet_dirs)
        rows = dict(spec_diff(runs))
        assert set(rows) == {"name", "solver.beta"}
        assert rows["solver.beta"] == [400.0, 200.0]

    def test_missing_spec_shows_unknown(self, tmp_path, fleet_dirs):
        write_records(
            [{"name": "x", "status": "ok"}], tmp_path / "results.jsonl"
        )
        runs = load_fleet_runs([fleet_dirs[0], tmp_path])
        rows = dict(spec_diff(runs))
        assert all(values[1] == "?" for values in rows.values())


class TestComparison:
    def test_metric_stats_skips_non_numeric(self):
        records = [
            {"m": 1.0},
            {"m": 3.0},
            {"m": "oops"},
            {"m": True},
            {},
        ]
        stats = metric_stats(records, "m")
        assert stats.count == 2 and stats.mean == 2.0
        assert metric_stats(records, "absent") is None

    def test_compare_rejects_all_failed_run(self, tmp_path):
        write_records(
            [{"name": "x", "status": "error", "error": "boom"}],
            tmp_path / "results.jsonl",
        )
        run = load_fleet_run(tmp_path)
        with pytest.raises(SpecError, match="no successful records"):
            compare_fleets([run])

    def test_compare_rejects_nothing(self):
        with pytest.raises(SpecError, match="nothing to compare"):
            compare_fleets([])

    def test_deltas_vs_baseline(self, fleet_dirs):
        comparison = compare_fleets(load_fleet_runs(fleet_dirs))
        assert comparison.baseline.label == "base"
        delta = comparison.delta("beta200", "phi")
        assert delta is not None
        base = comparison.stats[("base", "phi")]
        other = comparison.stats[("beta200", "phi")]
        assert delta[0] == pytest.approx(other.mean - base.mean)
        assert base.ci_lo <= base.mean <= base.ci_hi

    def test_render_comparison_tables(self, fleet_dirs):
        text = render_comparison(compare_fleets(load_fleet_runs(fleet_dirs)))
        assert "spec diff" in text and "solver.beta" in text
        assert "400" in text and "200" in text
        assert "metric deltas vs baseline 'base'" in text
        for metric in ("traffic_mbps", "delay_ms", "phi", "hops_per_sec"):
            assert metric in text

    def test_csv_blocks_parse(self, fleet_dirs):
        csv_text = comparison_csv(compare_fleets(load_fleet_runs(fleet_dirs)))
        blocks = csv_text.split("\n\n")
        assert blocks[0].startswith("# spec diff\n")
        assert blocks[1].startswith("# metrics\n")
        spec_lines = blocks[0].splitlines()
        assert spec_lines[1] == "spec_field,base,beta200"
        assert "solver.beta,400,200" in spec_lines
        import csv as csv_module

        rows = list(
            csv_module.DictReader(blocks[1].splitlines()[1:])
        )
        phi_rows = {r["run"]: r for r in rows if r["metric"] == "phi"}
        assert set(phi_rows) == {"base", "beta200"}
        assert phi_rows["base"]["delta"] == ""
        assert float(phi_rows["beta200"]["mean"]) > 0
        assert phi_rows["beta200"]["delta_pct"] != ""

    def test_single_run_report(self, fleet_dirs):
        text = render_run_report(load_fleet_run(fleet_dirs[0]))
        assert "2 runs recorded (2 ok, 0 failed)" in text
        assert "fleet 'base' summary" in text


class _HtmlChecker(HTMLParser):
    """Asserts balanced tags and counts svg/polyline elements."""

    VOID = {"meta", "br"}

    def __init__(self):
        super().__init__()
        self.stack: list[str] = []
        self.svg = 0
        self.polylines = 0
        self.text = []

    def handle_starttag(self, tag, attrs):
        if tag in self.VOID:
            return
        if tag == "svg":
            self.svg += 1
        self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        if tag == "polyline":
            self.polylines += 1

    def handle_endtag(self, tag):
        assert self.stack and self.stack[-1] == tag, (tag, self.stack[-4:])
        self.stack.pop()

    def handle_data(self, data):
        self.text.append(data)


class TestHtml:
    def test_dashboard_is_self_contained_and_balanced(self, fleet_dirs):
        html_text = render_html(compare_fleets(load_fleet_runs(fleet_dirs)))
        assert html_text.startswith("<!DOCTYPE html>")
        assert "http" not in html_text  # no external assets
        checker = _HtmlChecker()
        checker.feed(html_text)
        assert not checker.stack
        # one sparkline per run per stored series (traffic/delay/phi),
        # one polyline per successful record.
        assert checker.svg == 2 * 3
        assert checker.polylines == 2 * 3 * 2
        body = "".join(checker.text)
        assert "base" in body and "beta200" in body
        assert "solver.beta" in body

    def test_sparkline_handles_empty_series(self):
        assert "no series" in sparkline_svg([], 0.0, 1.0)
        svg = sparkline_svg([{"t": [0, 1], "v": [0.0, 1.0]}], 0.0, 1.0)
        assert svg.startswith("<svg") and "polyline" in svg

    def test_flat_scale_does_not_divide_by_zero(self):
        svg = sparkline_svg([{"t": [0, 1], "v": [2.0, 2.0]}], 2.0, 2.0)
        assert "polyline" in svg


def _documented_fields(text: str, heading: str) -> list[str]:
    section = text.split(heading, 1)[1]
    section = re.split(r"\n#{2,3} ", section)[0]
    return re.findall(r"^\| `([a-z0-9_]+)` \|", section, re.MULTILINE)


class TestSchemaDocRoundTrip:
    """DESIGN.md 'Result records' stays honest against the code and
    against records a real fleet writes."""

    @pytest.fixture(scope="class")
    def design(self):
        return (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")

    def test_envelope_table_matches_code(self, design):
        assert _documented_fields(
            design, "### Envelope (all records)"
        ) == list(ENVELOPE_FIELDS)

    def test_fleet_table_matches_code(self, design):
        assert _documented_fields(
            design, "### Fleet metric payload"
        ) == list(FLEET_METRIC_FIELDS)

    def test_real_record_round_trips_against_doc(self, design, fleet_dirs):
        documented = set(
            _documented_fields(design, "### Envelope (all records)")
        ) | set(_documented_fields(design, "### Fleet metric payload"))
        records = load_result_records(fleet_dirs[0] / "results.jsonl")
        required = {
            name
            for name, (_t, required, _p) in ENVELOPE_FIELDS.items()
            if required
        }
        for record in records:
            validate_record(record, fleet=True)
            fields = set(record) - {"hops_per_sec"}
            assert fields <= documented, fields - documented
            assert required <= fields
            assert record["schema_version"] == SCHEMA_VERSION

    def test_experiment_records_share_envelope(self):
        from repro.experiments.fig2_motivating import run_fig2

        for record in run_fig2().result_records():
            validate_record(record)
            json.dumps(record, allow_nan=False)
            assert record["schema_version"] == record_schema_version(record)


def _check_records(records, expected_axes):
    """Shared assertions for experiment-emitted record lists."""
    assert records
    for record in records:
        validate_record(record)
        json.dumps(record, allow_nan=False)
        assert record["schema_version"] == record_schema_version(record)
        assert set(record["axes"]) == set(expected_axes)


class TestExperimentRecordEmission:
    """Every experiment runner emits the shared record shape (cheap
    configurations; the paper-shape checks live in test_experiments)."""

    def test_fig3(self):
        from repro.experiments.fig3_theory import run_fig3

        _check_records(
            run_fig3().result_records(), {"check", "solver.beta"}
        )

    def test_fig4(self):
        from repro.experiments.fig4_convergence import run_fig4

        result = run_fig4(seed=7, betas=(400.0,), duration_s=10.0)
        _check_records(result.result_records(), {"solver.beta"})

    def test_fig5(self):
        from repro.experiments.fig5_dynamics import run_fig5

        result = run_fig5(
            seed=7, duration_s=50.0, arrival_time_s=15.0,
            departure_time_s=30.0,
        )
        _check_records(result.result_records(), {"phase"})

    def test_fig6(self):
        from repro.experiments.fig6_agrank_init import run_fig6

        records = run_fig6(seed=7, duration_s=10.0).result_records()
        _check_records(records, {"solver.policy"})
        assert {r["axes"]["solver.policy"] for r in records} == {
            "agrank",
            "nearest",
        }

    def test_fig7(self):
        from repro.experiments.fig7_sessions import run_fig7

        result = run_fig7(seed=7, duration_s=20.0)
        _check_records(result.result_records(), {"session"})

    def test_fig9(self):
        from repro.experiments.fig9_success_rate import run_fig9

        result = run_fig9(
            num_scenarios=1, bandwidth_grid=(500.0,), transcode_grid=(30.0,)
        )
        records = result.result_records()
        _check_records(records, {"panel", "capacity"})
        assert any("success_pct_agrank2" in r for r in records)

    def test_fig10(self):
        from repro.experiments.fig10_nngbr import run_fig10
        from repro.workloads.scenarios import ScenarioParams

        result = run_fig10(
            num_scenarios=1,
            n_values=(1, 2),
            params=ScenarioParams(num_user_sites=64, num_users=40),
        )
        _check_records(result.result_records(), {"solver.n_ngbr"})

    def test_noise(self):
        from repro.experiments.noise_robustness import run_noise_robustness

        result = run_noise_robustness(
            seed=7, deltas=(0.0, 0.1), trials=1, hops=50
        )
        _check_records(result.result_records(), {"noise.delta"})

    def test_fig8_and_table2_from_synthetic_sweep(self):
        from repro.experiments.alpha_sweep import ALPHA_CONFIGS, POLICIES
        from repro.experiments.alpha_sweep import SweepOutcome
        from repro.experiments.fig8_delay_boxplot import Fig8Result
        from repro.experiments.table2_alpha import Table2Result

        columns = ("init",) + tuple(label for label, *_ in ALPHA_CONFIGS)
        outcomes = [
            SweepOutcome(
                scenario_seed=seed,
                policy=policy,
                column=column,
                traffic_mbps=100.0 + seed,
                delay_ms=150.0 + seed,
            )
            for policy in POLICIES
            for column in columns
            for seed in (0, 1, 2)
        ]
        fig8 = Fig8Result(outcomes=outcomes, num_scenarios=3)
        _check_records(fig8.result_records(), {"solver.policy", "alpha"})
        table2 = Table2Result(outcomes=outcomes, num_scenarios=3)
        _check_records(table2.result_records(), {"solver.policy", "alpha"})
