"""Integration tests: telemetry through real fleets, backends, reports.

The two load-bearing guarantees (ISSUE 6 acceptance):

* telemetry **off** is the default and results are bit-identical to a
  telemetry-**on** run — instrumentation reads only the wall clock and
  its record fields are volatile, so the canonical digest cannot move;
* telemetry **on** survives every backend's transport (in-process,
  pickle, JSON-over-pipe) as well-formed span trees with the same span
  taxonomy everywhere.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.report import (
    canonical_results_digest,
    render_telemetry_report,
    telemetry_breakdown,
    validate_record,
)
from repro.errors import SpecError
from repro.fleet.orchestrator import FleetOrchestrator, load_records
from repro.fleet.spec import (
    AxisSpec,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
)
from repro.netsim.latency import clear_substrate_cache
from repro.telemetry import load_run_telemetry, span_names


def golden_spec() -> RunSpec:
    """The same golden sweep the backend-equivalence tests pin."""
    return RunSpec(
        name="golden",
        workload=WorkloadSpec(kind="prototype", num_sessions=2),
        simulation=SimulationSpec(
            duration_s=8.0, hop_interval_mean_s=4.0, seed=3
        ),
        sweep=SweepSpec(
            replicates=2,
            axes=(AxisSpec(path="solver.beta", values=(200, 400)),),
        ),
    )


#: Unit-scope span paths every instrumented unit must report.
UNIT_SPANS = {
    "unit.compile",
    "unit.solve",
    "unit.solve/sim.bootstrap",
    "unit.solve/solver.hop_batch",
}


def run_fleet(out_dir, telemetry: bool, backend: str = "serial", workers=1):
    result = FleetOrchestrator(
        out_dir, workers=workers, backend=backend, telemetry=telemetry or None
    ).run(golden_spec())
    assert result.executed == 4 and result.failed == 0
    return result


class TestDisabledPath:
    def test_results_bit_identical_with_telemetry_on_or_off(self, tmp_path):
        """The canonical digest — already blind to wall_time_s — ignores
        the volatile timings/counters blocks, so a telemetry run and a
        plain run produce the same canonical results.jsonl."""
        run_fleet(tmp_path / "off", telemetry=False)
        run_fleet(tmp_path / "on", telemetry=True)
        assert canonical_results_digest(
            tmp_path / "off"
        ) == canonical_results_digest(tmp_path / "on")

    def test_off_is_really_off(self, tmp_path):
        result = run_fleet(tmp_path / "off", telemetry=False)
        assert not result.telemetry_path.exists()
        for record in load_records(tmp_path / "off"):
            assert "timings" not in record and "counters" not in record
            assert "telemetry" not in record  # transient key never lands


class TestEnabledPath:
    def test_telemetry_jsonl_round_trips(self, tmp_path):
        result = run_fleet(tmp_path / "run", telemetry=True)
        assert result.telemetry_path.exists()
        # load_run_telemetry validates every line on the way in.
        telemetry = load_run_telemetry(tmp_path / "run")
        assert len(telemetry.units) == 4
        for record in telemetry.units.values():
            assert UNIT_SPANS <= span_names(record)
            counters = record["counters"]
            assert counters["solver.hops_proposed"] >= 1
            assert counters["solver.candidates"] >= 1
            assert counters["sim.samples"] >= 1
        assert telemetry.fleet is not None
        assert "fleet.sweep" in span_names(telemetry.fleet)

    def test_records_carry_volatile_envelope_blocks(self, tmp_path):
        run_fleet(tmp_path / "run", telemetry=True)
        for record in load_records(tmp_path / "run"):
            validate_record(record, fleet=True)
            assert UNIT_SPANS <= set(record["timings"])
            assert record["counters"]["solver.hops_proposed"] >= 1

    def test_cached_rerun_keeps_unit_telemetry(self, tmp_path):
        """A warm re-run executes nothing, but must not wipe the unit
        profiles of the first run — cached run ids carry their
        telemetry records forward like their result records."""
        run_fleet(tmp_path / "run", telemetry=True)
        result = FleetOrchestrator(
            tmp_path / "run", workers=1, backend="serial", telemetry=True
        ).run(golden_spec())
        assert result.executed == 0 and result.skipped == 4
        telemetry = load_run_telemetry(tmp_path / "run")
        assert len(telemetry.units) == 4
        for record in telemetry.units.values():
            assert UNIT_SPANS <= span_names(record)

    @pytest.mark.parametrize("backend,workers", [("local", 2), ("subprocess", 2)])
    def test_backend_spans_match_serial(self, tmp_path, backend, workers):
        """The pickle (local pool) and JSON-over-pipe (subprocess)
        transports must deliver the same span taxonomy per unit as the
        in-process serial path."""
        run_fleet(tmp_path / "serial", telemetry=True)
        run_fleet(tmp_path / backend, telemetry=True, backend=backend,
                  workers=workers)
        serial = load_run_telemetry(tmp_path / "serial")
        other = load_run_telemetry(tmp_path / backend)
        assert set(serial.units) == set(other.units)
        for run_id, record in serial.units.items():
            assert span_names(record) == span_names(other.units[run_id])

    def test_warm_cache_reports_one_synthesis_per_substrate(self, tmp_path):
        """Regression for the substrate-cache counters: the golden sweep
        spans 2 seeds x 2 betas over one workload, and the substrate
        depends only on the seed — so a serial run must synthesize
        exactly 2 substrates and hit the warm cache for the other 2
        units, with the telemetry counters agreeing with the cache's
        own stats API."""
        from repro.netsim.latency import substrate_cache_stats

        clear_substrate_cache()
        run_fleet(tmp_path / "run", telemetry=True)
        telemetry = load_run_telemetry(tmp_path / "run")
        misses = sum(
            record["counters"].get("substrate.cache_misses", 0)
            for record in telemetry.units.values()
        )
        hits = sum(
            record["counters"].get("substrate.cache_hits", 0)
            for record in telemetry.units.values()
        )
        distinct_seeds = 2  # replicates; betas share a seed's substrate
        assert misses == distinct_seeds
        assert hits == len(telemetry.units) - distinct_seeds
        stats = substrate_cache_stats()
        assert stats["builds"] == misses and stats["hits"] == hits


class TestTelemetryReport:
    def test_breakdown_and_report_render(self, tmp_path):
        clear_substrate_cache()
        run_fleet(tmp_path / "run", telemetry=True)
        breakdown = telemetry_breakdown(tmp_path / "run")
        assert breakdown["units"] == 4
        assert UNIT_SPANS <= set(breakdown["timings"])
        assert breakdown["cache"]["misses"] == 2  # one per seed substrate
        assert 0.0 < breakdown["cache"]["hit_rate"] < 1.0
        text = render_telemetry_report(tmp_path / "run")
        assert "4 instrumented unit(s)" in text
        assert "phase-time breakdown" in text
        assert "solver.hop_batch" in text
        assert "solver.hops_proposed" in text
        assert "substrate cache:" in text

    def test_report_without_telemetry_has_actionable_error(self, tmp_path):
        run_fleet(tmp_path / "plain", telemetry=False)
        with pytest.raises(SpecError, match="--telemetry"):
            render_telemetry_report(tmp_path / "plain")

    def test_html_panel_renders_bars(self, tmp_path):
        from repro.analysis.html import render_html
        from repro.analysis.report import compare_fleets, load_fleet_runs

        run_fleet(tmp_path / "run", telemetry=True)
        runs = load_fleet_runs([tmp_path / "run"])
        html = render_html(
            compare_fleets(runs),
            telemetry={runs[0].label: telemetry_breakdown(runs[0].path)},
        )
        assert "<h2>Telemetry</h2>" in html
        assert 'class="bar"' in html
        assert "solver.hop_batch" in html


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_PERF"),
    reason="perf guard is opt-in; set REPRO_PERF=1",
)
def test_enabled_telemetry_overhead_below_five_percent():
    """Opt-in guard: running the solver under an active collector may
    cost at most 5% hops/sec versus the disabled path (median of 5)."""
    import repro.telemetry as tele
    from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
    from repro.core.nearest import nearest_assignment
    from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
    from repro.workloads.scenarios import ScenarioParams, scenario_conference

    conference = scenario_conference(
        seed=11, params=ScenarioParams(num_user_sites=96, num_users=160)
    )
    evaluator = ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )

    def hops_per_second(instrumented: bool, num_hops: int = 200) -> float:
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conference),
            config=MarkovConfig(beta=64.0),
            rng=np.random.default_rng(0),
        )
        solver.run(20)  # warm caches outside the timed window
        if instrumented:
            with tele.collect():
                start = time.perf_counter()
                solver.run(num_hops)
                elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            solver.run(num_hops)
            elapsed = time.perf_counter() - start
        return num_hops / elapsed

    def median_rate(instrumented: bool) -> float:
        rates = sorted(hops_per_second(instrumented) for _ in range(5))
        return rates[2]

    plain = median_rate(False)
    instrumented = median_rate(True)
    assert instrumented >= 0.95 * plain, (
        f"telemetry overhead too high: {instrumented:.0f} hops/s "
        f"instrumented vs {plain:.0f} plain"
    )
