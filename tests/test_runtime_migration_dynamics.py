"""Tests for repro.runtime.migration and repro.runtime.dynamics."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.neighborhood import Move
from repro.errors import ModelError, SimulationError
from repro.runtime.dynamics import DynamicsSchedule, SessionArrival, SessionDeparture
from repro.runtime.migration import MigrationModel
from tests.conftest import build_pair_conference


class TestMigrationModel:
    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "360p", "360p", "480p")

    def test_paper_overhead_value(self, conf):
        """The paper: ~13.2 kb of dual-feed overhead for a 240p stream at
        a <=30 ms overlap.  240p = 0.4 Mbps -> 0.4 * 1000 * 0.030 = 12 kb
        (the paper's 13.2 corresponds to its slightly higher 240p rate)."""
        model = MigrationModel(overlap_ms=30.0)
        # Build a user with a 240p upstream.
        conf240 = build_pair_conference("240p", "360p", "360p", "480p")
        assignment = Assignment(np.array([0, 1]), np.full(conf240.theta_sum, 0))
        move = Move("user", 0, 0, 1)
        record = model.price(conf240, assignment, move, sid=0, time_s=1.0)
        assert record.overhead_kb == pytest.approx(12.0)
        assert not record.interrupted

    def test_user_move_priced_by_upstream(self, conf):
        model = MigrationModel(overlap_ms=30.0)
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        record = model.price(conf, assignment, Move("user", 0, 0, 1), 0, 0.0)
        # u0 upstream 720p = 5 Mbps -> 150 kb.
        assert record.overhead_kb == pytest.approx(150.0)
        assert record.kind == "user"

    def test_task_move_priced_by_output(self, conf):
        model = MigrationModel(overlap_ms=30.0)
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        record = model.price(conf, assignment, Move("task", 0, 0, 1), 0, 0.0)
        # Output rep 480p = 2.5 Mbps -> 75 kb.
        assert record.overhead_kb == pytest.approx(75.0)

    def test_instant_teardown_interrupts(self, conf):
        model = MigrationModel(dual_feed=False)
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        record = model.price(conf, assignment, Move("user", 0, 0, 1), 0, 0.0)
        assert record.overhead_kb == 0.0
        assert record.interrupted

    def test_teardown_task_move_never_interrupts(self, conf):
        """Sec. V-A.1: transcoding tasks migrate at segment boundaries
        (segmentation-based transcoding), so even without dual-feeding
        a task move carries no user-visible interruption — only *user*
        moves interrupt under instant teardown.  Either way teardown
        prices zero overhead."""
        model = MigrationModel(dual_feed=False)
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        record = model.price(conf, assignment, Move("task", 0, 0, 1), 0, 0.0)
        assert record.overhead_kb == 0.0
        assert not record.interrupted

    def test_dual_feed_never_interrupts(self, conf):
        """Dual-feeding is the whole point of Sec. V-A.1: with the
        overlap in place neither move kind freezes frames."""
        model = MigrationModel(overlap_ms=30.0)
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        for move in (Move("user", 0, 0, 1), Move("task", 0, 0, 1)):
            assert not model.price(conf, assignment, move, 0, 0.0).interrupted

    def test_paper_132_kb_anchor(self):
        """The paper's literal 13.2 kb figure back-solves to a 0.44 Mbps
        240p stream at the 30 ms overlap: 0.44 * 1000 * 0.030 = 13.2.
        Pinning the formula against the quoted number documents where
        our ladder's 0.4 Mbps (-> 12 kb) diverges from the paper's
        encoder rate, not from its pricing model."""
        assert 0.44 * 1000.0 * (30.0 / 1000.0) == pytest.approx(13.2)
        conf240 = build_pair_conference("240p", "360p", "360p", "480p")
        assignment = Assignment(np.array([0, 1]), np.full(conf240.theta_sum, 0))
        record = MigrationModel(overlap_ms=30.0).price(
            conf240, assignment, Move("user", 0, 0, 1), sid=0, time_s=0.0
        )
        bitrate = conf240.user(0).upstream.bitrate_mbps
        assert record.overhead_kb == pytest.approx(bitrate * 30.0)

    def test_overhead_scales_linearly_with_overlap(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        move = Move("user", 0, 0, 1)
        half = MigrationModel(overlap_ms=15.0).price(conf, assignment, move, 0, 0.0)
        full = MigrationModel(overlap_ms=30.0).price(conf, assignment, move, 0, 0.0)
        assert full.overhead_kb == pytest.approx(2.0 * half.overhead_kb)
        assert MigrationModel(overlap_ms=0.0).price(
            conf, assignment, move, 0, 0.0
        ).overhead_kb == 0.0

    def test_negative_overlap_rejected(self):
        with pytest.raises(ModelError):
            MigrationModel(overlap_ms=-1.0)


class TestDynamicsSchedule:
    def test_static(self):
        schedule = DynamicsSchedule.static([0, 1, 2])
        assert schedule.initial_sids == (0, 1, 2)
        assert schedule.events == ()

    def test_fig5_layout(self):
        schedule = DynamicsSchedule.fig5(
            initial_sids=range(6), arriving_sids=range(6, 10), departing_sids=[1, 3, 5]
        )
        arrivals = [e for e in schedule.events if isinstance(e, SessionArrival)]
        departures = [e for e in schedule.events if isinstance(e, SessionDeparture)]
        assert {a.sid for a in arrivals} == {6, 7, 8, 9}
        assert all(a.time_s == 40.0 for a in arrivals)
        assert {d.sid for d in departures} == {1, 3, 5}
        assert all(d.time_s == 80.0 for d in departures)

    def test_events_sorted_by_time(self):
        schedule = DynamicsSchedule(
            initial_sids=(0,),
            events=(
                SessionDeparture(50.0, 1),
                SessionArrival(10.0, 1),
            ),
        )
        assert [type(e).__name__ for e in schedule.events] == [
            "SessionArrival",
            "SessionDeparture",
        ]

    def test_double_arrival_rejected(self):
        with pytest.raises(SimulationError):
            DynamicsSchedule(
                initial_sids=(0,),
                events=(SessionArrival(1.0, 1), SessionArrival(2.0, 1)),
            )

    def test_departure_of_inactive_rejected(self):
        with pytest.raises(SimulationError):
            DynamicsSchedule(initial_sids=(0,), events=(SessionDeparture(1.0, 5),))

    def test_duplicate_initial_rejected(self):
        with pytest.raises(SimulationError):
            DynamicsSchedule(initial_sids=(0, 0))

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            DynamicsSchedule(
                initial_sids=(0,), events=(SessionArrival(-1.0, 1),)
            )
