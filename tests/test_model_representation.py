"""Tests for repro.model.representation."""

import pytest

from repro.errors import ModelError, UnknownEntityError
from repro.model.representation import PAPER_LADDER, Representation, RepresentationSet


class TestRepresentation:
    def test_kappa_is_bitrate(self):
        rep = Representation(5.0, "720p", 720)
        assert rep.kappa == 5.0

    def test_ordering_by_bitrate(self):
        low = Representation(1.0, "360p")
        high = Representation(8.0, "1080p")
        assert low < high

    def test_rejects_nonpositive_bitrate(self):
        with pytest.raises(ModelError):
            Representation(0.0, "zero")
        with pytest.raises(ModelError):
            Representation(-1.0, "neg")

    def test_str_mentions_name_and_bitrate(self):
        assert "720p" in str(Representation(5.0, "720p"))
        assert "5" in str(Representation(5.0, "720p"))

    def test_equality_and_hash(self):
        a = Representation(5.0, "720p", 720)
        b = Representation(5.0, "720p", 720)
        assert a == b
        assert hash(a) == hash(b)


class TestRepresentationSet:
    def test_sorted_ascending_quality(self):
        reps = RepresentationSet(
            [Representation(8.0, "1080p"), Representation(1.0, "360p")]
        )
        assert reps.names == ("360p", "1080p")

    def test_lookup_by_name(self):
        assert PAPER_LADDER["720p"].bitrate_mbps == 5.0

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownEntityError):
            PAPER_LADDER["4k"]

    def test_contains_name_and_representation(self):
        rep = PAPER_LADDER["480p"]
        assert "480p" in PAPER_LADDER
        assert rep in PAPER_LADDER
        assert 42 not in PAPER_LADDER

    def test_index_round_trip(self):
        for i, rep in enumerate(PAPER_LADDER):
            assert PAPER_LADDER.index_of(rep) == i
            assert PAPER_LADDER.at(i) == rep

    def test_index_of_foreign_rep_raises(self):
        with pytest.raises(UnknownEntityError):
            PAPER_LADDER.index_of(Representation(99.0, "8k"))

    def test_empty_set_rejected(self):
        with pytest.raises(ModelError):
            RepresentationSet([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            RepresentationSet(
                [Representation(1.0, "x"), Representation(2.0, "x")]
            )

    def test_paper_ladder_values(self):
        """The ladder the paper quotes: (360p, 1), (480p, 2.5), (720p, 5),
        (1080p, 8), plus 240p for the migration-overhead model."""
        expected = {"240p": 0.4, "360p": 1.0, "480p": 2.5, "720p": 5.0, "1080p": 8.0}
        assert {r.name: r.bitrate_mbps for r in PAPER_LADDER} == expected

    def test_max_bitrate(self):
        assert PAPER_LADDER.max_bitrate == 8.0
