"""Tests for the extension features: dollar pricing, downgrade-only
transcoding (paper footnote 1), and the A7 noise-robustness experiment."""

import numpy as np
import pytest

from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.model.representation import PAPER_LADDER
from repro.netsim.pricing import dollar_cost_functions, egress_cost_per_hour
from repro.workloads.demand import DemandModel
from repro.workloads.scenarios import ScenarioParams, scenario_conference


class TestDollarPricing:
    def test_cost_vectors_shape(self, proto_conf):
        g, h = dollar_cost_functions(proto_conf)
        assert len(g) == proto_conf.num_agents
        assert len(h) == proto_conf.num_agents

    def test_rates_follow_regional_prices(self, proto_conf):
        g, _h = dollar_cost_functions(proto_conf)
        for agent, cost in zip(proto_conf.agents, g):
            assert cost.rate == pytest.approx(
                egress_cost_per_hour(1.0, agent.egress_price_per_gb)
            )

    def test_sao_paulo_pricier_than_virginia(self, proto_conf):
        g, _h = dollar_cost_functions(proto_conf)
        by_name = {a.name: g[a.aid] for a in proto_conf.agents}
        assert by_name["Sao Paulo"].rate > by_name["Virginia"].rate

    def test_dollar_objective_optimizes(self, proto_conf):
        """The solver runs unchanged on a dollar-denominated objective and
        improves it.  Dollar traffic terms are small against the delay
        term, so the scales are rebalanced to keep the cost side relevant
        (a unit change requires a scale change — documented behaviour)."""
        g, h = dollar_cost_functions(proto_conf)
        weights = ObjectiveWeights.normalized_for(proto_conf)
        dollar_per_mbps_hour = g[0].rate
        weights = ObjectiveWeights(
            alpha1=weights.alpha1,
            alpha2=weights.alpha2,
            alpha3=weights.alpha3,
            delay_scale=weights.delay_scale,
            traffic_scale=weights.traffic_scale * dollar_per_mbps_hour,
            transcode_scale=weights.transcode_scale * h[0].rate,
        )
        evaluator = ObjectiveEvaluator(
            proto_conf, weights, bandwidth_costs=g, transcode_costs=h
        )
        initial = nearest_assignment(proto_conf)
        before_phi = evaluator.total(initial).phi
        before_dollars = sum(
            evaluator.session_cost(initial, sid).traffic_cost
            for sid in range(proto_conf.num_sessions)
        )
        solver = MarkovAssignmentSolver(
            evaluator,
            initial,
            config=MarkovConfig(beta=32.0),
            rng=np.random.default_rng(0),
        )
        solver.run(300)
        after_dollars = sum(
            evaluator.session_cost(solver.best_assignment, sid).traffic_cost
            for sid in range(proto_conf.num_sessions)
        )
        assert solver.best_phi < before_phi
        assert after_dollars < before_dollars


class TestDowngradeOnly:
    def test_clamp_rules(self):
        model = DemandModel(PAPER_LADDER, downgrade_only=True)
        r720 = PAPER_LADDER["720p"]
        r480 = PAPER_LADDER["480p"]
        r1080 = PAPER_LADDER["1080p"]
        assert model.clamp_demand(r480, r720) == r480  # downscale passes
        assert model.clamp_demand(r1080, r720) == r720  # upscale clamped
        assert model.clamp_demand(r720, r720) == r720

    def test_clamp_disabled_by_default(self):
        model = DemandModel(PAPER_LADDER)
        r720 = PAPER_LADDER["720p"]
        r1080 = PAPER_LADDER["1080p"]
        assert model.clamp_demand(r1080, r720) == r1080

    def test_scenario_has_no_uptranscodes(self):
        params = ScenarioParams(num_user_sites=32, num_users=30)
        demand = DemandModel(PAPER_LADDER, downgrade_only=True)
        conf = scenario_conference(seed=3, params=params, demand=demand)
        for source, destination in conf.transcode_pairs:
            upstream = conf.user(source).upstream
            demanded = conf.demanded_representation(source, destination)
            assert demanded.bitrate_mbps < upstream.bitrate_mbps

    def test_scenario_without_flag_has_uptranscodes(self):
        params = ScenarioParams(num_user_sites=32, num_users=30)
        conf = scenario_conference(seed=3, params=params)
        has_up = any(
            conf.demanded_representation(s, d).bitrate_mbps
            > conf.user(s).upstream.bitrate_mbps
            for s, d in conf.transcode_pairs
        )
        assert has_up  # with uniform upstreams, upscaling demand exists


class TestNoiseRobustnessExperiment:
    def test_small_sweep(self):
        from repro.experiments.noise_robustness import run_noise_robustness

        result = run_noise_robustness(
            seed=3, deltas=(0.0, 0.1), trials=1, hops=120
        )
        assert set(result.points) == {0.0, 0.1}
        clean_phi = result.points[0.0][0]
        noisy_phi = result.points[0.1][0]
        assert clean_phi <= result.initial_phi
        assert noisy_phi <= result.initial_phi  # still far better than Nrst
        assert "A7" in result.format_report()

    def test_registered_in_cli(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert "noise" in capsys.readouterr().out
