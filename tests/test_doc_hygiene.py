"""Docstring hygiene for the public `repro.fleet` and `repro.analysis`
API: every module, exported name, public function/class, and public
method/property must carry a real docstring (a dataclass's
auto-generated signature doc does not count)."""

import importlib
import inspect
import pkgutil

import pytest

import repro.analysis
import repro.fleet
import repro.telemetry

PACKAGES = (repro.fleet, repro.analysis, repro.telemetry)


def _modules():
    for package in PACKAGES:
        yield package
        for info in pkgutil.iter_modules(
            package.__path__, prefix=package.__name__ + "."
        ):
            yield importlib.import_module(info.name)


MODULES = list(_modules())


def _has_real_doc(obj, name: str) -> bool:
    doc = inspect.getdoc(obj)
    if not doc or not doc.strip():
        return False
    # Dataclasses synthesize "Name(field, ...)" when no docstring is
    # written; treat that as missing.
    return not doc.startswith(f"{name}(")


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} is missing a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_functions_and_classes_documented(module):
    missing = [
        name
        for name, obj in _public_members(module)
        if not _has_real_doc(obj, name)
    ]
    assert not missing, (
        f"{module.__name__}: missing docstrings on {missing}"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    missing = []
    for cls_name, cls in _public_members(module):
        if not inspect.isclass(cls):
            continue
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            if isinstance(member, property):
                target = member.fget
            elif inspect.isfunction(member) or isinstance(
                member, (classmethod, staticmethod)
            ):
                target = getattr(member, "__func__", member)
            else:
                continue
            if not _has_real_doc(target, name):
                missing.append(f"{cls_name}.{name}")
    assert not missing, (
        f"{module.__name__}: missing docstrings on {missing}"
    )


def test_package_all_exports_resolve_and_are_documented():
    for package in PACKAGES:
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package.__name__}.__all__ lists missing {name}"
            )
            obj = getattr(package, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert _has_real_doc(obj, name), (
                    f"{package.__name__}.{name} is exported undocumented"
                )
