"""Fleet scheduler: successive-halving early abort (fewer units than
the full grid, surviving aggregates identical to an unbudgeted run),
asynchronous halving's byte-identity guarantee, fleet-level budgets,
execution-spec validation/sweepability, and scheduling determinism."""

import json
import math

import pytest

from repro.analysis.report import canonical_results_digest
from repro.errors import SpecError
from repro.fleet.backends.base import crash_record
from repro.fleet.backends.serial import SerialBackend
from repro.fleet.matrix import expand_matrix
from repro.fleet.orchestrator import FleetOrchestrator
from repro.fleet.scheduler import FleetScheduler, substrate_affinity
from repro.fleet.spec import (
    AxisSpec,
    ExecutionSpec,
    HalvingSpec,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
    spec_hash,
)

FAST_SIM = SimulationSpec(duration_s=8.0, hop_interval_mean_s=4.0, seed=3)


def grid_spec(execution: ExecutionSpec | None = None, replicates: int = 2) -> RunSpec:
    """4 beta grid points x seed replicates over a tiny prototype."""
    kwargs = {}
    if execution is not None:
        kwargs["execution"] = execution
    return RunSpec(
        name="halving-grid",
        workload=WorkloadSpec(kind="prototype", num_sessions=2),
        simulation=FAST_SIM,
        sweep=SweepSpec(
            replicates=replicates,
            axes=(AxisSpec(path="solver.beta", values=(100, 200, 400, 800)),),
        ),
        **kwargs,
    )


class TestExecutionSpec:
    def test_defaults_round_trip(self):
        spec = grid_spec()
        assert spec.execution.backend == "local"
        assert RunSpec.from_yaml(spec.to_yaml()) == spec

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="execution.backend"):
            ExecutionSpec(backend="cluster")

    def test_negative_knobs_rejected(self):
        with pytest.raises(SpecError, match="workers"):
            ExecutionSpec(workers=-1)
        with pytest.raises(SpecError, match="unit_timeout_s"):
            ExecutionSpec(unit_timeout_s=-1.0)
        with pytest.raises(SpecError, match="max_retries"):
            ExecutionSpec(max_retries=-1)

    def test_halving_rungs_must_increase(self):
        with pytest.raises(SpecError, match="strictly increasing"):
            HalvingSpec(rungs=(2, 1))
        with pytest.raises(SpecError, match="strictly increasing"):
            HalvingSpec(rungs=(1, 1))

    def test_halving_metric_and_eta_validated(self):
        with pytest.raises(SpecError, match="halving.metric"):
            HalvingSpec(metric="hops")
        with pytest.raises(SpecError, match="halving.eta"):
            HalvingSpec(eta=1.0)

    def test_rungs_must_leave_room_to_prune(self):
        with pytest.raises(SpecError, match="stay below"):
            grid_spec(
                execution=ExecutionSpec(halving=HalvingSpec(rungs=(2,))),
                replicates=2,
            )

    def test_execution_excluded_from_run_identity(self):
        """Two specs differing only in execution config denote the same
        computation: same spec hash, same unit run ids (so a resume
        cache written on one backend serves any other)."""
        plain = grid_spec()
        tuned = grid_spec(
            execution=ExecutionSpec(
                backend="subprocess",
                workers=8,
                unit_timeout_s=120.0,
                halving=HalvingSpec(rungs=(1,)),
            )
        )
        assert spec_hash(plain) == spec_hash(tuned)
        assert [u.run_id for u in expand_matrix(plain)] == [
            u.run_id for u in expand_matrix(tuned)
        ]

    def test_execution_axis_gets_distinct_cache_slots(self):
        """Sweeping an execution knob (backend comparisons) folds the
        axis value into the run id, so grid points do not collapse onto
        one cached record."""
        spec = RunSpec(
            name="backend-compare",
            workload=WorkloadSpec(num_sessions=2),
            simulation=FAST_SIM,
            sweep=SweepSpec(
                axes=(
                    AxisSpec(
                        path="execution.backend",
                        values=("serial", "local"),
                    ),
                )
            ),
        )
        units = expand_matrix(spec)
        assert len(units) == 2
        assert units[0].run_id != units[1].run_id
        assert [u.spec.execution.backend for u in units] == [
            "serial",
            "local",
        ]

    def test_execution_axis_executes_both_groups(self, tmp_path):
        spec = RunSpec(
            name="backend-compare",
            workload=WorkloadSpec(num_sessions=2),
            simulation=FAST_SIM,
            sweep=SweepSpec(
                axes=(
                    AxisSpec(
                        path="execution.backend",
                        values=("serial", "local"),
                    ),
                )
            ),
        )
        result = FleetOrchestrator(tmp_path / "out").run(spec)
        assert result.executed == 2 and result.failed == 0
        stripped = [
            {
                k: v
                for k, v in record.items()
                # axes and the axis-folded run_id differ by construction;
                # wall time is nondeterministic.
                if k not in ("wall_time_s", "axes", "run_id")
            }
            for record in result.records
        ]
        # Identical computation on both backends; only the axis differs.
        assert stripped[0] == stripped[1]


class TestHalving:
    def test_halved_sweep_executes_fewer_units(self, tmp_path):
        """The acceptance criterion: a successive-halving sweep executes
        provably fewer units than the full grid while surviving points'
        aggregates stay identical to the unbudgeted run."""
        full = FleetOrchestrator(tmp_path / "full").run(grid_spec())
        halved = FleetOrchestrator(tmp_path / "halved").run(
            grid_spec(execution=ExecutionSpec(halving=HalvingSpec(rungs=(1,))))
        )
        total = len(full.records)
        assert full.executed == total == 8
        # Rung 0 runs 4 points x 1 replicate; 2 survivors finish.
        assert halved.executed == 6 < full.executed
        assert halved.pruned == 2
        assert halved.executed + halved.pruned == total

        by_id = {record["run_id"]: record for record in full.records}
        survivors = [r for r in halved.records if r["status"] == "ok"]
        assert len(survivors) == 6
        for record in survivors:
            full_record = by_id[record["run_id"]]
            strip = lambda r: {
                k: v for k, v in r.items() if k != "wall_time_s"
            }
            assert strip(record) == strip(full_record)

    def test_pruned_records_are_first_class(self, tmp_path):
        result = FleetOrchestrator(tmp_path / "out").run(
            grid_spec(execution=ExecutionSpec(halving=HalvingSpec(rungs=(1,))))
        )
        pruned = [r for r in result.records if r["status"] == "pruned"]
        assert len(pruned) == 2
        for record in pruned:
            assert record["rung"] == 0
            assert record["run_id"]
            assert record["seed"] == 4  # only the second replicate pruned
            assert "solver.beta" in record["axes"]
            json.dumps(record, allow_nan=False)

    def test_halving_prunes_dominated_points(self, tmp_path):
        """The pruned points are exactly the worst-scoring half on the
        halving metric over the rung replicates."""
        result = FleetOrchestrator(tmp_path / "out").run(
            grid_spec(execution=ExecutionSpec(halving=HalvingSpec(rungs=(1,))))
        )
        rung_scores = {
            record["axes"]["solver.beta"]: record["phi"]
            for record in result.records
            if record["status"] == "ok" and record["seed"] == 3
        }
        assert len(rung_scores) == 4  # every point ran its first replicate
        pruned_betas = {
            record["axes"]["solver.beta"]
            for record in result.records
            if record["status"] == "pruned"
        }
        # The scheduler keeps ceil(4/2)=2 points ranked by (score,
        # matrix order) — ties break towards earlier grid points.
        matrix_order = [100, 200, 400, 800]
        ranked = sorted(
            matrix_order,
            key=lambda beta: (rung_scores[beta], matrix_order.index(beta)),
        )
        assert pruned_betas == set(ranked[2:])

    def test_halving_is_deterministic_on_resume(self, tmp_path):
        spec = grid_spec(
            execution=ExecutionSpec(halving=HalvingSpec(rungs=(1,)))
        )
        out = tmp_path / "out"
        first = FleetOrchestrator(out).run(spec)
        again = FleetOrchestrator(out).run(spec)
        assert again.executed == 0
        assert again.pruned == first.pruned
        assert [r["status"] for r in again.records] == [
            r["status"] for r in first.records
        ]

    def test_unbudgeted_rerun_completes_pruned_points(self, tmp_path):
        """Dropping the halving plan on a later run executes exactly the
        previously pruned replicates — the cache carries over."""
        out = tmp_path / "out"
        halved = FleetOrchestrator(out).run(
            grid_spec(execution=ExecutionSpec(halving=HalvingSpec(rungs=(1,))))
        )
        completed = FleetOrchestrator(out).run(grid_spec())
        assert completed.executed == halved.pruned
        assert completed.failed == 0
        assert all(r["status"] == "ok" for r in completed.records)

    def test_multi_rung_halving(self, tmp_path):
        """Two rungs: 4 points -> 2 -> 1; executed = 4 + 2 + 2 = 8 of 16."""
        spec = grid_spec(
            execution=ExecutionSpec(halving=HalvingSpec(rungs=(1, 2))),
            replicates=4,
        )
        result = FleetOrchestrator(tmp_path / "out").run(spec)
        assert result.executed == 4 + 2 + 2
        assert result.pruned == 16 - result.executed
        rungs = sorted(
            r["rung"] for r in result.records if r["status"] == "pruned"
        )
        assert set(rungs) == {0, 1}

    def test_report_distinguishes_pruned_from_failed(self, tmp_path):
        result = FleetOrchestrator(tmp_path / "out").run(
            grid_spec(execution=ExecutionSpec(halving=HalvingSpec(rungs=(1,))))
        )
        headline = result.format_report().splitlines()[0]
        assert "2 pruned" in headline
        assert "0 failed" in headline

        from repro.analysis.report import load_fleet_run, render_run_report

        run = load_fleet_run(tmp_path / "out")
        assert run.pruned == 2 and run.failed == 0
        assert "2 pruned" in render_run_report(run)


class TestSchedulerMechanics:
    def test_dispatch_orders_by_substrate_affinity(self):
        spec = RunSpec(
            name="affinity",
            workload=WorkloadSpec(kind="scenario", num_users=20),
            simulation=FAST_SIM,
            sweep=SweepSpec(
                replicates=2,
                axes=(
                    AxisSpec(path="topology.latency_seed", values=(7, 5, 9)),
                ),
            ),
        )
        units = expand_matrix(spec)
        ordered = sorted(units, key=substrate_affinity)
        seeds = [unit.spec.topology.latency_seed for unit in ordered]
        # Same-substrate units land back-to-back (warm-cache dispatch).
        assert seeds == sorted(seeds)
        assert ordered != units  # matrix order (7, 5, 9) was regrouped

    def test_scheduler_overrides_trump_spec(self):
        scheduler = FleetScheduler(backend="serial", workers=7)
        unit = expand_matrix(grid_spec())[0]
        effective = scheduler.effective_execution(unit)
        assert effective.backend == "serial"
        assert effective.workers == 7
        # Un-overridden fields defer to the unit's spec.
        assert effective.unit_timeout_s == 0.0

    def test_score_treats_missing_metric_as_worst(self):
        scheduler = FleetScheduler()
        from repro.fleet.scheduler import SchedulerOutcome

        unit = expand_matrix(grid_spec())[0]
        outcome = SchedulerOutcome()
        score = scheduler._score([unit], 1, "phi", {}, outcome)
        assert math.isinf(score)
        outcome.fresh[unit.run_id] = {"status": "error", "run_id": unit.run_id}
        assert math.isinf(
            scheduler._score([unit], 1, "phi", {}, outcome)
        )
        outcome.fresh[unit.run_id] = {
            "status": "ok",
            "run_id": unit.run_id,
            "phi": 2.5,
        }
        assert scheduler._score([unit], 1, "phi", {}, outcome) == 2.5

    def test_score_treats_non_finite_metric_as_worst(self):
        """A NaN metric must rank a point *last*, never poison the sort.

        NaN passes ``isinstance(..., float)`` but compares false against
        everything, so before the finite guard one NaN record left the
        halving ranking arbitrary — a crashed point could rank as best
        and prune every healthy competitor.
        """
        scheduler = FleetScheduler()
        from repro.fleet.scheduler import SchedulerOutcome

        unit = expand_matrix(grid_spec())[0]
        outcome = SchedulerOutcome()
        for bad in (math.nan, math.inf, -math.inf, True):
            outcome.fresh[unit.run_id] = {
                "status": "ok",
                "run_id": unit.run_id,
                "phi": bad,
            }
            score = scheduler._score([unit], 1, "phi", {}, outcome)
            assert score == math.inf, f"phi={bad!r} must score worst"
        # The inf sentinel sorts deterministically behind healthy points.
        assert sorted([math.inf, 2.5, 3.5]) == [2.5, 3.5, math.inf]

    def test_replicate_index_recorded_on_units(self):
        units = expand_matrix(grid_spec())
        assert [u.replicate for u in units[:4]] == [0, 1, 0, 1]
        points = {u.point for u in units}
        assert len(points) == 4


class TestClusterExecutionSpec:
    def test_new_fields_round_trip(self):
        execution = ExecutionSpec(
            backend="remote",
            hosts=("node1", "node2"),
            worker_cmd="ssh {host} python -m repro.fleet.backends.worker --loop",
            quarantine_after=2,
            total_budget_s=3600.0,
            halving=HalvingSpec(rungs=(1,), asynchronous=True),
        )
        spec = grid_spec(execution=execution)
        assert RunSpec.from_yaml(spec.to_yaml()) == spec

    def test_invalid_cluster_knobs_rejected(self):
        with pytest.raises(SpecError, match="total_budget_s"):
            ExecutionSpec(total_budget_s=-1.0)
        with pytest.raises(SpecError, match="total_budget_s"):
            ExecutionSpec(total_budget_s=math.inf)
        with pytest.raises(SpecError, match="quarantine_after"):
            ExecutionSpec(quarantine_after=0)
        with pytest.raises(SpecError, match="hosts"):
            ExecutionSpec(hosts=("node1", ""))
        with pytest.raises(SpecError, match="hosts"):
            ExecutionSpec(backend="remote")


class _PoisonMetricBackend(SerialBackend):
    """Serial execution with one run's metric rewritten to NaN."""

    def __init__(self, poison_run_id: str) -> None:
        super().__init__()
        self.poison_run_id = poison_run_id

    def execute(self, payloads, timeout_s=None):
        for record in super().execute(payloads, timeout_s):
            if record.get("run_id") == self.poison_run_id:
                record = {**record, "phi": math.nan}
            yield record


class _AlwaysCrashBackend(SerialBackend):
    """Serial execution with one unit crashing on every attempt."""

    def __init__(self, crash_run_id: str) -> None:
        super().__init__()
        self.crash_run_id = crash_run_id

    def execute(self, payloads, timeout_s=None):
        for payload in payloads:
            if payload.run_id == self.crash_run_id:
                yield crash_record(payload, "synthetic crash", 0.0)
            else:
                yield from super().execute([payload], timeout_s)


class TestAsyncHalving:
    def asha_spec(self, replicates: int = 2, rungs=(1,)) -> RunSpec:
        return grid_spec(
            execution=ExecutionSpec(
                halving=HalvingSpec(rungs=rungs, asynchronous=True)
            ),
            replicates=replicates,
        )

    def sync_spec(self, replicates: int = 2, rungs=(1,)) -> RunSpec:
        return grid_spec(
            execution=ExecutionSpec(halving=HalvingSpec(rungs=rungs)),
            replicates=replicates,
        )

    def test_asha_byte_identical_to_sync_single_rung(self, tmp_path):
        sync = FleetOrchestrator(tmp_path / "sync").run(self.sync_spec())
        asha = FleetOrchestrator(tmp_path / "asha").run(self.asha_spec())
        assert asha.executed == sync.executed == 6
        assert asha.pruned == sync.pruned == 2
        assert canonical_results_digest(
            tmp_path / "asha"
        ) == canonical_results_digest(tmp_path / "sync")

    def test_asha_byte_identical_to_sync_multi_rung(self, tmp_path):
        sync = FleetOrchestrator(tmp_path / "sync").run(
            self.sync_spec(replicates=4, rungs=(1, 2))
        )
        asha = FleetOrchestrator(tmp_path / "asha").run(
            self.asha_spec(replicates=4, rungs=(1, 2))
        )
        assert asha.executed == sync.executed == 8
        assert asha.pruned == sync.pruned == 8
        assert canonical_results_digest(
            tmp_path / "asha"
        ) == canonical_results_digest(tmp_path / "sync")

    @pytest.mark.parametrize(
        "backend", ["serial", "local", "subprocess", "pool"]
    )
    def test_asha_agrees_across_backends(self, tmp_path, backend):
        """The byte-identity guarantee holds on every backend — record
        arrival order varies wildly between them, the decisions must
        not."""
        result = FleetOrchestrator(
            tmp_path / backend, backend=backend, workers=2
        ).run(self.asha_spec())
        assert result.executed == 6 and result.pruned == 2
        reference = tmp_path / "reference"
        FleetOrchestrator(reference, backend="serial").run(self.sync_spec())
        assert canonical_results_digest(
            tmp_path / backend
        ) == canonical_results_digest(reference)

    def test_asha_resumes_from_cache_like_sync(self, tmp_path):
        out = tmp_path / "out"
        first = FleetOrchestrator(out).run(self.asha_spec())
        again = FleetOrchestrator(out).run(self.asha_spec())
        assert again.executed == 0
        assert again.pruned == first.pruned
        assert [r["status"] for r in again.records] == [
            r["status"] for r in first.records
        ]

    def test_nan_metric_prunes_identically_sync_and_async(
        self, tmp_path, monkeypatch
    ):
        """The non-finite guard and ASHA's unknown-score handling
        compose: a NaN metric scores worst (never poisons the ranking)
        and both plans prune the same point."""
        from repro.fleet import scheduler as scheduler_module

        poison = expand_matrix(grid_spec())[0].run_id  # beta=100, rep 0
        monkeypatch.setattr(
            scheduler_module,
            "create_backend",
            lambda kind, workers=1, **_: _PoisonMetricBackend(poison),
        )
        results = {}
        for label, spec in (
            ("sync", self.sync_spec()),
            ("asha", self.asha_spec()),
        ):
            results[label] = FleetOrchestrator(tmp_path / label).run(spec)
            pruned_betas = {
                r["axes"]["solver.beta"]
                for r in results[label].records
                if r["status"] == "pruned"
            }
            assert 100 in pruned_betas, label
        assert canonical_results_digest(
            tmp_path / "sync"
        ) == canonical_results_digest(tmp_path / "asha")

    def test_retry_exhaustion_prunes_identically_sync_and_async(
        self, tmp_path, monkeypatch
    ):
        """A unit crashing through all its retries becomes an error
        record, scores inf, and is pruned — the same way on both
        plans (the retry/promotion interaction)."""
        from repro.fleet import scheduler as scheduler_module

        crash = expand_matrix(grid_spec())[0].run_id
        monkeypatch.setattr(
            scheduler_module,
            "create_backend",
            lambda kind, workers=1, **_: _AlwaysCrashBackend(crash),
        )
        for label, spec in (
            ("sync", self.sync_spec()),
            ("asha", self.asha_spec()),
        ):
            result = FleetOrchestrator(
                tmp_path / label, max_retries=1
            ).run(spec)
            by_status = {}
            for record in result.records:
                by_status.setdefault(record["status"], []).append(record)
            assert len(by_status["error"]) == 1, label
            assert by_status["error"][0]["attempts"] == 2, label
            pruned_betas = {
                r["axes"]["solver.beta"] for r in by_status["pruned"]
            }
            assert 100 in pruned_betas, label
        assert canonical_results_digest(
            tmp_path / "sync"
        ) == canonical_results_digest(tmp_path / "asha")

    def test_asha_counts_promotions(self, tmp_path):
        from repro.telemetry import load_run_telemetry

        out = tmp_path / "out"
        FleetOrchestrator(out, telemetry=True).run(self.asha_spec())
        counters = load_run_telemetry(out).fleet["counters"]
        # 4 points, keep 2: exactly the survivors promote out of rung 0.
        assert counters["scheduler.asha_promotions"] == 2


class TestFleetBudget:
    def test_spent_budget_unschedules_everything(self, tmp_path):
        out = tmp_path / "out"
        result = FleetOrchestrator(
            out, backend="serial", total_budget_s=1e-9
        ).run(grid_spec())
        assert result.executed == 0 and result.failed == 0
        assert result.unscheduled == len(result.records) == 8
        for record in result.records:
            assert record["status"] == "unscheduled"
            assert record["schema_version"] == 6
            assert "FleetBudget" in record["error"]
            assert "total_budget_s" in record["error"]

    def test_unscheduled_is_not_failed_in_report(self, tmp_path):
        result = FleetOrchestrator(
            tmp_path / "out", backend="serial", total_budget_s=1e-9
        ).run(grid_spec())
        headline = result.format_report().splitlines()[0]
        assert "8 unscheduled" in headline
        assert "0 failed" in headline

        from repro.analysis.report import load_fleet_run, render_run_report

        run = load_fleet_run(tmp_path / "out")
        assert run.unscheduled == 8 and run.failed == 0
        assert "8 unscheduled" in render_run_report(run)

    def test_unbudgeted_rerun_completes_unscheduled_units(self, tmp_path):
        """Unscheduled records are never cached, so rerunning without
        the budget executes exactly the starved units."""
        out = tmp_path / "out"
        starved = FleetOrchestrator(
            out, backend="serial", total_budget_s=1e-9
        ).run(grid_spec())
        assert starved.unscheduled == 8
        completed = FleetOrchestrator(out, backend="serial").run(grid_spec())
        assert completed.executed == 8 and completed.unscheduled == 0
        assert all(r["status"] == "ok" for r in completed.records)

    def test_ample_budget_changes_nothing(self, tmp_path):
        out = tmp_path / "out"
        result = FleetOrchestrator(
            out, backend="serial", total_budget_s=3600.0
        ).run(grid_spec())
        assert result.executed == 8 and result.unscheduled == 0
        reference = tmp_path / "reference"
        FleetOrchestrator(reference, backend="serial").run(grid_spec())
        assert canonical_results_digest(out) == canonical_results_digest(
            reference
        )

    @pytest.mark.parametrize("asynchronous", [False, True])
    def test_budget_starved_halving_unschedules_not_prunes(
        self, tmp_path, asynchronous
    ):
        """When the budget dies mid-halving, un-run replicates are a
        resource decision (unscheduled), never a ranking decision
        (pruned on a starved rung)."""
        spec = grid_spec(
            execution=ExecutionSpec(
                halving=HalvingSpec(
                    rungs=(1,), asynchronous=asynchronous
                ),
                total_budget_s=1e-9,
            )
        )
        result = FleetOrchestrator(tmp_path / "out").run(spec)
        assert result.executed == 0 and result.pruned == 0
        assert result.unscheduled == 8

    def test_spec_budget_round_trips_and_cli_override_wins(self, tmp_path):
        spec = grid_spec(
            execution=ExecutionSpec(total_budget_s=1e-9)
        )
        assert RunSpec.from_yaml(spec.to_yaml()) == spec
        # The orchestrator override replaces the spec's budget.
        result = FleetOrchestrator(
            tmp_path / "out", backend="serial", total_budget_s=3600.0
        ).run(spec)
        assert result.executed == 8 and result.unscheduled == 0
