"""Detailed tests of SessionFlowPlan structure and transcoding module
internals not covered elsewhere."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.flows import route_session_flows
from repro.core.transcoding import (
    active_transcodes,
    session_transcode_map,
    transcode_counts,
    transcoding_agents_of,
)
from tests.conftest import build_pair_conference, build_shared_dest_conference


@pytest.fixture()
def conf():
    return build_pair_conference("720p", "360p", "360p", "480p")


class TestFlowPlanStructure:
    def test_edge_matrix_matches_copies(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        plan = route_session_flows(conf, assignment, 0)
        rebuilt = np.zeros_like(plan.edge_mbps)
        for copy in plan.copies:
            rebuilt[copy.from_agent, copy.to_agent] += copy.mbps
        assert np.allclose(rebuilt, plan.edge_mbps)

    def test_no_self_edges(self, conf):
        for tasks in (0, 1):
            assignment = Assignment(np.array([0, 1]), np.array([tasks]))
            plan = route_session_flows(conf, assignment, 0)
            assert np.allclose(np.diag(plan.edge_mbps), 0.0)
            assert all(c.from_agent != c.to_agent for c in plan.copies)

    def test_incoming_outgoing_consistency(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([1]))
        plan = route_session_flows(conf, assignment, 0)
        assert plan.incoming().sum() == pytest.approx(plan.outgoing().sum())
        assert plan.total_inter_agent_mbps == pytest.approx(
            plan.edge_mbps.sum()
        )

    def test_split_group_routes_per_pair(self):
        conf = build_shared_dest_conference()
        # u0@L0, u1@L0, u2@L1; (0->1) at L0, (0->2) at L1.
        assignment = Assignment(np.array([0, 0, 1]), np.array([0, 1]))
        plan = route_session_flows(conf, assignment, 0)
        transcoded = [
            c for c in plan.copies
            if c.source_user == 0 and c.representation.name == "480p"
        ]
        # u1's copy is local at L0 (no edge); u2's is local at L1 (task at
        # its own agent) -> the only cross-agent shipment of u0's stream
        # is the raw feed to the L1 transcoder.
        assert transcoded == []
        raw = [
            c for c in plan.copies
            if c.source_user == 0 and c.representation.name == "720p"
        ]
        assert [(c.from_agent, c.to_agent) for c in raw] == [(0, 1)]


class TestTranscodingModule:
    def test_active_transcodes_global_vs_session(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([1]))
        everywhere = active_transcodes(conf, assignment)
        session_only = active_transcodes(conf, assignment, sids=[0])
        assert everywhere == session_only
        ((agent, source, rep),) = everywhere
        assert (agent, source, rep.name) == (1, 0, "480p")

    def test_counts_match_map(self):
        conf = build_shared_dest_conference()
        assignment = Assignment(np.array([0, 1, 0]), np.array([0, 1]))
        counts = transcode_counts(conf, assignment)
        mapping = session_transcode_map(conf, assignment, 0)
        total_tasks = sum(
            len(agents) for reps in mapping.values() for agents in reps.values()
        )
        assert counts.sum() == total_tasks == 2

    def test_transcoding_agents_of_source(self):
        conf = build_shared_dest_conference()
        assignment = Assignment(np.array([0, 1, 0]), np.array([0, 1]))
        assert transcoding_agents_of(conf, assignment, 0, source=0) == {0, 1}
        assert transcoding_agents_of(conf, assignment, 0, source=1) == set()

    def test_unassigned_tasks_skipped(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([-1]))
        assert active_transcodes(conf, assignment) == set()
        assert transcode_counts(conf, assignment).sum() == 0
