"""Equivalence suite: the batched HOP kernel vs the reference path.

The batched kernel (:mod:`repro.core.batched`) is only allowed to exist
because it is *provably interchangeable* with the per-move reference
path: same candidate enumeration, same feasibility mask, bit-for-bit
identical ``phi`` values, and — given one rng — the same chosen hop.
These tests enforce that contract over randomized conferences (seeded
property-style loops over sizes, alphas, capacity envelopes and noise)
and over full solver trajectories on library scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import build_move_batch, evaluate_move_batch
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.neighborhood import session_moves
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.search import SearchContext
from repro.fleet.library import load_library_spec
from repro.fleet.compile import compile_spec
from repro.fleet.orchestrator import expand_matrix
from repro.netsim.noise import GaussianNoise, QuantizedPerturbation
from repro.workloads.prototype import prototype_conference
from repro.workloads.scenarios import ScenarioParams, scenario_conference
from tests.conftest import build_pair_conference

#: Randomized instances for the property-style loops: (seed, params).
SCENARIO_GRID = [
    (3, ScenarioParams(num_user_sites=32, num_users=12)),
    (5, ScenarioParams(num_user_sites=64, num_users=30)),
    (
        7,
        ScenarioParams(
            num_user_sites=48,
            num_users=24,
            mean_bandwidth_mbps=250.0,
            mean_transcode_slots=25.0,
        ),
    ),
    (
        11,
        ScenarioParams(
            num_user_sites=64,
            num_users=20,
            max_session_size=4,
            session_locality=0.4,
        ),
    ),
]

ALPHAS = [(1.0, 1.0, 1.0), (5.0, 1.0, 0.2)]


def make_evaluator(conference, alphas=(1.0, 1.0, 1.0)):
    a1, a2, a3 = alphas
    return ObjectiveEvaluator(
        conference,
        ObjectiveWeights.normalized_for(conference, alpha1=a1, alpha2=a2, alpha3=a3),
    )


def assert_candidates_identical(reference, batched):
    """Same candidate set, same order, bit-for-bit equal costs."""
    assert len(reference) == len(batched)
    for ref, fast in zip(reference, batched):
        assert ref.move == fast.move
        assert ref.assignment == fast.assignment
        # Bit-for-bit: exact float equality, not approx.
        assert ref.phi == fast.phi
        assert ref.cost.delay_cost_ms == fast.cost.delay_cost_ms
        assert ref.cost.traffic_cost == fast.cost.traffic_cost
        assert ref.cost.transcode_cost == fast.cost.transcode_cost
        for field in ("inter_in", "inter_out", "download", "upload", "transcodes"):
            assert np.array_equal(
                getattr(ref.cost.usage, field), getattr(fast.cost.usage, field)
            )


class TestMoveBatch:
    def test_matches_session_moves_enumeration(self, small_scenario_conf):
        assignment = nearest_assignment(small_scenario_conf)
        for sid in range(small_scenario_conf.num_sessions):
            batch = build_move_batch(small_scenario_conf, assignment, sid)
            listed = list(session_moves(small_scenario_conf, assignment, sid))
            assert batch.size == len(listed)
            for i, move in enumerate(listed):
                assert batch.move(i) == move

    def test_single_agent_conference_yields_empty_batch(self):
        conf = prototype_conference(
            seed=1, num_sessions=2, regions_override=("Virginia",)
        )
        assignment = nearest_assignment(conf)
        batch = build_move_batch(conf, assignment, 0)
        assert batch.size == 0

    def test_kernel_rows_match_reference_kernels(self, small_scenario_conf):
        """BatchEvaluation rows == per-assignment fastpath kernels."""
        evaluator = make_evaluator(small_scenario_conf)
        profile = evaluator.profile
        assignment = nearest_assignment(small_scenario_conf)
        for sid in (0, small_scenario_conf.num_sessions - 1):
            batch = build_move_batch(small_scenario_conf, assignment, sid)
            evaluation = evaluate_move_batch(profile, assignment, batch)
            for i in range(batch.size):
                candidate = batch.move(i).apply(assignment)
                usage = profile.session_usage(
                    candidate.user_agent, candidate.task_agent, sid
                )
                mean, max_flow = profile.session_delays(
                    candidate.user_agent, candidate.task_agent, sid
                )
                assert np.array_equal(evaluation.inter_in[i], usage.inter_in)
                assert np.array_equal(evaluation.inter_out[i], usage.inter_out)
                assert np.array_equal(evaluation.download[i], usage.download)
                assert np.array_equal(evaluation.upload[i], usage.upload)
                assert np.array_equal(evaluation.transcodes[i], usage.transcodes)
                assert evaluation.delay_cost_ms[i] == mean
                assert evaluation.max_flow_ms[i] == max_flow


class TestCandidateEquivalence:
    @pytest.mark.parametrize("seed,params", SCENARIO_GRID)
    @pytest.mark.parametrize("alphas", ALPHAS)
    def test_candidates_bitwise_equal_on_random_conferences(self, seed, params, alphas):
        conference = scenario_conference(seed=seed, params=params)
        evaluator = make_evaluator(conference, alphas)
        assignment = nearest_assignment(conference)
        reference = SearchContext(evaluator, assignment, batched=False)
        fast = SearchContext(evaluator, assignment, batched=True)
        for sid in range(conference.num_sessions):
            assert_candidates_identical(
                reference.feasible_candidates(sid), fast.feasible_candidates(sid)
            )

    @pytest.mark.parametrize("seed,params", SCENARIO_GRID)
    def test_feasibility_mask_matches_reference(self, seed, params):
        conference = scenario_conference(seed=seed, params=params)
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        reference = SearchContext(evaluator, assignment, batched=False)
        fast = SearchContext(evaluator, assignment, batched=True)
        for sid in range(conference.num_sessions):
            batch = fast.candidate_batch(sid)
            expected = [
                reference.evaluate_move(sid, move) is not None
                for move in session_moves(conference, assignment, sid)
            ]
            assert batch.feasible_mask.tolist() == expected

    @pytest.mark.parametrize(
        "noise_factory",
        [
            lambda: GaussianNoise(sigma=0.05),
            lambda: QuantizedPerturbation(delta=0.1, levels=3),
        ],
    )
    def test_noisy_observations_consume_rng_identically(self, noise_factory):
        conference = scenario_conference(
            seed=9, params=ScenarioParams(num_user_sites=32, num_users=14)
        )
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        reference = SearchContext(
            evaluator,
            assignment,
            noise=noise_factory(),
            rng=np.random.default_rng(21),
            batched=False,
        )
        fast = SearchContext(
            evaluator,
            assignment,
            noise=noise_factory(),
            rng=np.random.default_rng(21),
            batched=True,
        )
        for sid in range(conference.num_sessions):
            assert_candidates_identical(
                reference.feasible_candidates(sid), fast.feasible_candidates(sid)
            )

    def test_same_chosen_hop_under_fixed_rng(self):
        conference = scenario_conference(
            seed=13, params=ScenarioParams(num_user_sites=48, num_users=20)
        )
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        for hop_rule in ("paper", "metropolis"):
            solvers = [
                MarkovAssignmentSolver(
                    evaluator,
                    assignment,
                    config=MarkovConfig(beta=64.0, hop_rule=hop_rule, batched=batched),
                    rng=np.random.default_rng(4),
                )
                for batched in (False, True)
            ]
            for sid in range(conference.num_sessions):
                ref_hop = solvers[0].session_hop(sid)
                fast_hop = solvers[1].session_hop(sid)
                assert ref_hop == fast_hop

    def test_pair_conference_candidates_equal(self):
        conference = build_pair_conference("720p", "360p", "360p", "480p")
        evaluator = make_evaluator(conference)
        from repro.core.assignment import Assignment

        assignment = Assignment(np.array([0, 1]), np.array([0]))
        reference = SearchContext(evaluator, assignment, batched=False)
        fast = SearchContext(evaluator, assignment, batched=True)
        assert_candidates_identical(
            reference.feasible_candidates(0), fast.feasible_candidates(0)
        )


class TestTrajectoryEquivalence:
    """The flagged paths must produce identical solver *trajectories*."""

    @staticmethod
    def _unit_spec(name):
        spec = load_library_spec(name)
        return expand_matrix(spec)[0].spec

    @pytest.mark.parametrize("library_name", ["prototype_smoke", "beta_locality"])
    def test_library_scenario_trajectories_identical(self, library_name):
        compiled = compile_spec(self._unit_spec(library_name))
        conference = compiled.conference
        evaluator = compiled.evaluator
        assignment = nearest_assignment(conference)
        trajectories = []
        for batched in (False, True):
            solver = MarkovAssignmentSolver(
                evaluator,
                assignment,
                config=MarkovConfig(beta=compiled.config.markov.beta, batched=batched),
                rng=np.random.default_rng(97),
            )
            hops = []
            solver.run(
                200,
                on_hop=lambda r: hops.append(
                    (r.sid, r.moved, r.move, r.phi_before, r.phi_after, r.num_candidates)
                ),
            )
            trajectories.append(
                (
                    hops,
                    solver.hops,
                    solver.migrations,
                    solver.best_phi,
                    solver.assignment.key(),
                    solver.best_assignment.key(),
                )
            )
        assert trajectories[0] == trajectories[1]

    def test_metropolis_trajectories_identical_under_capacity(self):
        conference = scenario_conference(
            seed=17,
            params=ScenarioParams(
                num_user_sites=48,
                num_users=24,
                mean_bandwidth_mbps=220.0,
                mean_transcode_slots=20.0,
            ),
        )
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        trajectories = []
        for batched in (False, True):
            solver = MarkovAssignmentSolver(
                evaluator,
                assignment,
                config=MarkovConfig(beta=48.0, hop_rule="metropolis", batched=batched),
                rng=np.random.default_rng(31),
            )
            hops = []
            solver.run(250, on_hop=lambda r: hops.append((r.sid, r.moved, r.move)))
            trajectories.append((hops, solver.best_phi, solver.assignment.key()))
        assert trajectories[0] == trajectories[1]
