"""Tests for the workload generators."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.representation import PAPER_LADDER
from repro.workloads.demand import DemandModel
from repro.workloads.motivating import motivating_conference
from repro.workloads.prototype import (
    PROTOTYPE_AGENT_SPEEDS,
    PROTOTYPE_REGIONS,
    prototype_conference,
)
from repro.workloads.scenarios import ScenarioParams, scenario_conference
from repro.workloads.toy import FIG3_NUM_STATES, toy_conference


class TestDemandModel:
    def test_preferred_share_statistics(self):
        model = DemandModel(PAPER_LADDER)
        rng = np.random.default_rng(0)
        draws = [model.sample_downstream(rng).name for _ in range(2000)]
        share = draws.count("720p") / len(draws)
        assert 0.75 < share < 0.85  # the paper's 80 %

    def test_non_preferred_spread_over_others(self):
        model = DemandModel(PAPER_LADDER)
        rng = np.random.default_rng(1)
        draws = {model.sample_downstream(rng).name for _ in range(500)}
        assert draws == {"360p", "480p", "720p", "1080p"}

    def test_upstream_uniform_support(self):
        model = DemandModel(PAPER_LADDER)
        rng = np.random.default_rng(2)
        draws = {model.sample_upstream(rng).name for _ in range(200)}
        assert draws == {"360p", "480p", "720p", "1080p"}

    def test_validation(self):
        with pytest.raises(ModelError):
            DemandModel(PAPER_LADDER, preferred_share=1.5)
        with pytest.raises(ModelError):
            DemandModel(PAPER_LADDER, preferred="4k")


class TestPrototype:
    def test_paper_shape(self, proto_conf):
        assert proto_conf.num_sessions == 10
        assert proto_conf.num_agents == 6
        sizes = [len(s) for s in proto_conf.sessions]
        assert all(3 <= size <= 5 for size in sizes)

    def test_agent_names_are_regions(self, proto_conf):
        assert {a.name for a in proto_conf.agents} == set(PROTOTYPE_REGIONS)

    def test_transcoding_latencies_in_envelope(self, proto_conf):
        """Sec. V-A: transcoding latencies in [30, 60] ms depending on
        capability (checked on the ladder's common transcode)."""
        high = proto_conf.representations["720p"]
        low = proto_conf.representations["480p"]
        for agent in proto_conf.agents:
            assert 25.0 <= agent.transcoding_latency_ms(high, low) <= 60.0

    def test_deterministic(self):
        a = prototype_conference(seed=4)
        b = prototype_conference(seed=4)
        assert np.array_equal(
            a.topology.inter_agent_ms, b.topology.inter_agent_ms
        )
        assert [u.upstream.name for u in a.users] == [
            u.upstream.name for u in b.users
        ]

    def test_seed_changes_workload(self):
        a = prototype_conference(seed=4)
        b = prototype_conference(seed=5)
        assert [len(s) for s in a.sessions] != [len(s) for s in b.sessions] or [
            u.upstream.name for u in a.users
        ] != [u.upstream.name for u in b.users]

    def test_speed_spread_matches_regions(self):
        assert len(PROTOTYPE_AGENT_SPEEDS) == len(PROTOTYPE_REGIONS)

    def test_invalid_params(self):
        with pytest.raises(ModelError):
            prototype_conference(num_sessions=0)
        with pytest.raises(ModelError):
            prototype_conference(session_sizes=(5, 3))


class TestScenario:
    def test_paper_shape(self):
        conf = scenario_conference(seed=1)
        assert conf.num_users == 200
        assert conf.num_agents == 7
        assert all(2 <= len(s) <= 5 for s in conf.sessions)

    def test_deterministic(self):
        a = scenario_conference(seed=2)
        b = scenario_conference(seed=2)
        assert [u.site for u in a.users] == [u.site for u in b.users]
        assert np.array_equal(a.topology.agent_user_ms, b.topology.agent_user_ms)

    def test_latency_substrate_shared_across_scenarios(self):
        """Different scenario seeds share the same inter-agent matrix (one
        measurement campaign, many user draws — like the paper)."""
        a = scenario_conference(seed=1)
        b = scenario_conference(seed=2)
        assert np.array_equal(a.topology.inter_agent_ms, b.topology.inter_agent_ms)

    def test_capacity_draws_in_band(self):
        params = ScenarioParams(mean_bandwidth_mbps=800.0, mean_transcode_slots=40)
        conf = scenario_conference(seed=3, params=params)
        for agent in conf.agents:
            assert 0.75 * 800 <= agent.download_mbps <= 1.25 * 800
            assert 0.75 * 40 - 1 <= agent.transcode_slots <= 1.25 * 40 + 1

    def test_unlimited_by_default(self):
        conf = scenario_conference(seed=4)
        assert all(math.isinf(a.download_mbps) for a in conf.agents)
        assert all(math.isinf(a.transcode_slots) for a in conf.agents)

    def test_locality_clusters_sessions(self):
        local = scenario_conference(
            seed=5, params=ScenarioParams(session_locality=1.0)
        )
        # Every session's members share one continent under locality 1.
        site_by_name = {}
        from repro.netsim.sites import sample_user_sites

        sites = sample_user_sites(256, np.random.default_rng(12345))
        continents = {s.name: s.continent for s in sites}
        for session in local.sessions:
            session_continents = {
                continents[local.user(u).site] for u in session.user_ids
            }
            assert len(session_continents) == 1

    def test_sizes_partition_num_users(self):
        conf = scenario_conference(seed=6)
        assert sum(len(s) for s in conf.sessions) == 200

    def test_param_validation(self):
        with pytest.raises(ModelError):
            ScenarioParams(num_users=1)
        with pytest.raises(ModelError):
            ScenarioParams(min_session_size=6, max_session_size=5)
        with pytest.raises(ModelError):
            ScenarioParams(session_locality=2.0)


class TestFixedInstances:
    def test_motivating_claims_hold(self):
        conf = motivating_conference()
        d = conf.topology.inter_agent_ms
        names = {a.name: a.aid for a in conf.agents}
        to, sg, orr, sp = names["TO"], names["SG"], names["OR"], names["SP"]
        # TO is closer than SG to each other agent (the paper's argument).
        assert d[to, orr] < d[sg, orr]
        assert d[to, sp] < d[sg, sp]
        # User 4 is nearer to SG than to TO (nearest policy picks SG).
        h = conf.topology.agent_user_ms
        assert h[sg, 3] < h[to, 3]
        # SG transcodes faster (it is the powerful agent).
        high, low = conf.representations["720p"], conf.representations["480p"]
        assert conf.agent(sg).transcoding_latency_ms(high, low) < conf.agent(
            to
        ).transcoding_latency_ms(high, low)

    def test_toy_has_eight_states(self, toy_conf):
        from repro.core.exact import enumerate_assignments

        assert len(list(enumerate_assignments(toy_conf))) == FIG3_NUM_STATES

    def test_toy_single_task(self, toy_conf):
        assert toy_conf.theta_sum == 1
        assert toy_conf.transcode_pairs == ((0, 1),)
