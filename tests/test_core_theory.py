"""Tests for repro.core.theory — the Sec. IV-A guarantees, checked exactly."""

import numpy as np
import pytest

from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.theory import (
    build_state_space,
    eq10_bounds,
    eq13_bound,
    expected_phi,
    generator_matrix,
    gibbs_distribution,
    optimality_gap_bound,
    perturbed_stationary,
    simulate_occupancy,
    stationary_distribution,
    total_variation,
    uap_beta_optimum,
)
from repro.netsim.noise import QuantizedPerturbation
from repro.workloads.toy import FIG3_NUM_STATES, toy_conference


@pytest.fixture(scope="module")
def toy_space():
    conference = toy_conference()
    evaluator = ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )
    return conference, evaluator, build_state_space(evaluator)


class TestStateSpace:
    def test_fig3_has_eight_states(self, toy_space):
        _conf, _ev, space = toy_space
        assert len(space) == FIG3_NUM_STATES

    def test_states_unique(self, toy_space):
        _conf, _ev, space = toy_space
        keys = {a.key() for a in space.assignments}
        assert len(keys) == len(space)

    def test_index_of(self, toy_space):
        _conf, _ev, space = toy_space
        assert space.index_of(space.assignments[3]) == 3


class TestGibbsAndBounds:
    def test_gibbs_normalized_and_ordered(self, toy_space):
        _conf, _ev, space = toy_space
        gibbs = gibbs_distribution(space.phis, beta=5.0)
        assert gibbs.sum() == pytest.approx(1.0)
        # Lower phi -> higher probability.
        order = np.argsort(space.phis)
        assert gibbs[order[0]] >= gibbs[order[-1]]

    def test_gibbs_uniform_at_beta_zero_limit(self, toy_space):
        _conf, _ev, space = toy_space
        gibbs = gibbs_distribution(space.phis, beta=1e-9)
        assert np.allclose(gibbs, 1.0 / len(space), atol=1e-6)

    def test_eq10_sandwich_for_many_betas(self, toy_space):
        _conf, _ev, space = toy_space
        for beta in (0.5, 2.0, 10.0, 50.0, 400.0):
            lower, phi_hat, upper = eq10_bounds(space.phis, beta)
            assert lower - 1e-12 <= phi_hat <= upper + 1e-12

    def test_uap_beta_optimum_approaches_min(self, toy_space):
        _conf, _ev, space = toy_space
        assert uap_beta_optimum(space.phis, 1e4) == pytest.approx(
            space.phi_min, abs=1e-3
        )

    def test_eq12_gap_within_bound(self, toy_space):
        conf, _ev, space = toy_space
        for beta in (1.0, 5.0, 25.0):
            gibbs = gibbs_distribution(space.phis, beta)
            gap = expected_phi(gibbs, space.phis) - space.phi_min
            assert 0.0 <= gap <= optimality_gap_bound(conf, beta) + 1e-12

    def test_gap_bound_formula(self, toy_space):
        conf, _ev, _space = toy_space
        # (2 users + 1 task) * ln(2) / beta.
        assert optimality_gap_bound(conf, beta=3.0) == pytest.approx(
            3 * np.log(2) / 3.0
        )


class TestChainStationarity:
    def test_metropolis_chain_matches_gibbs_exactly(self, toy_space):
        conf, _ev, space = toy_space
        for beta in (2.0, 8.0):
            q = generator_matrix(conf, space, beta, rule="metropolis")
            pi = stationary_distribution(q)
            assert total_variation(pi, gibbs_distribution(space.phis, beta)) < 1e-8

    def test_paper_chain_biased_towards_good_states(self, toy_space):
        conf, _ev, space = toy_space
        q = generator_matrix(conf, space, beta=8.0, rule="paper")
        pi = stationary_distribution(q)
        best = int(np.argmin(space.phis))
        worst = int(np.argmax(space.phis))
        assert pi[best] > pi[worst]

    def test_paper_chain_deviates_from_gibbs(self, toy_space):
        """The normalized HOP rule is *not* exactly Gibbs — the documented
        reproduction finding."""
        conf, _ev, space = toy_space
        q = generator_matrix(conf, space, beta=6.0, rule="paper")
        pi = stationary_distribution(q)
        assert total_variation(pi, gibbs_distribution(space.phis, 6.0)) > 0.05

    def test_generator_rows_sum_to_zero(self, toy_space):
        conf, _ev, space = toy_space
        for rule in ("paper", "metropolis"):
            q = generator_matrix(conf, space, beta=4.0, rule=rule)
            assert np.allclose(q.sum(axis=1), 0.0, atol=1e-12)
            off_diagonal = q[~np.eye(len(space), dtype=bool)]
            assert (off_diagonal >= 0).all()

    def test_empirical_occupancy_matches_exact_stationary(self, toy_space):
        conf, evaluator, space = toy_space
        beta = 4.0
        q = generator_matrix(conf, space, beta, rule="paper")
        pi_exact = stationary_distribution(q)
        occupancy = simulate_occupancy(
            evaluator,
            space,
            space.assignments[0],
            beta=beta,
            hops=6000,
            rule="paper",
            rng=np.random.default_rng(0),
            burn_in=500,
        )
        assert total_variation(occupancy, pi_exact) < 0.08


class TestTheorem1:
    def test_zero_delta_reduces_to_gibbs(self, toy_space):
        _conf, _ev, space = toy_space
        perturbations = [QuantizedPerturbation(delta=0.0, levels=2)] * len(space)
        p_bar = perturbed_stationary(space.phis, 5.0, perturbations)
        assert total_variation(p_bar, gibbs_distribution(space.phis, 5.0)) < 1e-12

    def test_eq13_gap_within_bound(self, toy_space):
        conf, _ev, space = toy_space
        delta = 0.08
        beta = 10.0
        perturbations = [QuantizedPerturbation(delta=delta, levels=4)] * len(space)
        p_bar = perturbed_stationary(space.phis, beta, perturbations)
        gap = expected_phi(p_bar, space.phis) - space.phi_min
        assert 0.0 <= gap <= eq13_bound(conf, beta, delta) + 1e-12

    def test_eq13_bound_exceeds_eq12(self, toy_space):
        conf, _ev, _space = toy_space
        assert eq13_bound(conf, 5.0, 0.3) == pytest.approx(
            optimality_gap_bound(conf, 5.0) + 0.3
        )

    def test_perturbation_count_validated(self, toy_space):
        _conf, _ev, space = toy_space
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            perturbed_stationary(
                space.phis, 5.0, [QuantizedPerturbation(delta=0.1)]
            )


class TestSolverAgainstTheory:
    def test_solver_occupancy_reflects_metropolis_gibbs(self, toy_space):
        """End-to-end: Alg. 1 with the Metropolis rule time-averages to
        the Eq. (9) distribution on the toy instance."""
        conf, evaluator, space = toy_space
        beta = 3.0
        occupancy = simulate_occupancy(
            evaluator,
            space,
            space.assignments[0],
            beta=beta,
            hops=8000,
            rule="metropolis",
            rng=np.random.default_rng(1),
            burn_in=500,
        )
        gibbs = gibbs_distribution(space.phis, beta)
        assert total_variation(occupancy, gibbs) < 0.08

    def test_markov_config_rules_consistent_with_theory(self):
        assert MarkovConfig(hop_rule="paper").hop_rule == "paper"
        assert MarkovConfig(hop_rule="metropolis").hop_rule == "metropolis"
