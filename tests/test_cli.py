"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    list_experiments,
)


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out


class TestRun:
    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "SG" in out

    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        assert "theory" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_scenarios_flag_sets_env(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SCENARIOS", raising=False)
        assert main(["run", "fig2", "--scenarios", "2"]) == 0
        assert os.environ.get("REPRO_SCENARIOS") == "2"

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "fig4.csv"
        assert (
            main(["run", "fig4", "--seed", "3", "--csv", str(target)]) == 0
        )
        content = target.read_text()
        assert content.startswith("label,series,time_s,value")
        assert "traffic" in content

    def test_csv_without_series_reports(self, tmp_path, capsys):
        target = tmp_path / "fig2.csv"
        assert main(["run", "fig2", "--csv", str(target)]) == 0
        # Status chatter goes through the repro.log stderr handler now,
        # not stdout (PR 6 satellite: no ad-hoc print for diagnostics).
        assert "no series data" in capsys.readouterr().err


class TestRegistryListing:
    def test_experiment_ids_sorted_and_complete(self):
        assert experiment_ids() == tuple(sorted(EXPERIMENTS))

    def test_list_experiments_matches_ids(self):
        specs = list_experiments()
        assert tuple(spec.experiment_id for spec in specs) == experiment_ids()


class TestFleet:
    SPEC_YAML = """\
name: cli-spec
workload:
  kind: prototype
  num_sessions: 2
simulation:
  duration_s: 8
  hop_interval_mean_s: 4
  seed: 3
"""

    def test_fleet_list_names_library(self, capsys):
        from repro.fleet.library import library_spec_names

        assert main(["fleet", "list"]) == 0
        out = capsys.readouterr().out
        for name in library_spec_names():
            assert name in out

    def test_fleet_run_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        out_dir = tmp_path / "out"
        assert (
            main(["fleet", "run", str(spec_path), "--out", str(out_dir)]) == 0
        )
        assert (out_dir / "results.jsonl").exists()
        assert (out_dir / "summary.txt").exists()
        report = capsys.readouterr().out
        assert "1 executed, 0 cached" in report

        # Unchanged spec: cached.
        assert (
            main(["fleet", "run", str(spec_path), "--out", str(out_dir)]) == 0
        )
        assert "0 executed, 1 cached" in capsys.readouterr().out

    def test_fleet_run_library_name_with_overrides(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fleet",
                    "run",
                    "prototype_smoke",
                    "--out",
                    str(out_dir),
                    "--set",
                    "simulation.duration_s=8",
                    "--set",
                    "workload.num_sessions=2",
                ]
            )
            == 0
        )
        assert (out_dir / "results.jsonl").exists()

    def test_fleet_sweep_and_report(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fleet",
                    "sweep",
                    str(spec_path),
                    "--out",
                    str(out_dir),
                    "--axis",
                    "solver.beta=200,400",
                    "--replicates",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 runs" in out and "solver.beta" in out

        assert main(["fleet", "report", str(out_dir)]) == 0
        report = capsys.readouterr().out
        assert "4 runs recorded (4 ok" in report

    def test_fleet_unknown_spec_errors(self, tmp_path, capsys):
        assert main(["fleet", "run", "no_such_spec"]) == 2
        assert "library specs" in capsys.readouterr().err

    def test_fleet_bad_override_errors(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        assert (
            main(
                [
                    "fleet",
                    "run",
                    str(spec_path),
                    "--out",
                    str(tmp_path / "out"),
                    "--set",
                    "solver.nope=1",
                ]
            )
            == 2
        )
        assert "no such field" in capsys.readouterr().err

    def test_fleet_zero_replicates_rejected(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        assert (
            main(
                [
                    "fleet",
                    "sweep",
                    str(spec_path),
                    "--out",
                    str(tmp_path / "out"),
                    "--axis",
                    "solver.beta=200,400",
                    "--replicates",
                    "0",
                ]
            )
            == 2
        )
        assert "replicates must be >= 1" in capsys.readouterr().err

    def test_fleet_run_directory_rejected(self, tmp_path, capsys):
        assert main(["fleet", "run", str(tmp_path)]) == 2
        assert "neither a spec file nor a library spec" in capsys.readouterr().err

    def _run_small_fleet(self, tmp_path, name, *overrides):
        out_dir = tmp_path / name
        argv = [
            "fleet",
            "run",
            "prototype_smoke",
            "--out",
            str(out_dir),
            "--set",
            "simulation.duration_s=8",
            "--set",
            "workload.num_sessions=2",
        ]
        for override in overrides:
            argv += ["--set", override]
        assert main(argv) == 0
        return out_dir

    def test_fleet_report_compare_emits_all_artifacts(self, tmp_path, capsys):
        base = self._run_small_fleet(tmp_path, "base")
        b200 = self._run_small_fleet(tmp_path, "beta200", "solver.beta=200")
        capsys.readouterr()
        csv_path = tmp_path / "cmp.csv"
        html_path = tmp_path / "cmp.html"
        assert (
            main(
                [
                    "fleet",
                    "report",
                    str(base),
                    "--compare",
                    str(b200),
                    "--csv",
                    str(csv_path),
                    "--html",
                    str(html_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "spec diff" in out and "solver.beta" in out
        assert "metric deltas vs baseline 'base'" in out
        assert "solver.beta,400,200" in csv_path.read_text()
        html_text = html_path.read_text()
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<svg" in html_text

    def test_fleet_report_without_dirs_errors(self, capsys):
        assert main(["fleet", "report"]) == 2
        assert "at least one run directory" in capsys.readouterr().err

    def test_fleet_report_empty_results_diagnostic(self, tmp_path, capsys):
        """Regression: an interrupted fleet (empty or torn-only
        results.jsonl) gets a clear diagnostic, not a traceback."""
        out_dir = tmp_path / "interrupted"
        out_dir.mkdir()
        (out_dir / "results.jsonl").write_text("", encoding="utf-8")
        assert main(["fleet", "report", str(out_dir)]) == 2
        err = capsys.readouterr().err
        assert "no complete run records" in err and "interrupted" in err

        (out_dir / "results.jsonl").write_text('{"status": "o', "utf-8")
        assert main(["fleet", "report", str(out_dir)]) == 2
        assert "torn" in capsys.readouterr().err

    def test_fleet_report_missing_dir_diagnostic(self, tmp_path, capsys):
        assert main(["fleet", "report", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_run_jsonl_export(self, tmp_path, capsys):
        import json

        target = tmp_path / "fig2.jsonl"
        assert main(["run", "fig2", "--jsonl", str(target)]) == 0
        assert "result records" in capsys.readouterr().err
        records = [
            json.loads(line)
            for line in target.read_text().strip().splitlines()
        ]
        assert records and all(
            record["schema_version"] >= 1 and record["status"] == "ok"
            for record in records
        )

    def test_fleet_local_file_cannot_shadow_library_name(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "prototype_smoke").mkdir()  # stray dir with a spec's name
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fleet",
                    "run",
                    "prototype_smoke",
                    "--out",
                    str(out_dir),
                    "--set",
                    "simulation.duration_s=8",
                    "--set",
                    "workload.num_sessions=2",
                ]
            )
            == 0
        )
        assert (out_dir / "results.jsonl").exists()
