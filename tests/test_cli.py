"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    list_experiments,
)


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out


class TestRun:
    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "SG" in out

    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        assert "theory" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_scenarios_flag_sets_env(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SCENARIOS", raising=False)
        assert main(["run", "fig2", "--scenarios", "2"]) == 0
        assert os.environ.get("REPRO_SCENARIOS") == "2"

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "fig4.csv"
        assert (
            main(["run", "fig4", "--seed", "3", "--csv", str(target)]) == 0
        )
        content = target.read_text()
        assert content.startswith("label,series,time_s,value")
        assert "traffic" in content

    def test_csv_without_series_reports(self, tmp_path, capsys):
        target = tmp_path / "fig2.csv"
        assert main(["run", "fig2", "--csv", str(target)]) == 0
        out = capsys.readouterr().out
        assert "no series data" in out


class TestRegistryListing:
    def test_experiment_ids_sorted_and_complete(self):
        assert experiment_ids() == tuple(sorted(EXPERIMENTS))

    def test_list_experiments_matches_ids(self):
        specs = list_experiments()
        assert tuple(spec.experiment_id for spec in specs) == experiment_ids()


class TestFleet:
    SPEC_YAML = """\
name: cli-spec
workload:
  kind: prototype
  num_sessions: 2
simulation:
  duration_s: 8
  hop_interval_mean_s: 4
  seed: 3
"""

    def test_fleet_list_names_library(self, capsys):
        from repro.fleet.library import library_spec_names

        assert main(["fleet", "list"]) == 0
        out = capsys.readouterr().out
        for name in library_spec_names():
            assert name in out

    def test_fleet_run_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        out_dir = tmp_path / "out"
        assert (
            main(["fleet", "run", str(spec_path), "--out", str(out_dir)]) == 0
        )
        assert (out_dir / "results.jsonl").exists()
        assert (out_dir / "summary.txt").exists()
        report = capsys.readouterr().out
        assert "1 executed, 0 cached" in report

        # Unchanged spec: cached.
        assert (
            main(["fleet", "run", str(spec_path), "--out", str(out_dir)]) == 0
        )
        assert "0 executed, 1 cached" in capsys.readouterr().out

    def test_fleet_run_library_name_with_overrides(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fleet",
                    "run",
                    "prototype_smoke",
                    "--out",
                    str(out_dir),
                    "--set",
                    "simulation.duration_s=8",
                    "--set",
                    "workload.num_sessions=2",
                ]
            )
            == 0
        )
        assert (out_dir / "results.jsonl").exists()

    def test_fleet_sweep_and_report(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fleet",
                    "sweep",
                    str(spec_path),
                    "--out",
                    str(out_dir),
                    "--axis",
                    "solver.beta=200,400",
                    "--replicates",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 runs" in out and "solver.beta" in out

        assert main(["fleet", "report", str(out_dir)]) == 0
        report = capsys.readouterr().out
        assert "4 runs recorded (4 ok" in report

    def test_fleet_unknown_spec_errors(self, tmp_path, capsys):
        assert main(["fleet", "run", "no_such_spec"]) == 2
        assert "library specs" in capsys.readouterr().err

    def test_fleet_bad_override_errors(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        assert (
            main(
                [
                    "fleet",
                    "run",
                    str(spec_path),
                    "--out",
                    str(tmp_path / "out"),
                    "--set",
                    "solver.nope=1",
                ]
            )
            == 2
        )
        assert "no such field" in capsys.readouterr().err

    def test_fleet_zero_replicates_rejected(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.yaml"
        spec_path.write_text(self.SPEC_YAML)
        assert (
            main(
                [
                    "fleet",
                    "sweep",
                    str(spec_path),
                    "--out",
                    str(tmp_path / "out"),
                    "--axis",
                    "solver.beta=200,400",
                    "--replicates",
                    "0",
                ]
            )
            == 2
        )
        assert "replicates must be >= 1" in capsys.readouterr().err

    def test_fleet_run_directory_rejected(self, tmp_path, capsys):
        assert main(["fleet", "run", str(tmp_path)]) == 2
        assert "neither a spec file nor a library spec" in capsys.readouterr().err

    def test_fleet_local_file_cannot_shadow_library_name(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "prototype_smoke").mkdir()  # stray dir with a spec's name
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "fleet",
                    "run",
                    "prototype_smoke",
                    "--out",
                    str(out_dir),
                    "--set",
                    "simulation.duration_s=8",
                    "--set",
                    "workload.num_sessions=2",
                ]
            )
            == 0
        )
        assert (out_dir / "results.jsonl").exists()
