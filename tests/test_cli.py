"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out


class TestRun:
    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "SG" in out

    def test_run_fig3(self, capsys):
        assert main(["run", "fig3"]) == 0
        assert "theory" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_scenarios_flag_sets_env(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SCENARIOS", raising=False)
        assert main(["run", "fig2", "--scenarios", "2"]) == 0
        assert os.environ.get("REPRO_SCENARIOS") == "2"

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "fig4.csv"
        assert (
            main(["run", "fig4", "--seed", "3", "--csv", str(target)]) == 0
        )
        content = target.read_text()
        assert content.startswith("label,series,time_s,value")
        assert "traffic" in content

    def test_csv_without_series_reports(self, tmp_path, capsys):
        target = tmp_path / "fig2.csv"
        assert main(["run", "fig2", "--csv", str(target)]) == 0
        out = capsys.readouterr().out
        assert "no series data" in out
