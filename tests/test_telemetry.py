"""Unit tests for ``repro.telemetry`` (collector, io, progress) and
``repro.log``.

The integration side — telemetry riding through real fleets, backends
and reports — lives in ``test_fleet_telemetry.py``; this module pins
the primitives: aggregated span trees, the zero-allocation disabled
path, scope shadowing, record validation and the progress ticker's
event folding.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

import repro.telemetry as tele
from repro.log import _StderrHandler, configure, get_logger
from repro.telemetry import (
    NOOP_SPAN,
    Collector,
    ProgressTicker,
    aggregate_counters,
    aggregate_timings,
    load_run_telemetry,
    load_telemetry_records,
    span_names,
    telemetry_record,
    validate_telemetry_record,
    write_telemetry_records,
)


class TestCollector:
    def test_disabled_path_is_shared_noop(self):
        """With no active collector, span() returns the one shared
        singleton (no allocation) and count() is a silent no-op."""
        assert not tele.enabled()
        assert tele.span("anything") is NOOP_SPAN
        assert tele.span("other") is NOOP_SPAN
        tele.count("anything", 5)  # must not raise, must not record
        with tele.span("still.noop"):
            pass
        assert tele.active_collector() is None

    def test_repeated_spans_aggregate_into_one_node(self):
        with tele.collect() as collector:
            for _ in range(3):
                with tele.span("solve"):
                    with tele.span("batch"):
                        pass
                    with tele.span("batch"):
                        pass
        (solve,) = collector.spans
        assert solve.name == "solve" and solve.count == 3
        (batch,) = solve.children.values()
        assert batch.count == 6
        assert solve.total_s >= batch.total_s >= 0.0

    def test_counters_accumulate(self):
        with tele.collect() as collector:
            tele.count("hops")
            tele.count("hops")
            tele.count("wait_s", 0.25)
            tele.count("wait_s", 0.5)
        assert collector.counters_dict() == {"hops": 2, "wait_s": 0.75}

    def test_nested_scopes_shadow(self):
        """A unit collector activated inside a fleet collector receives
        the spans/counters; the fleet scope stays clean (this is how
        serial in-process unit execution keeps scopes apart)."""
        fleet = Collector(scope="fleet")
        unit = Collector(scope="unit")
        with fleet.activate():
            tele.count("fleet.only")
            with unit.activate():
                tele.count("unit.only")
                with tele.span("unit.work"):
                    pass
            assert tele.active_collector() is fleet
        assert fleet.counters_dict() == {"fleet.only": 1}
        assert unit.counters_dict() == {"unit.only": 1}
        assert [node.name for node in unit.spans] == ["unit.work"]
        assert fleet.spans == []

    def test_timings_flatten_nested_paths(self):
        with tele.collect() as collector:
            with tele.span("unit.solve"):
                with tele.span("sim.bootstrap"):
                    pass
        timings = collector.timings()
        assert set(timings) == {"unit.solve", "unit.solve/sim.bootstrap"}
        assert all(value >= 0.0 for value in timings.values())

    def test_to_dict_is_valid_telemetry_payload(self):
        with tele.collect(scope="unit") as collector:
            with tele.span("a"):
                tele.count("n", 2)
        payload = collector.to_dict()
        record = telemetry_record(
            scope=payload["scope"],
            spans=payload["spans"],
            counters=payload["counters"],
            run_id="abc123",
        )
        validate_telemetry_record(record)
        assert span_names(record) == {"a"}

    def test_span_exits_cleanly_on_exception(self):
        with tele.collect() as collector:
            with pytest.raises(RuntimeError):
                with tele.span("boom"):
                    raise RuntimeError("x")
            # The stack unwound: new spans land at the top level again.
            with tele.span("after"):
                pass
        assert {node.name for node in collector.spans} == {"boom", "after"}


class TestTelemetryIO:
    def _record(self, **overrides):
        base = telemetry_record(
            scope="unit",
            spans=[
                {
                    "name": "unit.solve",
                    "count": 2,
                    "total_s": 0.5,
                    "children": [
                        {
                            "name": "hop",
                            "count": 10,
                            "total_s": 0.25,
                            "children": [],
                        }
                    ],
                }
            ],
            counters={"hops": 10},
            run_id="deadbeef",
        )
        base.update(overrides)
        return base

    def test_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        fleet = telemetry_record(scope="fleet", spans=[], counters={"x": 1})
        assert write_telemetry_records(path, [self._record(), fleet]) == 2
        records = load_telemetry_records(path)
        assert records == [self._record(), fleet]
        telemetry = load_run_telemetry(tmp_path)
        assert set(telemetry.units) == {"deadbeef"}
        assert telemetry.fleet == fleet
        assert len(telemetry.records) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        telemetry = load_run_telemetry(tmp_path)
        assert telemetry.units == {} and telemetry.fleet is None

    @pytest.mark.parametrize(
        "broken,match",
        [
            ({"telemetry_version": 99}, "telemetry_version"),
            ({"scope": "galaxy"}, "scope"),
            ({"run_id": 7}, "run_id"),
            ({"spans": {}}, "spans"),
            ({"counters": {"n": "many"}}, "counter"),
        ],
    )
    def test_validation_rejects_bad_records(self, broken, match):
        with pytest.raises(ValueError, match=match):
            validate_telemetry_record(self._record(**broken))

    def test_validation_recurses_into_span_children(self):
        record = self._record()
        record["spans"][0]["children"][0]["count"] = 0
        with pytest.raises(ValueError, match="invalid count"):
            validate_telemetry_record(record)

    def test_load_diagnostics_carry_line_numbers(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        good = json.dumps(self._record(), sort_keys=True)
        path.write_text(good + "\n{not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"telemetry\.jsonl:2"):
            load_telemetry_records(path)
        path.write_text(
            good + "\n" + json.dumps({"telemetry_version": 1}) + "\n",
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match=r"telemetry\.jsonl:2.*scope"):
            load_telemetry_records(path)

    def test_span_names_and_aggregation(self):
        records = [self._record(), self._record(run_id="cafe")]
        assert span_names(records[0]) == {"unit.solve", "unit.solve/hop"}
        timings = aggregate_timings(records)
        assert timings["unit.solve"] == {"count": 4, "total_s": 1.0}
        assert timings["unit.solve/hop"] == {"count": 20, "total_s": 0.5}
        assert aggregate_counters(records) == {"hops": 20}


class TestProgressTicker:
    def _ticker(self, total=4, **kwargs):
        clock = iter(float(i) for i in range(1000))
        stream = io.StringIO()
        ticker = ProgressTicker(
            total=total,
            stream=stream,
            clock=lambda: next(clock),
            min_interval=0.0,
            **kwargs,
        )
        return ticker, stream

    def test_folds_events_and_renders_counts(self):
        ticker, _ = self._ticker()
        ticker.update({"event": "dispatched", "count": 4})
        assert ticker.running == 4
        ticker.update({"event": "record", "status": "ok"})
        ticker.update({"event": "record", "status": "timeout"})
        assert ticker.done == 2 and ticker.running == 2
        line = ticker.render()
        assert line.startswith("fleet 2/4 | running 2")
        assert "timeout 1" in line
        assert "eta" in line

    def test_pruned_records_without_dispatch_stay_sane(self):
        """Pruned units land as records that were never dispatched; the
        running count must clamp at zero, not go negative."""
        ticker, _ = self._ticker(total=2)
        ticker.update({"event": "record", "status": "pruned"})
        assert ticker.running == 0
        assert "pruned 1" in ticker.render()

    def test_draws_carriage_returns_and_close_is_idempotent(self):
        ticker, stream = self._ticker(total=1)
        ticker.update({"event": "dispatched", "count": 1})
        ticker.update({"event": "record", "status": "ok"})
        ticker.close()
        ticker.close()
        out = stream.getvalue()
        assert out.count("\n") == 1 and out.endswith("\n")
        assert "\rfleet 1/1" in out

    def test_redraws_throttle(self):
        stream = io.StringIO()
        t = [0.0]
        ticker = ProgressTicker(
            total=10,
            stream=stream,
            clock=lambda: t[0],
            min_interval=1.0,
        )
        ticker.update({"event": "dispatched", "count": 1})  # first: draws
        first = stream.getvalue()
        assert first
        t[0] = 0.5
        ticker.update({"event": "record", "status": "ok"})  # skip
        t[0] = 0.9
        ticker.update({"event": "record", "status": "ok"})  # skip
        assert stream.getvalue() == first
        t[0] = 1.5
        ticker.update({"event": "record", "status": "ok"})  # past interval
        assert stream.getvalue() != first


class TestReproLog:
    def test_library_root_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in root.handlers
        )

    def test_configure_replaces_instead_of_stacking(self):
        configure(0)
        configure(1)
        root = logging.getLogger("repro")
        stderr_handlers = [
            handler
            for handler in root.handlers
            if isinstance(handler, _StderrHandler)
        ]
        assert len(stderr_handlers) == 1

    @pytest.mark.parametrize(
        "verbosity,level",
        [(-1, logging.ERROR), (0, logging.INFO), (2, logging.DEBUG)],
    )
    def test_verbosity_levels(self, verbosity, level):
        assert configure(verbosity).level == level

    def test_emits_to_current_stderr(self, capsys):
        """The handler resolves sys.stderr at emit time, so capture
        mechanisms installed after configure() still see messages."""
        configure(0)
        get_logger("cli").info("status line %d", 7)
        assert "status line 7" in capsys.readouterr().err

    def test_quiet_suppresses_info_but_not_error(self, capsys):
        configure(-1)
        log = get_logger("cli")
        log.info("hidden")
        log.error("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err and "shown" in err
