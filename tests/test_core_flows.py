"""Tests for repro.core.flows — the explicit router vs the mu formula."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.flows import route_session_flows, total_routed_traffic
from repro.core.traffic import compute_session_usage, total_inter_agent_traffic
from tests.conftest import build_pair_conference


class TestRouterBasics:
    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "360p", "360p", "480p")

    def test_agreement_with_mu_on_standard_layouts(self, conf):
        for task_agent in (0, 1):
            assignment = Assignment(np.array([0, 1]), np.array([task_agent]))
            plan = route_session_flows(conf, assignment, 0)
            usage = compute_session_usage(conf, assignment, 0)
            assert np.allclose(plan.incoming(), usage.inter_in)
            assert np.allclose(plan.outgoing(), usage.inter_out)

    def test_copies_enumerated(self, conf):
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        plan = route_session_flows(conf, assignment, 0)
        # u0's transcoded 480p L0->L1 and u1's raw 360p L1->L0.
        labels = {
            (c.source_user, c.representation.name, c.from_agent, c.to_agent)
            for c in plan.copies
        }
        assert labels == {(0, "480p", 0, 1), (1, "360p", 1, 0)}

    def test_raw_copy_deduplicated_when_agent_transcodes_and_hosts(self, conf):
        """An agent that transcodes u's stream AND hosts a raw destination
        receives exactly one raw copy."""
        conf3 = build_pair_conference(
            "720p", "360p", "360p", "480p", extra_user=("360p", "720p")
        )
        # u1 (demands 480p) on L1, u2 (demands raw 720p) on L1; all
        # transcoding tasks (u0's and the u1<->u2 ones) at L1.
        assignment = Assignment(
            np.array([0, 1, 1]), np.full(conf3.theta_sum, 1, dtype=np.int64)
        )
        plan = route_session_flows(conf3, assignment, 0)
        raw_copies = [
            c for c in plan.copies
            if c.source_user == 0 and c.representation.name == "720p"
        ]
        assert len(raw_copies) == 1


class TestDocumentedDivergence:
    """The mu formula does not charge transcoded traffic entering the
    source's own agent; the router does (the bytes really flow)."""

    @pytest.fixture()
    def conf(self):
        # u2 sits with u0 on L0 and demands 480p of u0's 720p stream.
        from tests.conftest import build_shared_dest_conference

        return build_shared_dest_conference()

    def test_divergence_is_exactly_the_back_shipment(self, conf):
        # u0, u2 on L0; u1 on L1; both (u0 -> *) tasks at L1: the 480p
        # output must ship back L1 -> L0 for u2.
        assignment = Assignment(np.array([0, 1, 0]), np.array([1, 1]))
        routed = route_session_flows(conf, assignment, 0).total_inter_agent_mbps
        mu_total = compute_session_usage(conf, assignment, 0).total_inter_agent_mbps
        kappa_480 = 2.5
        assert routed == pytest.approx(mu_total + kappa_480)

    def test_no_divergence_when_tasks_at_source(self, conf):
        assignment = Assignment(np.array([0, 1, 0]), np.array([0, 0]))
        routed = route_session_flows(conf, assignment, 0).total_inter_agent_mbps
        mu_total = compute_session_usage(conf, assignment, 0).total_inter_agent_mbps
        assert routed == pytest.approx(mu_total)


class TestRouterDominance:
    def test_router_never_below_mu_for_group_consistent_tasks(
        self, proto_conf, rng
    ):
        """When every (source, representation) group uses a single task
        agent — the only layouts the solvers visit in practice — the
        router can only exceed mu (via the documented (1 - lambda_lu)
        under-count); mu's own over-count requires split groups."""
        from repro.core.transcoding import session_transcode_map

        for _ in range(8):
            ua = rng.integers(0, proto_conf.num_agents, proto_conf.num_users)
            ta = np.zeros(proto_conf.theta_sum, dtype=np.int64)
            # One random agent per (source, rep) group.
            for sid in range(proto_conf.num_sessions):
                groups: dict[tuple[int, str], int] = {}
                for i in proto_conf.session_pair_indices(sid):
                    source, dest = proto_conf.transcode_pairs[i]
                    rep = proto_conf.demanded_representation(source, dest)
                    key = (source, rep.name)
                    if key not in groups:
                        groups[key] = int(rng.integers(proto_conf.num_agents))
                    ta[i] = groups[key]
            assignment = Assignment(ua, ta)
            routed = total_routed_traffic(proto_conf, assignment)
            mu_total = total_inter_agent_traffic(proto_conf, assignment)
            assert routed >= mu_total - 1e-9
            # sanity: the map indeed has single-agent groups
            for sid in range(proto_conf.num_sessions):
                for reps in session_transcode_map(
                    proto_conf, assignment, sid
                ).values():
                    assert all(len(agents) == 1 for agents in reps.values())

    def test_mu_overcounts_on_split_groups(self):
        """The dual quirk: two task agents for the same (user, rep) make
        the mu formula charge every transcoder towards every destination
        agent, exceeding what the router actually ships (each destination
        is fed by its own pair's task agent only)."""
        from repro.model.builder import ConferenceBuilder
        from repro.model.representation import PAPER_LADDER

        builder = ConferenceBuilder(PAPER_LADDER)
        for i in range(3):
            builder.add_agent(name=f"L{i}")
        u0 = builder.user(upstream="720p", downstream="360p", name="u0")
        u1 = builder.user(
            upstream="360p", downstream="360p", name="u1",
            downstream_overrides={u0: "480p"},
        )
        u2 = builder.user(
            upstream="360p", downstream="360p", name="u2",
            downstream_overrides={u0: "480p"},
        )
        builder.add_session(u0, u1, u2)
        d = np.array([[0.0, 15, 15], [15, 0.0, 15], [15, 15, 0.0]])
        h = np.full((3, 3), 10.0)
        conf = builder.build(inter_agent_ms=d, agent_user_ms=h)
        # u0@L0; u1@L1 served by a task at L1; u2@L2 served by a task at
        # L2 -> mu also charges L1->L2 and L2->L1 phantom 480p copies.
        assignment = Assignment(np.array([0, 1, 2]), np.array([1, 2]))
        routed = total_routed_traffic(conf, assignment)
        mu_total = total_inter_agent_traffic(conf, assignment)
        assert mu_total == pytest.approx(routed + 2 * 2.5)

    def test_agreement_on_nearest_policy(self, proto_conf):
        """Nrst puts every task at the source agent, where the accountings
        provably coincide."""
        from repro.core.nearest import nearest_assignment

        assignment = nearest_assignment(proto_conf)
        assert total_routed_traffic(proto_conf, assignment) == pytest.approx(
            total_inter_agent_traffic(proto_conf, assignment)
        )
