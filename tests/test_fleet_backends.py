"""Execution backends: cross-backend bit-equivalence on a golden spec,
the subprocess worker protocol, and the crash / timeout failure paths
(a dying or hanging worker yields a diagnostic record, the remaining
units still complete, and the resume cache stays usable)."""

import json
import multiprocessing
import os
import pickle
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis.report import canonical_results_digest, record_schema_version
from repro.errors import SpecError
from repro.fleet.backends import (
    LocalBackend,
    RunPayload,
    SerialBackend,
    SubprocessBackend,
    create_backend,
    default_worker_cmd,
)
from repro.fleet.matrix import expand_matrix
from repro.fleet.orchestrator import FleetOrchestrator
from repro.fleet.spec import (
    AxisSpec,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
)

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash-injection via monkeypatch needs fork inheritance",
)


def golden_spec() -> RunSpec:
    """The golden library-shaped sweep every backend must agree on."""
    return RunSpec(
        name="golden",
        workload=WorkloadSpec(kind="prototype", num_sessions=2),
        simulation=SimulationSpec(
            duration_s=8.0, hop_interval_mean_s=4.0, seed=3
        ),
        sweep=SweepSpec(
            replicates=2,
            axes=(AxisSpec(path="solver.beta", values=(200, 400)),),
        ),
    )


def single_spec(num_sessions: int = 2) -> RunSpec:
    return RunSpec(
        name="one",
        workload=WorkloadSpec(num_sessions=num_sessions),
        simulation=SimulationSpec(
            duration_s=6.0, hop_interval_mean_s=3.0, seed=3
        ),
    )


def payloads_for(spec: RunSpec) -> list[RunPayload]:
    return [RunPayload.from_unit(unit) for unit in expand_matrix(spec)]


class TestBackendEquivalence:
    #: Content-hash ids of the golden matrix — pinned so resume caches
    #: stay valid across refactors (pure hashing, no floats involved).
    GOLDEN_RUN_IDS = [
        "32b21458e43f",
        "99a9394de167",
        "10724dc7b97f",
        "a60b334fd934",
    ]

    def test_golden_run_ids_are_stable(self):
        units = expand_matrix(golden_spec())
        assert [unit.run_id for unit in units] == self.GOLDEN_RUN_IDS

    def test_all_backends_bit_identical_on_golden_spec(self, tmp_path):
        """The acceptance criterion: serial, local and subprocess agree
        bit-for-bit on the golden spec's results.jsonl (canonical form,
        i.e. modulo the nondeterministic wall_time_s)."""
        digests = {}
        for backend, workers in (
            ("serial", 1),
            ("local", 2),
            ("subprocess", 2),
        ):
            out = tmp_path / backend
            result = FleetOrchestrator(
                out, workers=workers, backend=backend
            ).run(golden_spec())
            assert result.executed == 4 and result.failed == 0
            digests[backend] = canonical_results_digest(out)
        assert len(set(digests.values())) == 1, digests

    def test_local_default_path_byte_stable_across_runs(self, tmp_path):
        """Two cold runs of the default (local) path digest identically
        — the legacy orchestrator behavior, now behind the backend."""
        first = FleetOrchestrator(tmp_path / "a", workers=2).run(golden_spec())
        second = FleetOrchestrator(tmp_path / "b", workers=2).run(golden_spec())
        assert first.failed == second.failed == 0
        assert canonical_results_digest(
            tmp_path / "a"
        ) == canonical_results_digest(tmp_path / "b")

    def test_payload_is_picklable_plain_data(self):
        payload = payloads_for(single_spec())[0]
        clone = pickle.loads(pickle.dumps(payload))
        assert clone == payload
        assert isinstance(clone.spec, dict)
        wire = payload.to_wire()
        assert set(wire) == {"run_id", "spec", "axes", "seed", "telemetry"}

    def test_create_backend_registry(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("local", workers=2), LocalBackend)
        assert isinstance(create_backend("subprocess"), SubprocessBackend)
        with pytest.raises(SpecError, match="unknown execution backend"):
            create_backend("cluster")

    def test_unknown_backend_rejected_by_orchestrator(self, tmp_path):
        with pytest.raises(SpecError, match="backend"):
            FleetOrchestrator(tmp_path, backend="cluster")


class TestWorkerProtocol:
    def test_worker_module_round_trip(self):
        """``python -m repro.fleet.backends.worker`` is the real wire
        protocol: pickled payload on stdin, one JSON record on stdout."""
        payload = payloads_for(single_spec())[0]
        env = dict(os.environ)
        import repro

        src = str(os.path.dirname(os.path.dirname(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            default_worker_cmd(),
            input=pickle.dumps(payload.to_wire()),
            capture_output=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        record = json.loads(proc.stdout.decode("utf-8"))
        assert record["status"] == "ok"
        assert record["run_id"] == payload.run_id
        # Writers stamp the minimal version describing the record — a
        # no-fault unit stays at the pre-fault-layer schema.
        assert record["schema_version"] == record_schema_version(record)

    def test_noisy_worker_output_cannot_deadlock_dispatch(self, tmp_path):
        """A worker spewing far more than one OS pipe buffer (~64 KiB)
        on stderr must still complete: worker output is spooled to temp
        files, never to pipes the poll-only dispatcher would leave
        full."""
        noisy = tmp_path / "noisy_worker.py"
        noisy.write_text(
            textwrap.dedent(
                """\
                import json, pickle, sys

                payload = pickle.load(sys.stdin.buffer)
                for _ in range(2000):
                    print("x" * 120, file=sys.stderr)  # ~240 KiB
                from repro.fleet.compile import execute_payload

                record = execute_payload(
                    payload["run_id"], payload["spec"], payload["axes"],
                    payload["seed"],
                )
                json.dump(record, sys.stdout, sort_keys=True)
                """
            ),
            encoding="utf-8",
        )
        backend = SubprocessBackend(
            workers=1, worker_cmd=[sys.executable, str(noisy)]
        )
        records = list(backend.execute(payloads_for(single_spec())))
        assert [record["status"] for record in records] == ["ok"]

    def test_worker_env_survives_foreign_cwd(self, tmp_path, monkeypatch):
        """The dispatcher absolutizes PYTHONPATH for its children, so a
        fleet started from an unrelated working directory still finds
        the repro package in its workers."""
        monkeypatch.chdir(tmp_path)
        backend = SubprocessBackend(workers=1)
        records = list(backend.execute(payloads_for(single_spec())))
        assert [record["status"] for record in records] == ["ok"]


def _crashy_worker(tmp_path, crash_seed: int) -> list[str]:
    """A worker command that dies with exit code 3 for one seed and
    behaves like the bundled worker for every other payload."""
    script = tmp_path / "crashy_worker.py"
    script.write_text(
        textwrap.dedent(
            f"""\
            import json, pickle, sys

            payload = pickle.load(sys.stdin.buffer)
            if payload["seed"] == {crash_seed}:
                print("synthetic crash", file=sys.stderr)
                sys.exit(3)
            from repro.fleet.compile import execute_payload

            record = execute_payload(
                payload["run_id"], payload["spec"], payload["axes"],
                payload["seed"],
            )
            json.dump(record, sys.stdout, sort_keys=True)
            """
        ),
        encoding="utf-8",
    )
    return [sys.executable, str(script)]


def _sleepy_worker(tmp_path, sleep_seed: int) -> list[str]:
    """A worker command that hangs for one seed (the budget test)."""
    script = tmp_path / "sleepy_worker.py"
    script.write_text(
        textwrap.dedent(
            f"""\
            import json, pickle, sys, time

            payload = pickle.load(sys.stdin.buffer)
            if payload["seed"] == {sleep_seed}:
                time.sleep(300)
            from repro.fleet.compile import execute_payload

            record = execute_payload(
                payload["run_id"], payload["spec"], payload["axes"],
                payload["seed"],
            )
            json.dump(record, sys.stdout, sort_keys=True)
            """
        ),
        encoding="utf-8",
    )
    return [sys.executable, str(script)]


class TestSubprocessFailurePaths:
    def crash_spec(self) -> RunSpec:
        """2 replicates: seed 3 healthy, seed 4 driven to crash/hang."""
        data = single_spec().to_dict()
        data["name"] = "crashy"
        data["sweep"] = {"replicates": 2, "axes": []}
        return RunSpec.from_dict(data)

    def test_worker_crash_yields_diagnostic_and_rest_completes(
        self, tmp_path
    ):
        backend = SubprocessBackend(
            workers=2, worker_cmd=_crashy_worker(tmp_path, crash_seed=4)
        )
        records = list(backend.execute(payloads_for(self.crash_spec())))
        by_status = {record["status"]: record for record in records}
        assert set(by_status) == {"ok", "crashed"}
        crashed = by_status["crashed"]
        assert "exited with code 3" in crashed["error"]
        assert "synthetic crash" in crashed["error"]  # stderr excerpt
        assert crashed["seed"] == 4

    def test_hung_worker_times_out_and_rest_completes(self, tmp_path):
        backend = SubprocessBackend(
            workers=2, worker_cmd=_sleepy_worker(tmp_path, sleep_seed=4)
        )
        started = time.monotonic()
        records = list(
            backend.execute(payloads_for(self.crash_spec()), timeout_s=1.0)
        )
        elapsed = time.monotonic() - started
        by_status = {record["status"]: record for record in records}
        assert set(by_status) == {"ok", "timeout"}
        assert "UnitTimeout" in by_status["timeout"]["error"]
        assert elapsed < 60  # the hung worker was killed, not awaited

    def test_crash_surfaces_as_error_record_and_cache_resumes(
        self, tmp_path, monkeypatch
    ):
        """End-to-end: the orchestrator persists the crash as a clear
        error record (with the attempts count), the healthy unit's
        record survives, and a later run with a healthy backend
        re-executes only the failed unit."""
        spec = self.crash_spec()
        out = tmp_path / "out"
        worker_cmd = _crashy_worker(tmp_path, crash_seed=4)
        from repro.fleet import scheduler as scheduler_module

        monkeypatch.setattr(
            scheduler_module,
            "create_backend",
            lambda kind, workers=1, **_: SubprocessBackend(
                workers=workers, worker_cmd=worker_cmd
            ),
        )
        result = FleetOrchestrator(
            out, backend="subprocess", max_retries=1
        ).run(spec)
        assert result.failed == 1
        error = [r for r in result.records if r["status"] == "error"][0]
        assert "WorkerCrash" in error["error"]
        assert error["attempts"] == 2  # first try + one retry

        # The healthy unit is cached; re-running with the bundled
        # (working) worker re-executes only the crashed unit.
        monkeypatch.undo()
        retry = FleetOrchestrator(out, backend="subprocess").run(spec)
        assert retry.executed == 1 and retry.skipped == 1
        assert retry.failed == 0


@FORK_ONLY
class TestLocalManagedFailurePaths:
    """The local backend's managed mode (active when a budget is set):
    hard deadlines and crash detection on multiprocessing children.

    Crash injection monkeypatches ``RunPayload.execute`` in the parent;
    forked children inherit the patch, so no worker-side hook is
    needed.
    """

    def test_managed_timeout_kills_and_rest_completes(self, monkeypatch):
        data = single_spec().to_dict()
        data["sweep"] = {"replicates": 2, "axes": []}
        payloads = payloads_for(RunSpec.from_dict(data))

        real_execute = RunPayload.execute

        def hang_for_seed_4(self):
            if self.seed == 4:
                time.sleep(300)
            return real_execute(self)

        monkeypatch.setattr(RunPayload, "execute", hang_for_seed_4)
        backend = LocalBackend(workers=2)
        started = time.monotonic()
        records = list(backend.execute(payloads, timeout_s=1.5))
        assert time.monotonic() - started < 60
        by_status = {record["status"]: record for record in records}
        assert set(by_status) == {"ok", "timeout"}
        assert by_status["timeout"]["seed"] == 4

    def test_managed_crash_detected_and_rest_completes(self, monkeypatch):
        spec = single_spec()
        data = spec.to_dict()
        data["sweep"] = {"replicates": 2, "axes": []}
        payloads = payloads_for(RunSpec.from_dict(data))

        real_execute = RunPayload.execute

        def crash_for_seed_4(self):
            if self.seed == 4:
                os._exit(7)
            return real_execute(self)

        monkeypatch.setattr(RunPayload, "execute", crash_for_seed_4)
        backend = LocalBackend(workers=2)
        records = list(backend.execute(payloads, timeout_s=60.0))
        by_status = {record["status"]: record for record in records}
        assert set(by_status) == {"ok", "crashed"}
        assert "exited with code 7" in by_status["crashed"]["error"]


class TestSerialBudget:
    def test_serial_detects_budget_post_hoc(self, monkeypatch):
        """The in-process backend cannot kill a unit, but an over-budget
        unit still comes back as a first-class timeout record."""
        payload = payloads_for(single_spec())[0]

        def pretend_slow(self):
            return {
                "status": "ok",
                "run_id": self.run_id,
                "wall_time_s": 99.0,
            }

        monkeypatch.setattr(RunPayload, "execute", pretend_slow)
        records = list(SerialBackend().execute([payload], timeout_s=1.0))
        assert records[0]["status"] == "timeout"
        assert "UnitTimeout" in records[0]["error"]

    def test_serial_without_budget_passes_records_through(self):
        payload = payloads_for(single_spec())[0]
        records = list(SerialBackend().execute([payload]))
        assert records[0]["status"] == "ok"
        assert records[0]["run_id"] == payload.run_id
