"""Tests for repro.runtime.faults — timed-window fault injection."""

import numpy as np
import pytest

from repro.core.feasibility import is_feasible
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import SimulationError
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.faults import (
    FAULT_KINDS,
    OUTAGE_DELAY_MS,
    Fault,
    FaultSchedule,
    all_sites_outaged_window,
    apply_faults,
    outaged_sites,
    stranded_sessions,
)
from repro.runtime.simulation import ConferencingSimulator, SimulationConfig
from repro.workloads.prototype import prototype_conference


@pytest.fixture(scope="module")
def evaluator():
    conference = prototype_conference(seed=3, num_sessions=4)
    return ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )


def quick_config(**overrides):
    defaults = dict(
        duration_s=40.0,
        sample_interval_s=2.0,
        hop_interval_mean_s=4.0,
        markov=MarkovConfig(beta=32.0),
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run_sim(evaluator, faults=None, **config):
    conference = evaluator.conference
    return ConferencingSimulator(
        evaluator,
        DynamicsSchedule.static(range(conference.num_sessions)),
        quick_config(**config),
        faults=faults,
    ).run()


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown"):
            Fault(kind="meteor", site=0, start_s=0.0, end_s=1.0)

    def test_negative_site_rejected(self):
        with pytest.raises(SimulationError, match="site"):
            Fault(kind="outage", site=-1, start_s=0.0, end_s=1.0)

    def test_window_must_be_forward(self):
        with pytest.raises(SimulationError, match="end > start"):
            Fault(kind="outage", site=0, start_s=2.0, end_s=2.0)
        with pytest.raises(SimulationError, match=">= 0"):
            Fault(kind="outage", site=0, start_s=-1.0, end_s=1.0)

    def test_capacity_severity_bounds(self):
        with pytest.raises(SimulationError, match="severity"):
            Fault(kind="capacity", site=0, start_s=0.0, end_s=1.0, severity=1.5)
        with pytest.raises(SimulationError, match="severity"):
            Fault(kind="capacity", site=0, start_s=0.0, end_s=1.0, severity=0.0)

    def test_latency_severity_positive(self):
        with pytest.raises(SimulationError, match="severity"):
            Fault(kind="latency", site=0, start_s=0.0, end_s=1.0, severity=0.0)
        # > 1 is fine for latency: delay scales by (1 + severity).
        Fault(kind="latency", site=0, start_s=0.0, end_s=1.0, severity=3.0)

    def test_schedule_policy_validated(self):
        with pytest.raises(SimulationError, match="policy"):
            FaultSchedule(policy="pray")


class TestCanonicalOrdering:
    def test_declaration_order_never_matters(self):
        a = Fault(kind="outage", site=2, start_s=5.0, end_s=9.0)
        b = Fault(kind="latency", site=0, start_s=1.0, end_s=3.0)
        c = Fault(kind="capacity", site=1, start_s=1.0, end_s=3.0)
        forward = FaultSchedule(faults=(a, b, c))
        backward = FaultSchedule(faults=(c, b, a))
        assert forward == backward
        assert forward.faults[0].start_s == 1.0

    def test_transitions_end_before_start_at_shared_instant(self):
        """Back-to-back windows on one site: the recovery applies before
        the next fault, so the site is never doubly faulted."""
        schedule = FaultSchedule(
            faults=(
                Fault(kind="outage", site=0, start_s=2.0, end_s=5.0),
                Fault(kind="outage", site=0, start_s=5.0, end_s=8.0),
            )
        )
        transitions = schedule.transitions()
        at_five = [phase for time_s, phase, _ in transitions if time_s == 5.0]
        assert at_five == ["end", "start"]

    def test_transitions_sorted_by_time(self):
        schedule = FaultSchedule(
            faults=(
                Fault(kind="latency", site=1, start_s=6.0, end_s=9.0),
                Fault(kind="outage", site=0, start_s=1.0, end_s=4.0),
            )
        )
        times = [time_s for time_s, _, _ in schedule.transitions()]
        assert times == sorted(times)


class TestChaosGenerator:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            num_sites=6, duration_s=100.0, rate_per_s=0.2, seed=11
        )
        assert FaultSchedule.chaos(**kwargs) == FaultSchedule.chaos(**kwargs)

    def test_different_seeds_differ(self):
        a = FaultSchedule.chaos(
            num_sites=6, duration_s=100.0, rate_per_s=0.2, seed=1
        )
        b = FaultSchedule.chaos(
            num_sites=6, duration_s=100.0, rate_per_s=0.2, seed=2
        )
        assert a != b

    def test_rate_zero_is_empty(self):
        schedule = FaultSchedule.chaos(
            num_sites=4, duration_s=50.0, rate_per_s=0.0, seed=0
        )
        assert len(schedule) == 0

    def test_starts_within_horizon(self):
        schedule = FaultSchedule.chaos(
            num_sites=4, duration_s=60.0, rate_per_s=0.5, seed=3
        )
        assert len(schedule) > 0
        assert all(f.start_s < 60.0 for f in schedule.faults)
        assert all(f.kind in FAULT_KINDS for f in schedule.faults)

    def test_kind_restriction(self):
        schedule = FaultSchedule.chaos(
            num_sites=4,
            duration_s=60.0,
            rate_per_s=0.5,
            kinds=("latency",),
            seed=3,
        )
        assert all(f.kind == "latency" for f in schedule.faults)

    def test_never_generates_all_sites_dead(self):
        """Even a single-site topology under heavy outage chaos keeps a
        live site at every instant (the degenerate draw is skipped)."""
        schedule = FaultSchedule.chaos(
            num_sites=2,
            duration_s=200.0,
            rate_per_s=1.0,
            mean_duration_s=50.0,
            kinds=("outage",),
            seed=7,
        )
        assert all_sites_outaged_window(schedule.faults, 2) is None

    def test_bad_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown"):
            FaultSchedule.chaos(
                num_sites=4, duration_s=10.0, rate_per_s=0.1, kinds=("x",)
            )


class TestAllSitesOutagedWindow:
    def test_detects_full_overlap(self):
        faults = [
            Fault(kind="outage", site=s, start_s=2.0, end_s=10.0)
            for s in range(3)
        ]
        assert all_sites_outaged_window(faults, 3) == (2.0, 10.0)

    def test_staggered_windows_pass(self):
        faults = [
            Fault(kind="outage", site=0, start_s=0.0, end_s=5.0),
            Fault(kind="outage", site=1, start_s=5.0, end_s=10.0),
        ]
        assert all_sites_outaged_window(faults, 2) is None

    def test_non_outage_kinds_ignored(self):
        faults = [
            Fault(kind="latency", site=s, start_s=0.0, end_s=10.0)
            for s in range(2)
        ]
        assert all_sites_outaged_window(faults, 2) is None


class TestApplyFaults:
    def test_empty_faults_is_identity(self, evaluator):
        conference = evaluator.conference
        assert apply_faults(conference, []) is conference

    def test_outage_masks_site_and_keeps_pristine(self, evaluator):
        conference = evaluator.conference
        d_before = conference.topology.inter_agent_ms.copy()
        h_before = conference.topology.agent_user_ms.copy()
        view = apply_faults(
            conference,
            [Fault(kind="outage", site=1, start_s=0.0, end_s=1.0)],
        )
        d = view.topology.inter_agent_ms
        assert (d[1, :2] == [OUTAGE_DELAY_MS, 0.0]).all()
        assert (d[2:, 1] == OUTAGE_DELAY_MS).all()
        assert (view.topology.agent_user_ms[1, :] == OUTAGE_DELAY_MS).all()
        # The pristine conference (and its cached arrays) are untouched.
        assert np.array_equal(conference.topology.inter_agent_ms, d_before)
        assert np.array_equal(conference.topology.agent_user_ms, h_before)

    def test_latency_scales_symmetrically(self, evaluator):
        conference = evaluator.conference
        view = apply_faults(
            conference,
            [Fault(kind="latency", site=0, start_s=0.0, end_s=1.0, severity=1.0)],
        )
        d0 = conference.topology.inter_agent_ms
        d1 = view.topology.inter_agent_ms
        assert d1[0, 3] == pytest.approx(2.0 * d0[0, 3])
        assert d1[3, 0] == pytest.approx(2.0 * d0[3, 0])
        assert d1[0, 0] == 0.0
        assert np.array_equal(d1[2, 3:], d0[2, 3:])

    def test_capacity_scales_agent(self, evaluator):
        conference = evaluator.conference
        view = apply_faults(
            conference,
            [Fault(kind="capacity", site=2, start_s=0.0, end_s=1.0, severity=0.5)],
        )
        before = conference.agents[2]
        after = view.agents[2]
        if np.isfinite(before.upload_mbps):
            assert after.upload_mbps == pytest.approx(0.5 * before.upload_mbps)
        else:
            assert not np.isfinite(after.upload_mbps)

    def test_full_capacity_loss_of_infinite_agent_is_zero(self, evaluator):
        """inf * 0 is NaN; a total capacity fault must yield exactly 0."""
        conference = evaluator.conference
        view = apply_faults(
            conference,
            [Fault(kind="capacity", site=0, start_s=0.0, end_s=1.0, severity=1.0)],
        )
        assert view.agents[0].upload_mbps == 0.0
        assert view.agents[0].transcode_slots == 0.0

    def test_unknown_site_rejected(self, evaluator):
        with pytest.raises(SimulationError, match="does not exist"):
            apply_faults(
                evaluator.conference,
                [Fault(kind="outage", site=99, start_s=0.0, end_s=1.0)],
            )


class TestStrandedSessions:
    def test_outaged_sites_collects_outages_only(self):
        faults = [
            Fault(kind="outage", site=1, start_s=0.0, end_s=1.0),
            Fault(kind="latency", site=2, start_s=0.0, end_s=1.0),
        ]
        assert outaged_sites(faults) == frozenset({1})

    def test_session_on_dead_site_is_stranded(self, evaluator):
        from repro.core.nearest import nearest_assignment

        conference = evaluator.conference
        sids = list(range(conference.num_sessions))
        assignment = nearest_assignment(conference, sids)
        uid = conference.sessions[0].user_ids[0]
        dead = frozenset({int(assignment.user_agent[uid])})
        assert 0 in stranded_sessions(conference, assignment, sids, dead)
        assert stranded_sessions(conference, assignment, sids, frozenset()) == []


class TestSimulatorFaultInjection:
    def test_empty_schedule_matches_no_faults(self, evaluator):
        """A present-but-empty schedule draws nothing extra from the rng
        and records an identical trajectory."""
        plain = run_sim(evaluator, faults=None)
        empty = run_sim(evaluator, faults=FaultSchedule())
        assert np.array_equal(
            plain.series("traffic")[1], empty.series("traffic")[1]
        )
        assert np.array_equal(plain.series("phi")[1], empty.series("phi")[1])
        assert plain.final_assignment == empty.final_assignment
        assert plain.hops == empty.hops
        assert empty.faults_injected == 0
        assert empty.recovery_times == ()

    def test_seeded_fault_run_is_deterministic(self, evaluator):
        schedule = FaultSchedule(
            faults=(
                Fault(kind="outage", site=1, start_s=10.0, end_s=25.0),
                Fault(kind="latency", site=0, start_s=15.0, end_s=20.0),
            )
        )
        a = run_sim(evaluator, faults=schedule)
        b = run_sim(evaluator, faults=schedule)
        assert np.array_equal(a.series("phi")[1], b.series("phi")[1])
        assert a.final_assignment == b.final_assignment
        assert a.recovery_times == b.recovery_times
        assert a.faults_injected == b.faults_injected == 2

    def test_outage_counts_and_final_feasibility(self, evaluator):
        schedule = FaultSchedule(
            faults=(Fault(kind="outage", site=1, start_s=10.0, end_s=25.0),)
        )
        result = run_sim(evaluator, faults=schedule)
        assert result.faults_injected == 1
        assert is_feasible(evaluator.conference, result.final_assignment)

    def test_migrate_policy_clears_stranded_immediately(self, evaluator):
        """The recovery-deadline property: under the migrate policy no
        sampled instant shows a session on an outaged site, for any
        seeded random outage plan."""
        rng = np.random.default_rng(17)
        for _ in range(3):
            start = float(rng.uniform(4.0, 18.0))
            schedule = FaultSchedule(
                faults=(
                    Fault(
                        kind="outage",
                        site=int(rng.integers(6)),
                        start_s=start,
                        end_s=start + float(rng.uniform(4.0, 15.0)),
                    ),
                ),
                policy="migrate",
            )
            result = run_sim(evaluator, faults=schedule)
            _, stranded = result.series("stranded")
            assert (stranded == 0).all()
            assert result.sessions_dropped == 0

    def test_drop_policy_removes_stranded(self, evaluator):
        schedule = FaultSchedule(
            faults=(Fault(kind="outage", site=0, start_s=8.0, end_s=30.0),),
            policy="drop",
        )
        result = run_sim(evaluator, faults=schedule)
        # Either nothing sat on site 0 (fine) or the stranded sessions
        # were removed rather than migrated.
        assert result.fault_migrations == 0
        _, stranded = result.series("stranded")
        assert (stranded == 0).all()

    def test_latency_spike_needs_no_recovery_policy(self, evaluator):
        schedule = FaultSchedule(
            faults=(
                Fault(
                    kind="latency",
                    site=2,
                    start_s=10.0,
                    end_s=20.0,
                    severity=2.0,
                ),
            ),
            policy="none",
        )
        result = run_sim(evaluator, faults=schedule)
        assert result.faults_injected == 1
        assert result.fault_migrations == 0
        assert result.sessions_dropped == 0

    def test_faults_beyond_horizon_never_fire(self, evaluator):
        schedule = FaultSchedule(
            faults=(Fault(kind="outage", site=0, start_s=500.0, end_s=600.0),)
        )
        plain = run_sim(evaluator, faults=None)
        late = run_sim(evaluator, faults=schedule)
        assert late.faults_injected == 0
        assert np.array_equal(
            plain.series("traffic")[1], late.series("traffic")[1]
        )
