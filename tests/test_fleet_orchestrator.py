"""Tests for the fleet orchestrator: expansion, pooling, caching,
aggregation, and the YAML-file end-to-end path."""

import json

import pytest

from repro.errors import SpecError
from repro.fleet.orchestrator import (
    FleetOrchestrator,
    aggregate_records,
    expand_matrix,
    load_records,
)
from repro.fleet.spec import (
    AxisSpec,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
    dump_spec,
    load_spec,
)

FAST_SIM = SimulationSpec(duration_s=8.0, hop_interval_mean_s=4.0, seed=3)


def sweep_spec(replicates: int = 2) -> RunSpec:
    """2-axis sweep over a tiny prototype: 2 x 2 grid x replicates."""
    return RunSpec(
        name="mini-sweep",
        workload=WorkloadSpec(kind="prototype", num_sessions=2),
        simulation=FAST_SIM,
        sweep=SweepSpec(
            replicates=replicates,
            axes=(
                AxisSpec(path="solver.beta", values=(200, 400)),
                AxisSpec(path="simulation.hop_interval_mean_s", values=(4, 8)),
            ),
        ),
    )


class TestExpand:
    def test_grid_times_replicates(self):
        units = expand_matrix(sweep_spec(replicates=2))
        assert len(units) == 2 * 2 * 2
        assert len({unit.run_id for unit in units}) == len(units)
        seeds = {unit.seed for unit in units}
        assert seeds == {3, 4}
        for unit in units:
            assert not unit.spec.sweep.axes  # units are sweep-free
            assert set(unit.axes) == {
                "solver.beta",
                "simulation.hop_interval_mean_s",
            }

    def test_expansion_is_deterministic(self):
        first = [unit.run_id for unit in expand_matrix(sweep_spec())]
        second = [unit.run_id for unit in expand_matrix(sweep_spec())]
        assert first == second

    def test_sweep_free_spec_is_single_unit(self):
        units = expand_matrix(
            RunSpec(name="one", workload=WorkloadSpec(num_sessions=2))
        )
        assert len(units) == 1 and units[0].axes == {}


class TestOrchestrator:
    def test_end_to_end_from_yaml_with_pool(self, tmp_path):
        """The acceptance path: YAML spec -> >= 2 workers -> JSONL +
        summary -> rerun hits the cache."""
        spec_path = tmp_path / "sweep.yaml"
        dump_spec(sweep_spec(replicates=2), spec_path)
        spec = load_spec(spec_path)

        out = tmp_path / "out"
        result = FleetOrchestrator(out, workers=2).run(spec)
        assert result.executed == 8 and result.skipped == 0
        assert result.failed == 0

        records = load_records(out)
        assert len(records) == 8
        for record in records:
            assert record["status"] == "ok"
            assert record["traffic_mbps"] >= 0.0
        assert (out / "summary.txt").exists()
        assert (out / "spec.yaml").exists()

        # 2x2 grid -> 4 aggregate rows, each covering both replicates.
        table = result.summary_table()
        assert table.count("\n") >= 5  # title + header + rule + 4 rows
        for line in table.splitlines()[3:]:
            assert "  2  " in line or line.split()[2] == "2"

        # Unchanged spec: everything cached, nothing re-executed.
        again = FleetOrchestrator(out, workers=2).run(spec)
        assert again.executed == 0 and again.skipped == 8
        assert again.records == records

    def test_serial_and_pooled_agree(self, tmp_path):
        spec = sweep_spec(replicates=1)
        serial = FleetOrchestrator(tmp_path / "serial", workers=0).run(spec)
        pooled = FleetOrchestrator(tmp_path / "pooled", workers=2).run(spec)
        strip = lambda records: [
            {k: v for k, v in record.items() if k != "wall_time_s"}
            for record in records
        ]
        assert strip(serial.records) == strip(pooled.records)

    def test_cache_hit_restamps_axes(self, tmp_path):
        """A record cached without sweep labels gets the current unit's
        axes when reused, so summary rows stay labeled."""
        out = tmp_path / "out"
        base = RunSpec(
            name="one", workload=WorkloadSpec(num_sessions=2), simulation=FAST_SIM
        )
        FleetOrchestrator(out).run(base)  # cached with axes={}
        swept = RunSpec(
            name="one",
            workload=WorkloadSpec(num_sessions=2),
            simulation=FAST_SIM,
            sweep=SweepSpec(
                axes=(AxisSpec(path="solver.beta", values=(400, 200)),)
            ),
        )
        result = FleetOrchestrator(out).run(swept)
        assert result.executed == 1 and result.skipped == 1  # beta=400 cached
        by_beta = {
            record["axes"]["solver.beta"]: record for record in result.records
        }
        assert set(by_beta) == {200, 400}
        rows = result.summary_table().splitlines()[3:]
        assert [row.split()[0] for row in rows] == ["200", "400"]

    def test_changed_spec_invalidates_cache(self, tmp_path):
        out = tmp_path / "out"
        base = RunSpec(
            name="one", workload=WorkloadSpec(num_sessions=2), simulation=FAST_SIM
        )
        assert FleetOrchestrator(out).run(base).executed == 1
        changed = base.with_overrides({"solver.beta": 123})
        result = FleetOrchestrator(out).run(changed)
        assert result.executed == 1 and result.skipped == 0

    def test_no_resume_re_executes(self, tmp_path):
        out = tmp_path / "out"
        spec = RunSpec(
            name="one", workload=WorkloadSpec(num_sessions=2), simulation=FAST_SIM
        )
        FleetOrchestrator(out).run(spec)
        result = FleetOrchestrator(out, resume=False).run(spec)
        assert result.executed == 1

    def test_torn_jsonl_line_is_re_executed(self, tmp_path):
        out = tmp_path / "out"
        spec = RunSpec(
            name="one", workload=WorkloadSpec(num_sessions=2), simulation=FAST_SIM
        )
        FleetOrchestrator(out).run(spec)
        results = out / "results.jsonl"
        results.write_text(results.read_text()[: -20], encoding="utf-8")
        result = FleetOrchestrator(out).run(spec)
        assert result.executed == 1

    def test_failed_unit_is_reported_not_fatal(self, tmp_path):
        # A churn plan that only becomes infeasible at compile time
        # (more arrivals than the workload has sessions).
        data = sweep_spec(replicates=1).to_dict()
        data["name"] = "with-bad-unit"
        data["churn"] = {
            "initial": 1,
            "waves": [{"time_s": 2.0, "arrive": 9, "depart": 0}],
        }
        data["sweep"] = {"replicates": 1, "axes": []}
        spec = RunSpec.from_dict(data)
        result = FleetOrchestrator(tmp_path / "out").run(spec)
        assert result.failed == 1
        assert "error" in result.records[0]

    def test_missing_results_dir_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="no fleet results"):
            load_records(tmp_path / "nothing")

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="workers"):
            FleetOrchestrator(tmp_path, workers=-1)


class TestAggregate:
    def test_aggregates_by_axes_with_replicates(self):
        records = [
            {
                "status": "ok",
                "axes": {"solver.beta": beta},
                "seed": seed,
                "traffic_mbps": float(10 * beta + seed),
                "delay_ms": 100.0,
                "phi": 1.0,
            }
            for beta in (200, 400)
            for seed in (0, 1)
        ]
        table = aggregate_records(records)
        lines = table.splitlines()
        assert lines[1].split()[:2] == ["solver.beta", "runs"]
        assert len(lines) == 2 + 1 + 2  # title+header, rule, 2 groups
        assert "2000.50" in table and "4000.50" in table

    def test_empty_and_failed_records(self):
        assert "no successful runs" in aggregate_records([])
        assert "no successful runs" in aggregate_records(
            [{"status": "error", "error": "boom"}]
        )

    def test_numeric_axes_sort_numerically(self):
        records = [
            {
                "status": "ok",
                "axes": {"solver.beta": beta},
                "traffic_mbps": 1.0,
                "delay_ms": 1.0,
                "phi": 1.0,
            }
            for beta in (1000, 200, 400)
        ]
        lines = aggregate_records(records).splitlines()[3:]
        assert [line.split()[0] for line in lines] == ["200", "400", "1000"]

    def test_load_records_tolerates_torn_line(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        good = json.dumps({"status": "ok", "run_id": "abc"})
        (out / "results.jsonl").write_text(good + '\n{"status": "o', "utf-8")
        assert load_records(out) == [{"status": "ok", "run_id": "abc"}]

    def test_jsonl_records_are_one_line_each(self, tmp_path):
        out = tmp_path / "out"
        FleetOrchestrator(out).run(
            RunSpec(
                name="one",
                workload=WorkloadSpec(num_sessions=2),
                simulation=FAST_SIM,
            )
        )
        lines = (out / "results.jsonl").read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["status"] == "ok"


class TestAtomicRewrite:
    """`_rewrite_results` must be all-or-nothing: an interrupt mid-write
    can never leave a torn results.jsonl behind."""

    def _finished_run(self, tmp_path):
        out = tmp_path / "out"
        spec = RunSpec(
            name="one", workload=WorkloadSpec(num_sessions=2), simulation=FAST_SIM
        )
        orchestrator = FleetOrchestrator(out)
        orchestrator.run(spec)
        return orchestrator, out / "results.jsonl"

    def test_crash_mid_rewrite_preserves_previous_file(self, tmp_path):
        """A rewrite that dies halfway (simulated by a record that fails
        to serialize after a first good one) leaves the previous
        complete file untouched and no temp debris behind."""
        orchestrator, results = self._finished_run(tmp_path)
        before = results.read_text(encoding="utf-8")
        poisoned = [{"status": "ok", "run_id": "good"}, {"bad": object()}]
        with pytest.raises(TypeError):
            orchestrator._rewrite_results(poisoned)
        assert results.read_text(encoding="utf-8") == before
        assert not list(results.parent.glob("*.tmp"))

    def test_rewrite_replaces_atomically_via_temp_file(
        self, tmp_path, monkeypatch
    ):
        """The new content only ever lands through os.replace of a
        same-directory temp file (never an in-place truncate+write)."""
        import os as os_module

        orchestrator, results = self._finished_run(tmp_path)
        replaced = {}
        real_replace = os_module.replace

        def spying_replace(src, dst):
            replaced["src"], replaced["dst"] = str(src), str(dst)
            return real_replace(src, dst)

        import repro.fleet.orchestrator as orchestrator_module

        monkeypatch.setattr(orchestrator_module.os, "replace", spying_replace)
        orchestrator._rewrite_results([{"status": "ok", "run_id": "abc"}])
        assert replaced["dst"] == str(results)
        assert replaced["src"].endswith(".tmp")
        assert os_module.path.dirname(replaced["src"]) == str(results.parent)
        assert json.loads(results.read_text())["run_id"] == "abc"
