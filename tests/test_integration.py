"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_assignment, try_bootstrap
from repro.core.feasibility import check_assignment, is_feasible
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import effective_beta


class TestPrototypePipeline:
    """Nrst -> Alg. 1 on the prototype: the Fig. 4 story end to end."""

    @pytest.fixture(scope="class")
    def outcome(self, proto_conf):
        evaluator = ObjectiveEvaluator(
            proto_conf, ObjectiveWeights.normalized_for(proto_conf)
        )
        initial = nearest_assignment(proto_conf)
        solver = MarkovAssignmentSolver(
            evaluator,
            initial,
            config=MarkovConfig(beta=effective_beta(400.0)),
            rng=np.random.default_rng(0),
        )
        solver.run_until_stable(max_hops=2000)
        return proto_conf, evaluator, initial, solver

    def test_traffic_reduction_substantial(self, outcome):
        conf, evaluator, initial, solver = outcome
        before = evaluator.total(initial).inter_agent_mbps
        after = evaluator.total(solver.best_assignment).inter_agent_mbps
        assert after < 0.4 * before  # the paper's headline is ~77 % at scale

    def test_delay_does_not_blow_up(self, outcome):
        conf, evaluator, initial, solver = outcome
        before = evaluator.total(initial).average_delay_ms
        after = evaluator.total(solver.best_assignment).average_delay_ms
        assert after < 1.15 * before

    def test_best_assignment_feasible(self, outcome):
        conf, _evaluator, _initial, solver = outcome
        report = check_assignment(conf, solver.best_assignment)
        assert report.ok, report.summary()

    def test_every_flow_within_dmax(self, outcome):
        conf, _evaluator, _initial, solver = outcome
        from repro.core.delay import max_session_flow_delay

        for sid in range(conf.num_sessions):
            assert (
                max_session_flow_delay(conf, solver.best_assignment, sid)
                <= conf.dmax_ms
            )


class TestAgRankPipeline:
    def test_agrank_beats_nearest_on_traffic(self, proto_conf):
        evaluator = ObjectiveEvaluator(
            proto_conf, ObjectiveWeights.normalized_for(proto_conf)
        )
        nrst = evaluator.total(nearest_assignment(proto_conf))
        agrank = evaluator.total(bootstrap_assignment(proto_conf, "agrank"))
        assert agrank.inter_agent_mbps < nrst.inter_agent_mbps

    def test_agrank_head_start_for_markov(self, proto_conf):
        """Bootstrapping with AgRank reaches a given objective with fewer
        hops than bootstrapping with Nrst (the Fig. 6 claim)."""
        evaluator = ObjectiveEvaluator(
            proto_conf, ObjectiveWeights.normalized_for(proto_conf)
        )
        budget = 120

        def best_phi_after(policy: str) -> float:
            initial = (
                nearest_assignment(proto_conf)
                if policy == "nearest"
                else bootstrap_assignment(proto_conf, "agrank")
            )
            solver = MarkovAssignmentSolver(
                evaluator,
                initial,
                config=MarkovConfig(beta=effective_beta(400.0)),
                rng=np.random.default_rng(1),
            )
            solver.run(budget)
            return solver.best_phi

        assert best_phi_after("agrank") <= best_phi_after("nearest") * 1.05


class TestScenarioPipeline:
    def test_small_scenario_full_stack(self, small_scenario_conf):
        conf = small_scenario_conf
        evaluator = ObjectiveEvaluator(
            conf, ObjectiveWeights.normalized_for(conf)
        )
        result = try_bootstrap(conf, "agrank")
        assert result.success
        solver = MarkovAssignmentSolver(
            evaluator,
            result.assignment,
            config=MarkovConfig(beta=effective_beta(400.0)),
            rng=np.random.default_rng(2),
        )
        solver.run_until_stable(max_hops=800)
        assert is_feasible(conf, solver.best_assignment)
        assert solver.best_phi <= evaluator.total(result.assignment).phi + 1e-9

    def test_alpha_tradeoff_direction(self, small_scenario_conf):
        """Traffic-only weights yield <= traffic and >= delay than
        delay-only weights (the Table II / Fig. 8 trade-off)."""
        conf = small_scenario_conf
        base = ObjectiveWeights.normalized_for(conf)
        initial = nearest_assignment(conf)

        def optimize(alphas):
            evaluator = ObjectiveEvaluator(conf, base.with_alphas(*alphas))
            solver = MarkovAssignmentSolver(
                evaluator,
                initial,
                config=MarkovConfig(beta=effective_beta(400.0)),
                rng=np.random.default_rng(3),
            )
            solver.run_until_stable(max_hops=600)
            report = ObjectiveEvaluator(conf, base).total(solver.best_assignment)
            return report.inter_agent_mbps, report.average_delay_ms

        traffic_t, delay_t = optimize((0.0, 1.0, 1.0))
        traffic_d, delay_d = optimize((1.0, 0.0, 0.0))
        assert traffic_t <= traffic_d
        assert delay_d <= delay_t
