"""Tests for repro.core.feasibility and repro.core.capacity."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.capacity import CapacityLedger
from repro.core.feasibility import check_assignment, is_feasible
from repro.core.traffic import compute_session_usage
from repro.errors import ModelError
from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER
from tests.conftest import PAIR_D, PAIR_H, build_pair_conference


def capacity_conference(download=(100.0, 100.0), upload=(100.0, 100.0), slots=(10, 10)):
    builder = ConferenceBuilder(PAPER_LADDER)
    for i in range(2):
        builder.add_agent(
            name=f"L{i}",
            download_mbps=download[i],
            upload_mbps=upload[i],
            transcode_slots=slots[i],
        )
    u0 = builder.user("720p", "360p", name="u0")
    u1 = builder.user("360p", "480p", name="u1")
    builder.add_session(u0, u1)
    return builder.build(inter_agent_ms=PAIR_D, agent_user_ms=PAIR_H)


class TestStructuralConstraints:
    def test_unassigned_user_reported(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        report = check_assignment(conf, Assignment.empty(conf))
        assert not report.ok
        assert any("constraint (1)" in v for v in report.violations)

    def test_invalid_agent_reported(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        bad = Assignment(np.array([0, 7]), np.zeros(0, dtype=np.int64))
        report = check_assignment(conf, bad)
        assert any("constraint (2)" in v for v in report.violations)

    def test_unassigned_task_reported(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        partial = Assignment(np.array([0, 1]), np.array([-1]))
        report = check_assignment(conf, partial)
        assert any("constraint (3)" in v for v in report.violations)


class TestCapacityConstraints:
    def test_feasible_within_caps(self):
        conf = capacity_conference()
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert is_feasible(conf, assignment)

    def test_download_violation(self):
        conf = capacity_conference(download=(3.0, 100.0))
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        report = check_assignment(conf, assignment)
        assert any("constraint (5)" in v for v in report.violations)

    def test_upload_violation(self):
        conf = capacity_conference(upload=(2.0, 100.0))
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        report = check_assignment(conf, assignment)
        assert any("constraint (6)" in v for v in report.violations)

    def test_transcode_violation(self):
        conf = capacity_conference(slots=(0, 10))
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        report = check_assignment(conf, assignment)
        assert any("constraint (7)" in v for v in report.violations)

    def test_delay_violation(self):
        conf = capacity_conference()
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        report = check_assignment(conf, assignment, dmax_ms=50.0)
        assert any("constraint (8)" in v for v in report.violations)

    def test_summary_renders(self):
        conf = capacity_conference(download=(3.0, 100.0))
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        report = check_assignment(conf, assignment)
        assert "violation" in report.summary()
        assert check_assignment(conf, Assignment(np.array([1, 1]), np.array([1]))).ok


class TestCapacityLedger:
    def test_totals_track_sessions(self):
        conf = capacity_conference()
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        ledger = CapacityLedger.from_assignment(conf, assignment)
        down, up, slots = ledger.totals()
        usage = compute_session_usage(conf, assignment, 0)
        assert np.allclose(down, usage.download)
        assert np.allclose(up, usage.upload)
        assert np.allclose(slots, usage.transcodes)

    def test_remove_session_returns_capacity(self):
        conf = capacity_conference()
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        ledger = CapacityLedger.from_assignment(conf, assignment)
        ledger.remove_session(0)
        down, up, slots = ledger.totals()
        assert down.sum() == 0 and up.sum() == 0 and slots.sum() == 0

    def test_residuals_excluding_session(self):
        conf = capacity_conference()
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        ledger = CapacityLedger.from_assignment(conf, assignment)
        res_down_all, _, _ = ledger.residuals()
        res_down_excl, _, _ = ledger.residuals(excluding_sid=0)
        assert (res_down_excl >= res_down_all).all()
        assert res_down_excl[0] == pytest.approx(100.0)

    def test_fits_respects_other_sessions(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0", download_mbps=12.0)
        builder.add_agent(name="L1")
        users = [builder.user("720p", "720p", name=f"u{i}") for i in range(4)]
        builder.add_session(users[0], users[1])
        builder.add_session(users[2], users[3])
        conf = builder.build(
            inter_agent_ms=PAIR_D, agent_user_ms=np.full((2, 4), 10.0)
        )
        assignment = Assignment(np.array([0, 0, 0, 0]), np.zeros(0, dtype=np.int64))
        ledger = CapacityLedger.from_assignment(conf, assignment)
        # L0 download = 4 * 5 = 20 > 12: session 1's own usage cannot fit.
        assert not ledger.fits(compute_session_usage(conf, assignment, 1))
        moved = Assignment(np.array([0, 0, 1, 1]), np.zeros(0, dtype=np.int64))
        assert ledger.fits(compute_session_usage(conf, moved, 1))

    def test_unconstrained_flag(self):
        unconstrained = build_pair_conference("720p", "480p", "480p", "720p")
        assert CapacityLedger(unconstrained).unconstrained
        assert not CapacityLedger(capacity_conference()).unconstrained

    def test_unknown_session_raises(self):
        ledger = CapacityLedger(capacity_conference())
        with pytest.raises(ModelError):
            ledger.session_usage(3)

    def test_utilization(self):
        conf = capacity_conference()
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        ledger = CapacityLedger.from_assignment(conf, assignment)
        utilization = ledger.utilization()
        assert 0.0 < utilization["download"][0] <= 1.0
