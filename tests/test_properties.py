"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import box_stats
from repro.core.assignment import Assignment
from repro.core.costs import PiecewiseLinearCost, PowerCost
from repro.core.flows import route_session_flows
from repro.core.markov import hop_probabilities
from repro.core.theory import gibbs_distribution, uap_beta_optimum
from repro.core.traffic import compute_session_usage
from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER
from repro.netsim.geo import GeoPoint, great_circle_km
from repro.netsim.latency import LatencyModel
from repro.netsim.sites import region

REP_NAMES = ("360p", "480p", "720p", "1080p")


@st.composite
def small_conference(draw):
    """One session of 2-4 users over 2-3 agents with random demands."""
    num_agents = draw(st.integers(2, 3))
    num_users = draw(st.integers(2, 4))
    builder = ConferenceBuilder(PAPER_LADDER)
    for i in range(num_agents):
        builder.add_agent(name=f"L{i}")
    user_ids = []
    for _ in range(num_users):
        upstream = draw(st.sampled_from(REP_NAMES))
        downstream = draw(st.sampled_from(REP_NAMES))
        user_ids.append(builder.user(upstream=upstream, downstream=downstream))
    builder.add_session(*user_ids)
    d = np.full((num_agents, num_agents), 20.0)
    np.fill_diagonal(d, 0.0)
    h = np.full((num_agents, num_users), 10.0)
    return builder.build(inter_agent_ms=d, agent_user_ms=h)


@st.composite
def conference_with_assignment(draw):
    conf = draw(small_conference())
    user_agent = draw(
        st.lists(
            st.integers(0, conf.num_agents - 1),
            min_size=conf.num_users,
            max_size=conf.num_users,
        )
    )
    task_agent = draw(
        st.lists(
            st.integers(0, conf.num_agents - 1),
            min_size=conf.theta_sum,
            max_size=conf.theta_sum,
        )
    )
    return conf, Assignment(np.array(user_agent), np.array(task_agent, dtype=np.int64))


class TestTrafficInvariants:
    @given(conference_with_assignment())
    @settings(max_examples=60, deadline=None)
    def test_usage_nonnegative_and_balanced(self, pair):
        conf, assignment = pair
        usage = compute_session_usage(conf, assignment, 0)
        assert (usage.inter_in >= 0).all()
        assert (usage.inter_out >= 0).all()
        assert usage.inter_in.sum() == pytest.approx(usage.inter_out.sum())
        assert (usage.download >= usage.inter_in - 1e-12).all()
        assert (usage.upload >= usage.inter_out - 1e-12).all()

    @given(conference_with_assignment())
    @settings(max_examples=60, deadline=None)
    def test_transcode_count_bounds(self, pair):
        conf, assignment = pair
        usage = compute_session_usage(conf, assignment, 0)
        assert 0 <= usage.transcodes.sum() <= conf.theta_sum

    @given(conference_with_assignment())
    @settings(max_examples=60, deadline=None)
    def test_router_agrees_on_inter_totals_direction(self, pair):
        """Router and mu formula agree within the two documented quirks:
        their difference is bounded by theta_sum * max bitrate."""
        conf, assignment = pair
        mu_usage = compute_session_usage(conf, assignment, 0)
        plan = route_session_flows(conf, assignment, 0)
        bound = conf.theta_sum * PAPER_LADDER.max_bitrate * 2
        assert abs(plan.total_inter_agent_mbps - mu_usage.total_inter_agent_mbps) <= bound

    @given(conference_with_assignment())
    @settings(max_examples=60, deadline=None)
    def test_single_agent_assignment_zero_traffic(self, pair):
        conf, _ = pair
        uniform = Assignment.uniform(conf, 0)
        usage = compute_session_usage(conf, uniform, 0)
        assert usage.total_inter_agent_mbps == 0.0


class TestHopProbabilityInvariants:
    @given(
        st.floats(0.0, 10.0),
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=12),
        st.floats(0.1, 500.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_valid_distribution(self, phi, candidates, beta):
        probabilities = hop_probabilities(phi, np.array(candidates), beta)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities >= 0).all()

    @given(
        st.lists(st.floats(0.0, 5.0), min_size=2, max_size=8, unique=True),
        st.floats(0.5, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_phi(self, candidates, beta):
        probabilities = hop_probabilities(1.0, np.array(candidates), beta)
        order = np.argsort(candidates)
        ordered = probabilities[order]
        assert all(a >= b - 1e-12 for a, b in zip(ordered, ordered[1:]))


class TestGibbsInvariants:
    @given(
        st.lists(st.floats(0.0, 20.0), min_size=2, max_size=20),
        st.floats(0.01, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_eq10_sandwich(self, phis, beta):
        phis = np.array(phis)
        phi_hat = uap_beta_optimum(phis, beta)
        assert phis.min() - math.log(len(phis)) / beta - 1e-9 <= phi_hat
        assert phi_hat <= phis.min() + 1e-9

    @given(
        st.lists(st.floats(0.0, 20.0), min_size=2, max_size=20),
        st.floats(0.01, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_gibbs_expected_phi_at_most_mean(self, phis, beta):
        """The Gibbs distribution never does worse than uniform sampling."""
        phis = np.array(phis)
        gibbs = gibbs_distribution(phis, beta)
        assert float(gibbs @ phis) <= phis.mean() + 1e-9


class TestCostConvexity:
    @given(
        st.floats(1.0, 3.0),
        st.floats(0.0, 50.0),
        st.floats(0.0, 50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_midpoint_convexity(self, exponent, x, y):
        cost = PowerCost(exponent=exponent)
        mid = (x + y) / 2.0
        assert cost(mid) <= 0.5 * (cost(x) + cost(y)) + 1e-6

    @given(
        st.lists(
            st.floats(0.1, 10.0), min_size=1, max_size=4
        ),
        st.lists(st.floats(0.0, 5.0), min_size=2, max_size=5),
        st.floats(0.0, 100.0),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_piecewise_midpoint_convexity(self, gaps, raw_slopes, x, y):
        breakpoints = tuple(np.cumsum(gaps))
        slopes = tuple(sorted(raw_slopes))[: len(breakpoints) + 1]
        if len(slopes) != len(breakpoints) + 1:
            breakpoints = breakpoints[: len(slopes) - 1]
        cost = PiecewiseLinearCost(breakpoints=tuple(breakpoints), slopes=tuple(slopes))
        mid = (x + y) / 2.0
        assert cost(mid) <= 0.5 * (cost(x) + cost(y)) + 1e-6


class TestLatencyInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matrix_properties_for_any_seed(self, seed):
        regions = [region(n) for n in ("Virginia", "Tokyo", "Ireland")]
        d = LatencyModel(seed=seed).inter_agent_matrix(regions)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert (d[~np.eye(3, dtype=bool)] > 0).all()

    @given(
        st.floats(-80.0, 80.0),
        st.floats(-179.0, 179.0),
        st.floats(-80.0, 80.0),
        st.floats(-179.0, 179.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_great_circle_symmetric_nonnegative(self, lat1, lon1, lat2, lon2):
        a, b = GeoPoint(lat1, lon1), GeoPoint(lat2, lon2)
        assert great_circle_km(a, b) >= 0.0
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))


class TestBoxStatsInvariants:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_ordering_invariants(self, values):
        stats = box_stats(values)
        assert stats.minimum <= stats.lower_whisker <= stats.q1 + 1e-9
        assert stats.q1 <= stats.median <= stats.q3
        assert stats.q3 - 1e-9 <= stats.upper_whisker <= stats.maximum


class TestAssignmentInvariants:
    @given(conference_with_assignment())
    @settings(max_examples=50, deadline=None)
    def test_difference_is_metric_like(self, pair):
        conf, assignment = pair
        assert assignment.difference(assignment) == 0
        if conf.num_users:
            moved = assignment.with_user(0, (assignment.agent_of(0) + 1) % conf.num_agents)
            assert assignment.difference(moved) == 1
            assert moved.difference(assignment) == 1
