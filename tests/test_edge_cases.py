"""Edge-case and error-path tests across modules."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import (
    CapacityError,
    ConvergenceError,
    ExperimentError,
    InfeasibleError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
    UnknownEntityError,
)
from repro.model.builder import ConferenceBuilder
from repro.model.conference import merge_conference_users
from repro.model.representation import PAPER_LADDER
from repro.model.user import User
from repro.types import DEFAULT_DMAX_MS, UNASSIGNED
from tests.conftest import PAIR_D, PAIR_H, build_pair_conference


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_type in (
            ModelError,
            UnknownEntityError,
            CapacityError,
            InfeasibleError,
            ConvergenceError,
            SolverError,
            SimulationError,
            ExperimentError,
        ):
            assert issubclass(error_type, ReproError)

    def test_unknown_entity_is_model_error(self):
        assert issubclass(UnknownEntityError, ModelError)

    def test_infeasible_carries_report(self):
        error = InfeasibleError("nope", report={"why": "capacity"})
        assert error.report == {"why": "capacity"}


class TestTypes:
    def test_constants(self):
        assert UNASSIGNED == -1
        assert DEFAULT_DMAX_MS == 400.0


class TestMergeConferenceUsers:
    def test_dedupes_identical(self):
        user = User(uid=0, upstream=PAPER_LADDER["720p"],
                    downstream_default=PAPER_LADDER["480p"])
        merged = merge_conference_users([user, user])
        assert merged == (user,)

    def test_conflicting_duplicates_rejected(self):
        a = User(uid=0, upstream=PAPER_LADDER["720p"],
                 downstream_default=PAPER_LADDER["480p"])
        b = User(uid=0, upstream=PAPER_LADDER["360p"],
                 downstream_default=PAPER_LADDER["480p"])
        with pytest.raises(ModelError):
            merge_conference_users([a, b])

    def test_sorted_output(self):
        users = [
            User(uid=i, upstream=PAPER_LADDER["720p"],
                 downstream_default=PAPER_LADDER["480p"])
            for i in (2, 0, 1)
        ]
        merged = merge_conference_users(users)
        assert [u.uid for u in merged] == [0, 1, 2]


class TestSolverEdgeCases:
    def test_hop_with_no_feasible_candidates_stays(self):
        """Starve the instance: capacities so tight that no neighbour fits
        -> HOP reports no candidates and keeps the state."""
        builder = ConferenceBuilder(PAPER_LADDER)
        # Two agents; only the current placement fits (asymmetric caps).
        builder.add_agent(name="L0", download_mbps=8.0, upload_mbps=8.0)
        builder.add_agent(name="L1", download_mbps=0.0, upload_mbps=0.0)
        u0 = builder.user("480p", "480p", name="u0")
        u1 = builder.user("480p", "480p", name="u1")
        builder.add_session(u0, u1)
        conf = builder.build(inter_agent_ms=PAIR_D, agent_user_ms=PAIR_H)
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.normalized_for(conf))
        both_l0 = Assignment(np.array([0, 0]), np.zeros(0, dtype=np.int64))
        solver = MarkovAssignmentSolver(
            evaluator, both_l0, rng=np.random.default_rng(0)
        )
        result = solver.session_hop(0)
        assert not result.moved
        assert result.num_candidates == 0
        assert solver.assignment == both_l0

    def test_metropolis_seedable_rejection_path(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.normalized_for(conf))
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            config=MarkovConfig(beta=1000.0, hop_rule="metropolis"),
            rng=np.random.default_rng(0),
        )
        solver.run(50)
        # At huge beta the chain settles; rejections dominate.
        assert solver.migrations < 50

    def test_best_assignment_independent_of_current(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.normalized_for(conf))
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            config=MarkovConfig(beta=8.0),
            rng=np.random.default_rng(3),
        )
        solver.run(200)
        best_phi = evaluator.total(solver.best_assignment).phi
        current_phi = evaluator.total(solver.assignment).phi
        assert best_phi <= current_phi + 1e-12


class TestObjectiveWeightEdges:
    def test_single_alpha_modes(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        for alphas in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            weights = ObjectiveWeights.raw(*alphas)
            evaluator = ObjectiveEvaluator(conf, weights)
            phi = evaluator.session_phi(assignment, 0)
            assert phi >= 0.0

    def test_transcode_only_counts_tasks(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.raw(0, 0, 1))
        assert evaluator.session_phi(assignment, 0) == pytest.approx(1.0)


class TestExactSubsets:
    @pytest.fixture()
    def two_session_conf(self):
        builder = ConferenceBuilder(PAPER_LADDER)
        builder.add_agent(name="L0")
        builder.add_agent(name="L1")
        ids = [builder.user("720p", "480p", name=f"u{i}") for i in range(4)]
        builder.add_session(ids[0], ids[1])
        builder.add_session(ids[2], ids[3])
        return builder.build(
            inter_agent_ms=PAIR_D, agent_user_ms=np.full((2, 4), 10.0)
        )

    def test_enumerate_single_session_of_many(self, two_session_conf):
        from repro.core.exact import enumerate_assignments, state_space_size

        conf = two_session_conf
        size = state_space_size(conf, [0])
        assert size < state_space_size(conf)
        count = sum(
            1
            for _ in enumerate_assignments(conf, [0], feasible_only=False)
        )
        assert count == size

    def test_subset_states_leave_other_sessions_unassigned(
        self, two_session_conf
    ):
        from repro.core.exact import enumerate_assignments

        conf = two_session_conf
        for assignment in enumerate_assignments(conf, [0], feasible_only=False):
            assert assignment.agent_of(2) == UNASSIGNED
            assert assignment.agent_of(3) == UNASSIGNED


class TestTheoryEdges:
    def test_simulate_occupancy_requires_positive_hops(self, toy_conf):
        from repro.core.theory import build_state_space, simulate_occupancy

        evaluator = ObjectiveEvaluator(
            toy_conf, ObjectiveWeights.normalized_for(toy_conf)
        )
        space = build_state_space(evaluator)
        with pytest.raises(SolverError):
            simulate_occupancy(
                evaluator, space, space.assignments[0], beta=2.0, hops=0
            )

    def test_state_space_index_of_foreign_state(self, toy_conf):
        from repro.core.theory import build_state_space

        evaluator = ObjectiveEvaluator(
            toy_conf, ObjectiveWeights.normalized_for(toy_conf)
        )
        space = build_state_space(evaluator)
        foreign = Assignment(np.array([-1, -1]), np.array([-1]))
        with pytest.raises(SolverError):
            space.index_of(foreign)
