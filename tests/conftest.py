"""Shared fixtures: canonical small conferences used across the suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: opt-in performance tests (set REPRO_PERF=1 to run)",
    )

from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER
from repro.workloads.motivating import motivating_conference
from repro.workloads.prototype import prototype_conference
from repro.workloads.scenarios import ScenarioParams, scenario_conference
from repro.workloads.toy import toy_conference

#: Hand-checkable delay matrices used by the two-user fixtures.
PAIR_D = np.array([[0.0, 20.0], [20.0, 0.0]])
PAIR_H = np.array([[10.0, 30.0], [25.0, 8.0]])


def build_pair_conference(
    u0_up: str,
    u0_down: str,
    u1_up: str,
    u1_down: str,
    agent_speeds: tuple[float, float] = (1.0, 1.0),
    extra_user: tuple[str, str] | None = None,
):
    """Two agents (L0, L1) and one 2-user (optionally 3-user) session.

    ``u{i}_down`` is the representation user i demands of everyone.  The
    delay matrices are PAIR_D / PAIR_H, extended with a third user column
    (delays 12/28 ms) when ``extra_user`` is given.
    """
    builder = ConferenceBuilder(PAPER_LADDER)
    builder.add_agent(name="L0", speed=agent_speeds[0])
    builder.add_agent(name="L1", speed=agent_speeds[1])
    users = [
        builder.user(upstream=u0_up, downstream=u0_down, name="u0"),
        builder.user(upstream=u1_up, downstream=u1_down, name="u1"),
    ]
    h = PAIR_H
    if extra_user is not None:
        users.append(
            builder.user(upstream=extra_user[0], downstream=extra_user[1], name="u2")
        )
        h = np.hstack([PAIR_H, np.array([[12.0], [28.0]])])
    builder.add_session(*users)
    return builder.build(inter_agent_ms=PAIR_D, agent_user_ms=h)


def build_shared_dest_conference():
    """Three users where u1 and u2 both demand 480p of u0's 720p stream
    and nothing else needs transcoding (exactly 2 pairs, same target rep).

    Achieved with per-source overrides: u1/u2 default-demand what the other
    produces (360p) and override only their demand towards u0.
    """
    builder = ConferenceBuilder(PAPER_LADDER)
    builder.add_agent(name="L0")
    builder.add_agent(name="L1")
    u0 = builder.user(upstream="720p", downstream="360p", name="u0")
    u1 = builder.user(
        upstream="360p",
        downstream="360p",
        name="u1",
        downstream_overrides={u0: "480p"},
    )
    u2 = builder.user(
        upstream="360p",
        downstream="360p",
        name="u2",
        downstream_overrides={u0: "480p"},
    )
    builder.add_session(u0, u1, u2)
    h = np.hstack([PAIR_H, np.array([[12.0], [28.0]])])
    return builder.build(inter_agent_ms=PAIR_D, agent_user_ms=h)


@pytest.fixture(scope="session")
def toy_conf():
    """The Fig. 3 instance (2 users, 2 agents, 1 task, 8 states)."""
    return toy_conference()


@pytest.fixture(scope="session")
def motivating_conf():
    """The Fig. 2 instance (4 users, 4 agents, 3 tasks)."""
    return motivating_conference()


@pytest.fixture(scope="session")
def proto_conf():
    """The Sec. V-A prototype (10 sessions, 6 agents), seed 7."""
    return prototype_conference(seed=7)


@pytest.fixture(scope="session")
def small_scenario_conf():
    """A reduced Internet-scale scenario for faster integration tests."""
    params = ScenarioParams(num_user_sites=64, num_users=30)
    return scenario_conference(seed=11, params=params)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
