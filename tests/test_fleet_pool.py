"""Pool and remote backends: the framed loop-worker protocol, sticky
affinity dispatch, crash/timeout/respawn paths, host quarantine, and
the scheduler's guarantee that every backend — pool workers included —
is reaped even when execution blows up."""

import io
import json
import os
import pickle
import subprocess
import sys
import textwrap
import time
from collections import deque

import pytest

import repro.telemetry as tele
from repro.analysis.report import canonical_results_digest
from repro.errors import SpecError
from repro.fleet.backends import (
    PoolBackend,
    RemoteBackend,
    RunPayload,
    SerialBackend,
    create_backend,
    default_worker_cmd,
    resolve_worker_cmd,
)
from repro.fleet.backends.worker import read_frame, write_frame
from repro.fleet.matrix import expand_matrix
from repro.fleet.orchestrator import FleetOrchestrator
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.spec import (
    AxisSpec,
    ExecutionSpec,
    RunSpec,
    SimulationSpec,
    SweepSpec,
    WorkloadSpec,
)


def golden_spec() -> RunSpec:
    """Same golden sweep as test_fleet_backends: 2 betas x 2 seeds."""
    return RunSpec(
        name="golden",
        workload=WorkloadSpec(kind="prototype", num_sessions=2),
        simulation=SimulationSpec(
            duration_s=8.0, hop_interval_mean_s=4.0, seed=3
        ),
        sweep=SweepSpec(
            replicates=2,
            axes=(AxisSpec(path="solver.beta", values=(200, 400)),),
        ),
    )


def single_spec() -> RunSpec:
    return RunSpec(
        name="one",
        workload=WorkloadSpec(num_sessions=2),
        simulation=SimulationSpec(
            duration_s=6.0, hop_interval_mean_s=3.0, seed=3
        ),
    )


def payloads_for(spec: RunSpec) -> list[RunPayload]:
    return [RunPayload.from_unit(unit) for unit in expand_matrix(spec)]


def _worker_src_env() -> dict[str, str]:
    import repro

    env = dict(os.environ)
    src = str(os.path.dirname(os.path.dirname(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestFraming:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, b"hello")
        write_frame(buffer, b"")
        write_frame(buffer, b"x" * 70_000)  # larger than one pipe buffer
        buffer.seek(0)
        assert read_frame(buffer) == b"hello"
        assert read_frame(buffer) == b""
        assert read_frame(buffer) == b"x" * 70_000
        assert read_frame(buffer) is None  # clean EOF at a boundary

    def test_eof_mid_header_and_mid_body_raise(self):
        with pytest.raises(EOFError, match="frame header"):
            read_frame(io.BytesIO(b"\x00\x00"))
        truncated = io.BytesIO()
        write_frame(truncated, b"abcdef")
        body = truncated.getvalue()[:-2]  # drop the frame's last bytes
        with pytest.raises(EOFError, match="frame body"):
            read_frame(io.BytesIO(body))

    def test_desynced_header_raises(self):
        insane = (1 << 30).to_bytes(4, "big") + b"junk"
        with pytest.raises(EOFError, match="desynced"):
            read_frame(io.BytesIO(insane))


class TestLoopWorkerProtocol:
    def test_loop_worker_serves_many_frames_one_process(self):
        """One ``--loop`` worker process round-trips several payloads
        and exits 0 on clean stdin EOF — the real wire protocol."""
        payloads = payloads_for(golden_spec())[:2]
        proc = subprocess.Popen(
            default_worker_cmd() + ["--loop"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=_worker_src_env(),
        )
        try:
            records = []
            for payload in payloads:
                write_frame(proc.stdin, pickle.dumps(payload.to_wire()))
                frame = read_frame(proc.stdout)
                records.append(json.loads(frame.decode("utf-8")))
            proc.stdin.close()
            assert proc.wait(timeout=60) == 0
        finally:
            proc.kill()
        assert [r["status"] for r in records] == ["ok", "ok"]
        assert [r["run_id"] for r in records] == [
            p.run_id for p in payloads
        ]

    def test_unknown_worker_args_exit_2(self):
        proc = subprocess.run(
            default_worker_cmd() + ["--bogus"],
            input=b"",
            capture_output=True,
            env=_worker_src_env(),
            timeout=120,
        )
        assert proc.returncode == 2
        assert "unknown worker argument" in proc.stderr.decode()


class TestPoolEquivalence:
    def test_pool_bit_identical_to_serial(self, tmp_path):
        spec = golden_spec()
        digests = {}
        for backend, workers in (("serial", 1), ("pool", 2)):
            out = tmp_path / backend
            result = FleetOrchestrator(
                out, workers=workers, backend=backend
            ).run(spec)
            assert result.executed == 4 and result.failed == 0
            digests[backend] = canonical_results_digest(out)
        assert digests["serial"] == digests["pool"]

    def test_remote_localhost_bit_identical_to_serial(self, tmp_path):
        """The remote backend with a localhost inventory (default
        worker_cmd, no ssh) reproduces the serial digest — the CI shape
        for pinning remote equivalence without real hosts."""
        data = golden_spec().to_dict()
        data["execution"]["backend"] = "remote"
        data["execution"]["hosts"] = ["localhost", "127.0.0.1"]
        spec = RunSpec.from_dict(data)
        out = tmp_path / "remote"
        result = FleetOrchestrator(out, workers=1).run(spec)
        assert result.executed == 4 and result.failed == 0
        serial_out = tmp_path / "serial"
        FleetOrchestrator(serial_out, backend="serial").run(golden_spec())
        assert canonical_results_digest(out) == canonical_results_digest(
            serial_out
        )


class TestStickyAffinity:
    def test_same_substrate_payloads_hit_same_worker(self):
        """On one worker, every payload after the first of each affinity
        group is a sticky hit; the counters expose the warm-cache rate."""
        payloads = payloads_for(golden_spec())
        groups = {p.affinity for p in payloads}
        backend = PoolBackend(workers=1)
        try:
            with tele.collect() as collector:
                records = list(backend.execute(payloads))
        finally:
            backend.close()
        assert [r["status"] for r in records] == ["ok"] * len(payloads)
        counters = collector.counters_dict()
        assert counters["pool.units"] == len(payloads)
        assert counters["pool.spawns"] == 1
        assert counters["pool.affinity_hits"] == len(payloads) - len(groups)

    def test_affinity_rides_payload_not_wire(self):
        payload = payloads_for(single_spec())[0]
        assert payload.affinity  # populated from substrate_affinity
        assert "affinity" not in payload.to_wire()


def _crashy_loop_worker(tmp_path, crash_seed: int) -> list[str]:
    """A loop worker that dies mid-protocol for one seed."""
    script = tmp_path / "crashy_loop.py"
    script.write_text(
        textwrap.dedent(
            f"""\
            import json, pickle, sys
            from repro.fleet.backends.worker import read_frame, write_frame
            from repro.fleet.compile import execute_payload

            while True:
                data = read_frame(sys.stdin.buffer)
                if data is None:
                    sys.exit(0)
                payload = pickle.loads(data)
                if payload["seed"] == {crash_seed}:
                    print("synthetic loop crash", file=sys.stderr)
                    sys.exit(3)
                record = execute_payload(
                    payload["run_id"], payload["spec"], payload["axes"],
                    payload["seed"],
                )
                write_frame(
                    sys.stdout.buffer,
                    json.dumps(record, sort_keys=True).encode("utf-8"),
                )
            """
        ),
        encoding="utf-8",
    )
    return [sys.executable, str(script)]


def _sleepy_loop_worker(tmp_path, sleep_seed: int) -> list[str]:
    """A loop worker that hangs for one seed (the budget test)."""
    script = tmp_path / "sleepy_loop.py"
    script.write_text(
        textwrap.dedent(
            f"""\
            import json, pickle, sys, time
            from repro.fleet.backends.worker import read_frame, write_frame
            from repro.fleet.compile import execute_payload

            while True:
                data = read_frame(sys.stdin.buffer)
                if data is None:
                    sys.exit(0)
                payload = pickle.loads(data)
                if payload["seed"] == {sleep_seed}:
                    time.sleep(300)
                record = execute_payload(
                    payload["run_id"], payload["spec"], payload["axes"],
                    payload["seed"],
                )
                write_frame(
                    sys.stdout.buffer,
                    json.dumps(record, sort_keys=True).encode("utf-8"),
                )
            """
        ),
        encoding="utf-8",
    )
    return [sys.executable, str(script)]


class TestPoolFailurePaths:
    def crash_spec(self) -> RunSpec:
        data = single_spec().to_dict()
        data["name"] = "crashy"
        data["sweep"] = {"replicates": 2, "axes": []}
        return RunSpec.from_dict(data)

    def test_worker_crash_respawns_and_rest_completes(self, tmp_path):
        backend = PoolBackend(
            workers=1, worker_cmd=_crashy_loop_worker(tmp_path, crash_seed=4)
        )
        try:
            with tele.collect() as collector:
                records = list(
                    backend.execute(payloads_for(self.crash_spec()))
                )
        finally:
            backend.close()
        by_status = {record["status"]: record for record in records}
        assert set(by_status) == {"ok", "crashed"}
        crashed = by_status["crashed"]
        assert "exit code 3" in crashed["error"]
        assert "synthetic loop crash" in crashed["error"]
        assert crashed["seed"] == 4
        # The dead worker was respawned in place for the healthy unit.
        assert collector.counters_dict()["pool.spawns"] == 2

    def test_hung_worker_times_out_and_rest_completes(self, tmp_path):
        backend = PoolBackend(
            workers=2, worker_cmd=_sleepy_loop_worker(tmp_path, sleep_seed=4)
        )
        started = time.monotonic()
        try:
            # The deadline clock includes worker startup + import, so
            # keep it comfortably above that but far below the hang.
            records = list(
                backend.execute(
                    payloads_for(self.crash_spec()), timeout_s=10.0
                )
            )
        finally:
            backend.close()
        assert time.monotonic() - started < 60
        by_status = {record["status"]: record for record in records}
        assert set(by_status) == {"ok", "timeout"}
        assert "UnitTimeout" in by_status["timeout"]["error"]

    def test_crash_retried_end_to_end_then_errors(self, tmp_path, monkeypatch):
        """Through the orchestrator: the pool crash is retried, gives up
        as a first-class error record, and the healthy unit survives."""
        from repro.fleet import scheduler as scheduler_module

        worker_cmd = _crashy_loop_worker(tmp_path, crash_seed=4)
        monkeypatch.setattr(
            scheduler_module,
            "create_backend",
            lambda kind, workers=1, **_: PoolBackend(
                workers=workers, worker_cmd=worker_cmd
            ),
        )
        out = tmp_path / "out"
        result = FleetOrchestrator(
            out, backend="pool", max_retries=1
        ).run(self.crash_spec())
        assert result.failed == 1
        error = [r for r in result.records if r["status"] == "error"][0]
        assert "gave up after 2 attempt(s)" in error["error"]
        assert error["attempts"] == 2

    def test_close_reaps_worker_processes(self):
        backend = PoolBackend(workers=2)
        with backend:
            records = list(backend.execute(payloads_for(single_spec())))
            assert [r["status"] for r in records] == ["ok"]
            procs = [w.process for w in backend._pool]
            assert all(p.poll() is None for p in procs)
        assert backend._pool == []
        assert all(p.poll() is not None for p in procs)


class TestRemoteQuarantine:
    def _host_keyed_worker(self, tmp_path) -> str:
        """A ``worker_cmd`` template whose behavior keys off ``{host}``:
        the ``bad`` host dies instantly, every other host serves the
        normal loop protocol."""
        script = tmp_path / "host_worker.py"
        script.write_text(
            textwrap.dedent(
                """\
                import json, pickle, sys
                from repro.fleet.backends.worker import read_frame, write_frame

                if sys.argv[1] == "bad":
                    print("host down", file=sys.stderr)
                    sys.exit(7)
                from repro.fleet.compile import execute_payload

                while True:
                    data = read_frame(sys.stdin.buffer)
                    if data is None:
                        sys.exit(0)
                    payload = pickle.loads(data)
                    record = execute_payload(
                        payload["run_id"], payload["spec"], payload["axes"],
                        payload["seed"],
                    )
                    write_frame(
                        sys.stdout.buffer,
                        json.dumps(record, sort_keys=True).encode("utf-8"),
                    )
                """
            ),
            encoding="utf-8",
        )
        return f"{sys.executable} {script} {{host}}"

    def test_crashing_host_is_quarantined_and_units_rerouted(
        self, tmp_path, monkeypatch
    ):
        """Fault injection: one host of two is dead.  Its units crash,
        the host is quarantined after the configured streak, and the
        scheduler's retries land every unit on the good host — the
        fleet ends with zero failures."""
        from repro.fleet import scheduler as scheduler_module

        template = self._host_keyed_worker(tmp_path)

        def make_remote(kind, workers=1, **_):
            return RemoteBackend(
                workers=workers,
                hosts=("good", "bad"),
                worker_cmd=template,
                quarantine_after=1,
            )

        monkeypatch.setattr(
            scheduler_module, "create_backend", make_remote
        )
        out = tmp_path / "out"
        with tele.collect() as collector:
            result = FleetOrchestrator(
                out, backend="pool", workers=1, max_retries=3
            ).run(golden_spec())
        assert result.failed == 0
        assert result.executed == 4
        counters = collector.counters_dict()
        assert counters["remote.quarantines"] == 1
        assert counters["remote.host.bad.crashes"] >= 1
        assert counters["remote.host.good.units"] == 4 + counters.get(
            "scheduler.retries", 0
        ) - counters["remote.host.bad.units"]
        serial_out = tmp_path / "serial"
        FleetOrchestrator(serial_out, backend="serial").run(golden_spec())
        assert canonical_results_digest(out) == canonical_results_digest(
            serial_out
        )

    def test_all_hosts_quarantined_degrades_to_errors_not_hang(
        self, tmp_path
    ):
        """A fully dead cluster must terminate with error records."""
        script = tmp_path / "dead.py"
        script.write_text("import sys; sys.exit(9)\n", encoding="utf-8")
        backend = RemoteBackend(
            workers=1,
            hosts=("h1",),
            worker_cmd=f"{sys.executable} {script}",
            quarantine_after=1,
        )
        payloads = payloads_for(single_spec())
        started = time.monotonic()
        try:
            records = list(backend.execute(payloads))
        finally:
            backend.close()
        assert time.monotonic() - started < 60
        assert [r["status"] for r in records] == ["crashed"]
        # Once quarantined, further dispatch drains to crashes too.
        try:
            drained = list(backend.execute(payloads_for(single_spec())))
        finally:
            backend.close()
        assert [r["status"] for r in drained] == ["crashed"]
        assert "quarantined" in drained[0]["error"]


class TestWorkerCmdTemplate:
    def test_empty_template_is_bundled_loop_worker(self):
        assert resolve_worker_cmd("") == default_worker_cmd() + ["--loop"]

    def test_host_substitution(self):
        argv = resolve_worker_cmd(
            "ssh {host} python -m repro.fleet.backends.worker --loop",
            host="node1",
        )
        assert argv[:2] == ["ssh", "node1"]
        assert argv[-1] == "--loop"

    def test_bad_placeholder_rejected(self):
        with pytest.raises(SpecError, match="worker_cmd template"):
            resolve_worker_cmd("python {port}")

    def test_empty_render_rejected(self):
        with pytest.raises(SpecError, match="empty command"):
            resolve_worker_cmd("{host}", host="")


class TestBackendFactory:
    def test_create_pool_and_remote(self):
        pool = create_backend("pool", workers=2)
        assert isinstance(pool, PoolBackend) and pool.workers == 2
        execution = ExecutionSpec(
            backend="remote", hosts=("a", "b"), quarantine_after=2
        )
        remote = create_backend("remote", workers=1, execution=execution)
        assert isinstance(remote, RemoteBackend)
        assert remote.hosts == ["a", "b"]
        assert remote.quarantine_after == 2

    def test_remote_without_hosts_rejected(self):
        with pytest.raises(SpecError, match="hosts"):
            create_backend("remote")
        with pytest.raises(SpecError, match="hosts"):
            RemoteBackend(hosts=())

    def test_remote_spec_requires_hosts(self):
        with pytest.raises(SpecError, match="hosts"):
            ExecutionSpec(backend="remote")


class TestDispatchStats:
    def test_dispatch_stats_rows_with_dotted_hostnames(self):
        from repro.analysis.report import dispatch_stats

        rows = dict(
            dispatch_stats(
                {
                    "pool.units": 8,
                    "pool.spawns": 2,
                    "pool.affinity_hits": 6,
                    "remote.host.node1.example.com.units": 5,
                    "remote.host.node1.example.com.crashes": 1,
                    "remote.quarantines": 1,
                    "scheduler.retries": 2,
                }
            )
        )
        assert rows["pool units dispatched"] == "8"
        assert rows["pool warm-cache (affinity) hits"] == "6 (75.0%)"
        assert rows["host 'node1.example.com'"] == "5 unit(s), 1 crash(es)"
        assert rows["hosts quarantined"] == "1"
        assert rows["scheduler crash retries"] == "2"

    def test_dispatch_stats_empty_without_dispatch_counters(self):
        from repro.analysis.report import dispatch_stats

        assert dispatch_stats({"sim.samples": 10}) == []

    def test_fleet_report_surfaces_dispatch_stats(self, tmp_path, capsys):
        """``repro fleet report --telemetry`` renders the dispatch table
        for a pool fleet: units, spawns, warm-cache hit rate."""
        from repro.cli import main

        out = tmp_path / "out"
        FleetOrchestrator(
            out, workers=2, backend="pool", telemetry=True
        ).run(golden_spec())
        assert main(["fleet", "report", str(out), "--telemetry"]) == 0
        text = capsys.readouterr().out
        assert "dispatch stats" in text
        assert "pool units dispatched" in text
        assert "pool worker spawns" in text
        assert "pool warm-cache (affinity) hits" in text


class TestStreamProtocol:
    def test_base_execute_stream_consumes_appends(self):
        """The base-class fallback keeps draining payloads appended to
        the live queue mid-stream (how crash retries and halving
        promotions reach batch backends)."""
        payloads = payloads_for(golden_spec())
        source = deque(payloads[:1])
        backend = SerialBackend()
        seen = []
        stream = backend.execute_stream(source)
        for record in stream:
            seen.append(record["run_id"])
            if len(seen) == 1:
                source.extend(payloads[1:3])
        assert seen == [p.run_id for p in payloads[:3]]

    def test_scheduler_closes_backend_on_error(self, tmp_path):
        """Backends are context-managed by the scheduler: a blown-up
        execution must still reap the pool's workers."""
        closed = []

        class ExplodingBackend(SerialBackend):
            def execute_stream(self, source, timeout_s=None):
                raise RuntimeError("boom")
                yield  # pragma: no cover

            def close(self):
                closed.append(True)

        scheduler = FleetScheduler(
            backend_factory=lambda execution: ExplodingBackend()
        )
        units = expand_matrix(single_spec())
        with pytest.raises(RuntimeError, match="boom"):
            scheduler.run(units, {})
        assert closed == [True]
