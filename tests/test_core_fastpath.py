"""Tests for repro.core.fastpath — exact agreement with the reference
implementations on every workload the suite touches."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.delay import session_delay_cost, session_user_delays
from repro.core.fastpath import ConferenceProfile, profile_for
from repro.core.nearest import nearest_assignment
from repro.core.traffic import compute_session_usage
from tests.conftest import build_pair_conference


def random_assignment(conf, rng):
    return Assignment(
        rng.integers(0, conf.num_agents, conf.num_users),
        rng.integers(0, conf.num_agents, conf.theta_sum),
    )


class TestUsageEquivalence:
    def test_matches_reference_on_prototype(self, proto_conf, rng):
        profile = ConferenceProfile(proto_conf)
        for _ in range(5):
            assignment = random_assignment(proto_conf, rng)
            for sid in range(proto_conf.num_sessions):
                ref = compute_session_usage(proto_conf, assignment, sid)
                fast = profile.session_usage(
                    assignment.user_agent, assignment.task_agent, sid
                )
                assert np.allclose(ref.inter_in, fast.inter_in)
                assert np.allclose(ref.inter_out, fast.inter_out)
                assert np.allclose(ref.download, fast.download)
                assert np.allclose(ref.upload, fast.upload)
                assert np.array_equal(ref.transcodes, fast.transcodes)

    def test_matches_on_split_task_groups(self):
        from tests.conftest import build_shared_dest_conference

        conf = build_shared_dest_conference()
        profile = ConferenceProfile(conf)
        for tasks in ([0, 0], [0, 1], [1, 0], [1, 1]):
            assignment = Assignment(np.array([0, 1, 0]), np.array(tasks))
            ref = compute_session_usage(conf, assignment, 0)
            fast = profile.session_usage(
                assignment.user_agent, assignment.task_agent, 0
            )
            assert np.allclose(ref.inter_in, fast.inter_in)
            assert np.array_equal(ref.transcodes, fast.transcodes)


class TestDelayEquivalence:
    def test_matches_reference_on_prototype(self, proto_conf, rng):
        profile = ConferenceProfile(proto_conf)
        for _ in range(5):
            assignment = random_assignment(proto_conf, rng)
            for sid in range(proto_conf.num_sessions):
                ref = session_user_delays(proto_conf, assignment, sid)
                fast = profile.session_user_delays(
                    assignment.user_agent, assignment.task_agent, sid
                )
                assert ref.keys() == fast.keys()
                for uid in ref:
                    assert ref[uid] == pytest.approx(fast[uid])

    def test_delay_cost_and_max_flow(self, proto_conf, rng):
        from repro.core.delay import max_session_flow_delay

        profile = ConferenceProfile(proto_conf)
        assignment = random_assignment(proto_conf, rng)
        for sid in range(0, proto_conf.num_sessions, 3):
            mean, max_flow = profile.session_delays(
                assignment.user_agent, assignment.task_agent, sid
            )
            assert mean == pytest.approx(
                session_delay_cost(proto_conf, assignment, sid)
            )
            assert max_flow == pytest.approx(
                max_session_flow_delay(proto_conf, assignment, sid)
            )


class TestProfileCache:
    def test_profile_for_reuses_instance(self):
        conf = build_pair_conference("720p", "480p", "480p", "720p")
        assert profile_for(conf) is profile_for(conf)

    def test_sigma_table_shape(self, proto_conf):
        profile = ConferenceProfile(proto_conf)
        assert profile.sigma.shape == (proto_conf.theta_sum, proto_conf.num_agents)
        assert (profile.sigma > 0).all()

    def test_demand_out_matches_model(self, proto_conf):
        profile = ConferenceProfile(proto_conf)
        for session in proto_conf.sessions:
            for uid in session.user_ids:
                expected = sum(
                    proto_conf.user(uid).downstream_from(v).bitrate_mbps
                    for v in session.others(uid)
                )
                assert profile.demand_out_mbps[uid] == pytest.approx(expected)
