"""Tests for repro.runtime.events and repro.runtime.metrics."""

import pytest

from repro.errors import SimulationError
from repro.runtime.events import EventQueue
from repro.runtime.metrics import TimeSeriesRecorder


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.schedule(3.0, "c")
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        kinds = [queue.pop()[1].kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop()[1].kind == "first"
        assert queue.pop()[1].kind == "second"

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, "dead")
        queue.schedule(2.0, "alive")
        handle.cancel()
        time_s, event = queue.pop()
        assert event.kind == "alive"
        assert time_s == 2.0

    def test_reschedule_moves_event(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, "wake", payload=7)
        queue.schedule(2.0, "sample")
        queue.reschedule(handle, 3.0)
        kinds = [queue.pop()[1].kind for _ in range(2)]
        assert kinds == ["sample", "wake"]

    def test_now_advances(self):
        queue = EventQueue()
        queue.schedule(5.0, "x")
        assert queue.now == 0.0
        queue.pop()
        assert queue.now == 5.0

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(5.0, "x")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(4.0, "y")

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        handle.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        handle = queue.schedule(2.0, "a")
        queue.schedule(5.0, "b")
        assert queue.peek_time() == 2.0
        handle.cancel()
        assert queue.peek_time() == 5.0

    def test_drained_queue_returns_none(self):
        assert EventQueue().pop() is None

    def test_priority_orders_ties(self):
        """At one instant: faults (-1) before dynamics (0) before
        samples/wakes (1) — the pinned tie order of the simulator."""
        queue = EventQueue()
        queue.schedule(5.0, "sample", priority=1)
        queue.schedule(5.0, "arrival", priority=0)
        queue.schedule(5.0, "fault", priority=-1)
        kinds = [queue.pop()[1].kind for _ in range(3)]
        assert kinds == ["fault", "arrival", "sample"]

    def test_tie_order_independent_of_insertion_order(self):
        """Priority dominates insertion order, so the pop sequence at a
        shared timestamp never depends on who scheduled first."""
        import itertools

        events = [("fault", -1), ("arrival", 0), ("wake", 1)]
        for permutation in itertools.permutations(events):
            queue = EventQueue()
            for kind, priority in permutation:
                queue.schedule(2.0, kind, priority=priority)
            kinds = [queue.pop()[1].kind for _ in range(3)]
            assert kinds == ["fault", "arrival", "wake"], permutation

    def test_fifo_within_one_priority(self):
        queue = EventQueue()
        queue.schedule(1.0, "fault-a", priority=-1)
        queue.schedule(1.0, "fault-b", priority=-1)
        assert queue.pop()[1].kind == "fault-a"
        assert queue.pop()[1].kind == "fault-b"

    def test_reschedule_preserves_priority(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, "fault", priority=-1)
        queue.schedule(3.0, "sample", priority=1)
        moved = queue.reschedule(handle, 3.0)
        assert moved.priority == -1
        assert queue.pop()[1].kind == "fault"


class TestTimeSeriesRecorder:
    def test_round_trip(self):
        recorder = TimeSeriesRecorder()
        recorder.record("traffic", 0.0, 10.0)
        recorder.record("traffic", 1.0, 12.0)
        times, values = recorder.series("traffic")
        assert list(times) == [0.0, 1.0]
        assert list(values) == [10.0, 12.0]

    def test_unknown_series_raises(self):
        with pytest.raises(SimulationError):
            TimeSeriesRecorder().series("nope")

    def test_non_monotonic_time_rejected(self):
        recorder = TimeSeriesRecorder()
        recorder.record("x", 5.0, 1.0)
        with pytest.raises(SimulationError):
            recorder.record("x", 4.0, 2.0)

    def test_last_and_mean_after(self):
        recorder = TimeSeriesRecorder()
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            recorder.record("x", t, v)
        assert recorder.last("x") == 5.0
        assert recorder.mean_after("x", 1.0) == 4.0

    def test_mean_after_past_end_raises(self):
        recorder = TimeSeriesRecorder()
        recorder.record("x", 0.0, 1.0)
        with pytest.raises(SimulationError):
            recorder.mean_after("x", 10.0)

    def test_names_and_contains(self):
        recorder = TimeSeriesRecorder()
        recorder.record("b", 0.0, 0.0)
        recorder.record("a", 0.0, 0.0)
        assert recorder.names == ("a", "b")
        assert "a" in recorder and "c" not in recorder
