"""Tests for repro.core.costs and repro.core.objective."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.costs import (
    LinearCost,
    PiecewiseLinearCost,
    PowerCost,
    uniform_costs,
    validate_cost_vector,
)
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import ModelError
from tests.conftest import build_pair_conference


class TestCostFunctions:
    def test_linear(self):
        assert LinearCost(2.0)(3.0) == 6.0
        assert LinearCost()(3.0) == 3.0

    def test_linear_rejects_negative_rate(self):
        with pytest.raises(ModelError):
            LinearCost(-1.0)

    def test_power_convex_increasing(self):
        cost = PowerCost(coefficient=1.0, exponent=1.5)
        assert cost(4.0) > cost(2.0)
        # midpoint convexity
        assert cost(3.0) <= 0.5 * (cost(2.0) + cost(4.0)) + 1e-12

    def test_power_rejects_concave_exponent(self):
        with pytest.raises(ModelError):
            PowerCost(exponent=0.5)

    def test_piecewise_tiers(self):
        cost = PiecewiseLinearCost(breakpoints=(10.0,), slopes=(1.0, 2.0))
        assert cost(5.0) == 5.0
        assert cost(10.0) == 10.0
        assert cost(15.0) == 10.0 + 2.0 * 5.0

    def test_piecewise_requires_nondecreasing_slopes(self):
        with pytest.raises(ModelError):
            PiecewiseLinearCost(breakpoints=(10.0,), slopes=(2.0, 1.0))

    def test_piecewise_shape_validation(self):
        with pytest.raises(ModelError):
            PiecewiseLinearCost(breakpoints=(10.0,), slopes=(1.0,))
        with pytest.raises(ModelError):
            PiecewiseLinearCost(breakpoints=(10.0, 5.0), slopes=(1.0, 2.0, 3.0))

    def test_uniform_costs_and_validation(self):
        costs = uniform_costs(3)
        validate_cost_vector(costs, 3)
        with pytest.raises(ModelError):
            validate_cost_vector(costs, 4)


class TestObjectiveWeights:
    def test_rejects_all_zero(self):
        with pytest.raises(ModelError):
            ObjectiveWeights(alpha1=0, alpha2=0, alpha3=0)

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            ObjectiveWeights(alpha1=-1)

    def test_raw_has_unit_scales(self):
        weights = ObjectiveWeights.raw()
        assert weights.delay_scale == 1.0
        assert weights.traffic_scale == 1.0

    def test_normalized_scales(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        weights = ObjectiveWeights.normalized_for(conf)
        # Delay scale = mean off-diagonal inter-agent delay (20 ms here).
        assert weights.delay_scale == pytest.approx(20.0)
        # Traffic scale = session source bitrate (5 + 1 = 6 Mbps).
        assert weights.traffic_scale == pytest.approx(6.0)
        assert weights.transcode_scale == pytest.approx(1.0)

    def test_with_alphas_keeps_scales(self):
        conf = build_pair_conference("720p", "360p", "360p", "480p")
        weights = ObjectiveWeights.normalized_for(conf)
        swapped = weights.with_alphas(0.0, 1.0, 1.0)
        assert swapped.alpha1 == 0.0
        assert swapped.delay_scale == weights.delay_scale


class TestObjectiveEvaluator:
    @pytest.fixture()
    def conf(self):
        return build_pair_conference("720p", "360p", "360p", "480p")

    def test_session_cost_components(self, conf):
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.raw())
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        cost = evaluator.session_cost(assignment, 0)
        assert cost.delay_cost_ms == pytest.approx(57.0)  # from delay tests
        assert cost.traffic_cost == pytest.approx(3.5)  # 2.5 + 1.0 crossing
        assert cost.transcode_cost == pytest.approx(1.0)
        assert cost.phi == pytest.approx(57.0 + 3.5 + 1.0)

    def test_alpha_weighting(self, conf):
        weights = ObjectiveWeights.raw(alpha1=2.0, alpha2=0.0, alpha3=0.0)
        evaluator = ObjectiveEvaluator(conf, weights)
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert evaluator.session_phi(assignment, 0) == pytest.approx(114.0)

    def test_total_aggregates(self, conf):
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.raw())
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        total = evaluator.total(assignment)
        assert total.inter_agent_mbps == pytest.approx(3.5)
        assert total.average_delay_ms == pytest.approx(57.0)
        assert total.transcode_tasks == 1.0

    def test_custom_convex_costs_change_g(self, conf):
        quadratic = [PowerCost(exponent=2.0)] * conf.num_agents
        evaluator = ObjectiveEvaluator(
            conf, ObjectiveWeights.raw(), bandwidth_costs=quadratic
        )
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        cost = evaluator.session_cost(assignment, 0)
        # inter_in = [1.0, 2.5] -> 1 + 6.25.
        assert cost.traffic_cost == pytest.approx(7.25)

    def test_with_weights_shares_costs(self, conf):
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.raw())
        other = evaluator.with_weights(ObjectiveWeights.raw(alpha1=0.0))
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        assert other.session_phi(assignment, 0) == pytest.approx(4.5)

    def test_cost_vector_length_validated(self, conf):
        with pytest.raises(ModelError):
            ObjectiveEvaluator(
                conf, ObjectiveWeights.raw(), bandwidth_costs=[LinearCost()]
            )

    def test_total_requires_sessions(self, conf):
        evaluator = ObjectiveEvaluator(conf, ObjectiveWeights.raw())
        assignment = Assignment(np.array([0, 1]), np.array([0]))
        with pytest.raises(ModelError):
            evaluator.total(assignment, sids=[])
