"""Equivalence suite: the struct-of-arrays kernel vs reference & batched.

The arrays kernel (:mod:`repro.core.arrays`) earns its place the same
way the batched one did — by being *provably interchangeable*: same
candidate enumeration, same feasibility masks, bit-for-bit identical
``phi`` values, identical solver trajectories given one rng, and
byte-identical fleet results.  These tests enforce that contract over
randomized conferences (capacity and noise on and off), full solver
trajectories on compiled library scenarios, the greedy / annealing
solvers, end-to-end ``results.jsonl`` output, and the split-flow
fallback used when the latency matrix is not clean enough for the fused
formula.  Trajectory assertions also require non-trivial acceptance
counts, so an accidentally-empty candidate stream can never pass as
"equivalent".
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.annealing import AnnealingConfig, simulated_annealing
from repro.core.arrays import ConferenceArrays, PhiArray, arrays_for
from repro.core.assignment import Assignment
from repro.core.fastpath import profile_for
from repro.core.greedy import greedy_descent
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.search import KERNELS, SearchContext
from repro.errors import SpecError
from repro.fleet.compile import compile_spec
from repro.fleet.library import load_library_spec
from repro.fleet.orchestrator import FleetOrchestrator, expand_matrix
from repro.fleet.spec import (
    RunSpec,
    SimulationSpec,
    SolverSpec,
    TopologySpec,
    WorkloadSpec,
    spec_hash,
)
from repro.netsim.noise import GaussianNoise, QuantizedPerturbation
from repro.workloads.prototype import prototype_conference
from repro.workloads.scenarios import ScenarioParams, scenario_conference

#: Randomized instances: unconstrained, capacity-tight, transcode-heavy.
SCENARIO_GRID = [
    (3, ScenarioParams(num_user_sites=32, num_users=12)),
    (5, ScenarioParams(num_user_sites=64, num_users=30)),
    (
        7,
        ScenarioParams(
            num_user_sites=48,
            num_users=24,
            mean_bandwidth_mbps=250.0,
            mean_transcode_slots=25.0,
        ),
    ),
    (
        11,
        ScenarioParams(
            num_user_sites=64,
            num_users=20,
            max_session_size=4,
            session_locality=0.4,
        ),
    ),
]


def make_evaluator(conference, alphas=(1.0, 1.0, 1.0)):
    a1, a2, a3 = alphas
    return ObjectiveEvaluator(
        conference,
        ObjectiveWeights.normalized_for(
            conference, alpha1=a1, alpha2=a2, alpha3=a3
        ),
    )


def random_assignment(conference, rng):
    """An arbitrary (not necessarily feasible) full assignment."""
    return Assignment(
        rng.integers(0, conference.num_agents, conference.num_users),
        rng.integers(0, conference.num_agents, conference.theta_sum),
    )


def assert_evaluations_identical(reference, arrays, tag=""):
    """Bit-for-bit equality of two :class:`BatchEvaluation` objects."""
    for field in (
        "inter_in",
        "inter_out",
        "download",
        "upload",
        "transcodes",
        "delay_cost_ms",
        "max_flow_ms",
    ):
        lhs, rhs = getattr(reference, field), getattr(arrays, field)
        assert lhs.shape == rhs.shape, f"{tag}: {field} shape"
        assert np.array_equal(lhs, rhs), f"{tag}: {field} values"
    for field in ("kinds", "indices", "old_agents", "new_agents"):
        assert np.array_equal(
            getattr(reference.moves, field), getattr(arrays.moves, field)
        ), f"{tag}: moves.{field}"


class TestKernelEquivalence:
    """The raw batch evaluation, on arbitrary assignments."""

    @pytest.mark.parametrize("seed,params", SCENARIO_GRID)
    def test_random_states_bitwise_equal(self, seed, params):
        conference = scenario_conference(seed=seed, params=params)
        profile = profile_for(conference)
        arrays = arrays_for(profile)
        rng = np.random.default_rng(71)
        for trial in range(25):
            assignment = random_assignment(conference, rng)
            sid = int(rng.integers(conference.num_sessions))
            assert_evaluations_identical(
                profile.evaluate_candidates(assignment, sid),
                arrays.evaluate_candidates(assignment, sid),
                f"seed={seed} trial={trial} sid={sid}",
            )

    def test_split_flow_fallback_bitwise_equal(self):
        """Force the split (non-fused) flow path and re-check equality.

        The fused formula requires a clean latency matrix; layouts built
        with ``flows_fused=False`` must produce the same bits through
        the split direct/transcoded blocks and the runtime permutation.
        """
        conference = scenario_conference(
            seed=7, params=ScenarioParams(num_user_sites=48, num_users=24)
        )
        profile = profile_for(conference)
        fused = arrays_for(profile)
        assert fused._flows_fused, "library matrices should be clean"
        split = ConferenceArrays(profile)
        split._flows_fused = False
        rng = np.random.default_rng(5)
        for trial in range(15):
            assignment = random_assignment(conference, rng)
            sid = int(rng.integers(conference.num_sessions))
            assert_evaluations_identical(
                fused.evaluate_candidates(assignment, sid),
                split.evaluate_candidates(assignment, sid),
                f"trial={trial} sid={sid}",
            )

    def test_arrays_instance_cached_on_profile(self):
        profile = profile_for(prototype_conference())
        assert arrays_for(profile) is arrays_for(profile)


class TestCandidateEquivalence:
    """SearchContext candidates across all three kernels."""

    @pytest.mark.parametrize("seed,params", SCENARIO_GRID)
    def test_candidates_bitwise_equal(self, seed, params):
        conference = scenario_conference(seed=seed, params=params)
        evaluator = make_evaluator(conference, alphas=(5.0, 1.0, 0.2))
        assignment = nearest_assignment(conference)
        contexts = {
            kernel: SearchContext(evaluator, assignment, kernel=kernel)
            for kernel in KERNELS
        }
        for sid in range(conference.num_sessions):
            per_kernel = {
                kernel: context.feasible_candidates(sid)
                for kernel, context in contexts.items()
            }
            reference = per_kernel["reference"]
            for kernel in ("batched", "arrays"):
                candidates = per_kernel[kernel]
                assert len(candidates) == len(reference), f"{kernel}/{sid}"
                for ref, fast in zip(reference, candidates):
                    assert ref.move == fast.move
                    assert ref.phi == fast.phi
                    assert ref.cost.delay_cost_ms == fast.cost.delay_cost_ms
                    assert ref.cost.traffic_cost == fast.cost.traffic_cost
                    assert (
                        ref.cost.transcode_cost == fast.cost.transcode_cost
                    )

    @pytest.mark.parametrize(
        "noise_factory",
        [
            lambda: GaussianNoise(sigma=0.05),
            lambda: QuantizedPerturbation(delta=0.1, levels=3),
        ],
    )
    def test_noise_consumes_rng_identically(self, noise_factory):
        conference = scenario_conference(
            seed=9, params=ScenarioParams(num_user_sites=32, num_users=14)
        )
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        contexts = [
            SearchContext(
                evaluator,
                assignment,
                noise=noise_factory(),
                rng=np.random.default_rng(21),
                kernel=kernel,
            )
            for kernel in ("reference", "arrays")
        ]
        for sid in range(conference.num_sessions):
            reference, arrays = (
                context.feasible_candidates(sid) for context in contexts
            )
            assert [c.phi for c in reference] == [c.phi for c in arrays]


class TestTrajectoryEquivalence:
    """Full solver runs must be identical hop-for-hop, and non-trivial."""

    @staticmethod
    def _trace(solver, hops):
        trace = []
        solver.run(
            hops,
            on_hop=lambda r: trace.append(
                (
                    r.sid,
                    r.moved,
                    r.move,
                    r.phi_before,
                    r.phi_after,
                    r.num_candidates,
                )
            ),
        )
        return trace

    @pytest.mark.parametrize("hop_rule,beta", [("paper", 8.0), ("metropolis", 1.0)])
    @pytest.mark.parametrize("sigma", [0.0, 0.4])
    def test_markov_trajectories_identical(self, hop_rule, beta, sigma):
        conference = scenario_conference(
            seed=5,
            params=ScenarioParams(
                num_user_sites=24,
                num_users=40,
                mean_bandwidth_mbps=5000.0,
                mean_transcode_slots=40.0,
            ),
        )
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        traces = []
        for kernel in KERNELS:
            solver = MarkovAssignmentSolver(
                evaluator,
                assignment,
                config=MarkovConfig(beta=beta, hop_rule=hop_rule, kernel=kernel),
                rng=np.random.default_rng(3),
                noise=GaussianNoise(sigma) if sigma else None,
            )
            traces.append(self._trace(solver, 200))
        accepted = sum(1 for hop in traces[0] if hop[1])
        assert accepted > 3, f"trivial trajectory ({accepted}/200 accepted)"
        assert traces[0] == traces[1] == traces[2]

    @pytest.mark.parametrize("library_name", ["prototype_smoke", "beta_locality"])
    def test_library_scenario_trajectories_identical(self, library_name):
        compiled = compile_spec(
            expand_matrix(load_library_spec(library_name))[0].spec
        )
        assignment = nearest_assignment(compiled.conference)
        traces = []
        for kernel in KERNELS:
            solver = MarkovAssignmentSolver(
                compiled.evaluator,
                assignment,
                config=MarkovConfig(
                    beta=compiled.config.markov.beta, kernel=kernel
                ),
                rng=np.random.default_rng(97),
            )
            traces.append(self._trace(solver, 200))
        assert sum(1 for hop in traces[0] if hop[1]) > 3
        assert traces[0] == traces[1] == traces[2]

    def test_greedy_and_annealing_identical(self):
        conference = scenario_conference(
            seed=5,
            params=ScenarioParams(
                num_user_sites=24,
                num_users=40,
                mean_bandwidth_mbps=5000.0,
                mean_transcode_slots=40.0,
            ),
        )
        evaluator = make_evaluator(conference)
        greedy = [
            greedy_descent(evaluator, nearest_assignment(conference), kernel=k)
            for k in KERNELS
        ]
        assert greedy[0].iterations > 3
        assert len({result.phi for result in greedy}) == 1
        assert len({result.assignment.key() for result in greedy}) == 1
        assert len({result.iterations for result in greedy}) == 1
        annealed = [
            simulated_annealing(
                evaluator,
                nearest_assignment(conference),
                config=AnnealingConfig(hops=300),
                rng=np.random.default_rng(2),
                kernel=k,
            )
            for k in KERNELS
        ]
        assert annealed[0].accepted > 3
        assert len({result.phi for result in annealed}) == 1
        assert len({result.accepted for result in annealed}) == 1
        assert len({result.assignment.key() for result in annealed}) == 1


def _normalized_lines(path):
    """results.jsonl lines minus the only nondeterministic field."""
    lines = []
    for line in path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        record.pop("wall_time_s", None)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


class TestFleetEquivalence:
    """End-to-end: the kernel choice never changes fleet output."""

    @staticmethod
    def _spec(kernel):
        return RunSpec(
            name="kernel-equivalence",
            workload=WorkloadSpec(kind="scenario", num_users=12),
            topology=TopologySpec(num_user_sites=24, latency_seed=77),
            solver=SolverSpec(kernel=kernel),
            simulation=SimulationSpec(
                duration_s=6.0, hop_interval_mean_s=3.0, seed=2
            ),
        )

    def test_results_jsonl_byte_identical_across_kernels(self, tmp_path):
        lines = {}
        for kernel in KERNELS:
            result = FleetOrchestrator(tmp_path / kernel, workers=1).run(
                self._spec(kernel)
            )
            assert result.failed == 0
            lines[kernel] = _normalized_lines(result.results_path)
        assert lines["reference"] == lines["batched"] == lines["arrays"]

    def test_kernel_excluded_from_spec_hash(self):
        hashes = {spec_hash(self._spec(kernel)) for kernel in KERNELS}
        assert len(hashes) == 1

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SpecError, match="solver.kernel"):
            SolverSpec(kernel="vectorized")


class TestPhiArray:
    """The conference-level phi mirror under session dynamics."""

    def test_total_matches_sequential_python_sum(self):
        rng = np.random.default_rng(0)
        phis = {sid: float(phi) for sid, phi in enumerate(rng.normal(size=40))}
        mirror = PhiArray(phis)
        assert mirror.total() == sum(phis.values())

    def test_set_append_remove_track_dict_semantics(self):
        phis = {0: 1.25, 1: 2.5, 2: -0.75}
        mirror = PhiArray(dict(phis))
        mirror.set(1, 9.0)
        phis[1] = 9.0
        assert mirror.total() == sum(phis.values())
        mirror.append(7, 0.5)
        phis[7] = 0.5
        assert mirror.total() == sum(phis.values())
        mirror.remove(0)
        del phis[0]
        assert mirror.total() == sum(phis.values())
        mirror.append(0, 3.25)  # re-arrival lands at the *end*, like a dict
        phis[0] = 3.25
        assert mirror.total() == sum(phis.values())

    def test_empty_total_is_int_zero_like_builtin_sum(self):
        mirror = PhiArray({})
        assert mirror.total() == 0
        assert isinstance(mirror.total(), int)
        mirror.append(4, 1.5)
        mirror.remove(4)
        assert mirror.total() == 0

    def test_search_context_phi_matches_reference_sum(self):
        conference = scenario_conference(
            seed=3, params=ScenarioParams(num_user_sites=32, num_users=12)
        )
        evaluator = make_evaluator(conference)
        assignment = nearest_assignment(conference)
        reference = SearchContext(evaluator, assignment, kernel="reference")
        arrays = SearchContext(evaluator, assignment, kernel="arrays")
        assert reference.total_phi() == arrays.total_phi()
