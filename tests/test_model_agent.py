"""Tests for repro.model.agent."""

import math

import pytest

from repro.errors import ModelError
from repro.model.agent import (
    Agent,
    LinearTranscodingLatency,
    PROTOTYPE_LATENCY_RANGE_MS,
    TranscodingLatencyModel,
)
from repro.model.representation import PAPER_LADDER

R1080 = PAPER_LADDER["1080p"]
R720 = PAPER_LADDER["720p"]
R480 = PAPER_LADDER["480p"]
R360 = PAPER_LADDER["360p"]


class TestLinearTranscodingLatency:
    def test_increasing_in_input_bitrate(self):
        model = LinearTranscodingLatency()
        assert model(R1080, R480) > model(R720, R480)

    def test_increasing_in_output_bitrate(self):
        model = LinearTranscodingLatency()
        assert model(R720, R480) > model(R720, R360)

    def test_speed_divides_latency(self):
        slow = LinearTranscodingLatency(speed=1.0)
        fast = LinearTranscodingLatency(speed=2.0)
        assert fast(R720, R480) == pytest.approx(slow(R720, R480) / 2.0)

    def test_reference_latency_in_prototype_envelope(self):
        """A reference-speed agent's typical transcode lands inside the
        paper's [30, 60] ms envelope."""
        low, high = PROTOTYPE_LATENCY_RANGE_MS
        value = LinearTranscodingLatency().reference_latency_ms()
        assert low <= value <= high

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            LinearTranscodingLatency(base_ms=-1.0)
        with pytest.raises(ModelError):
            LinearTranscodingLatency(speed=0.0)

    def test_satisfies_protocol(self):
        assert isinstance(LinearTranscodingLatency(), TranscodingLatencyModel)


class TestAgent:
    def test_defaults_are_unlimited(self):
        agent = Agent(aid=0)
        assert math.isinf(agent.upload_mbps)
        assert math.isinf(agent.download_mbps)
        assert math.isinf(agent.transcode_slots)

    def test_default_name(self):
        assert Agent(aid=4).name == "a4"

    def test_transcoding_latency_delegates(self):
        agent = Agent(aid=0, latency=LinearTranscodingLatency(speed=2.0))
        expected = LinearTranscodingLatency(speed=2.0)(R720, R480)
        assert agent.transcoding_latency_ms(R720, R480) == expected

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelError):
            Agent(aid=0, upload_mbps=-5.0)

    def test_nan_capacity_rejected(self):
        with pytest.raises(ModelError):
            Agent(aid=0, download_mbps=float("nan"))

    def test_negative_id_rejected(self):
        with pytest.raises(ModelError):
            Agent(aid=-2)

    def test_str_shows_inf(self):
        assert "inf" in str(Agent(aid=0))
        assert "500" in str(Agent(aid=0, upload_mbps=500.0))
