"""Property-based tests of the solvers' post-conditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agrank import AgRankConfig
from repro.core.bootstrap import try_bootstrap
from repro.core.capacity import CapacityLedger
from repro.core.feasibility import is_feasible
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.traffic import compute_session_usage
from repro.model.builder import ConferenceBuilder
from repro.model.representation import PAPER_LADDER

REP_NAMES = ("360p", "480p", "720p", "1080p")


@st.composite
def capacity_conference(draw):
    """Two sessions over three agents with random demands and capacities."""
    builder = ConferenceBuilder(PAPER_LADDER)
    for i in range(3):
        builder.add_agent(
            name=f"L{i}",
            download_mbps=draw(st.floats(20.0, 200.0)),
            upload_mbps=draw(st.floats(20.0, 200.0)),
            transcode_slots=draw(st.integers(0, 8)),
        )
    user_ids = []
    for _ in range(5):
        user_ids.append(
            builder.user(
                upstream=draw(st.sampled_from(REP_NAMES)),
                downstream=draw(st.sampled_from(REP_NAMES)),
            )
        )
    builder.add_session(user_ids[0], user_ids[1], user_ids[2])
    builder.add_session(user_ids[3], user_ids[4])
    num_users = len(user_ids)
    d = np.full((3, 3), 25.0)
    np.fill_diagonal(d, 0.0)
    h = np.array(
        [[draw(st.floats(5.0, 60.0)) for _ in range(num_users)] for _ in range(3)]
    )
    return builder.build(inter_agent_ms=d, agent_user_ms=h)


class TestBootstrapPostconditions:
    @given(capacity_conference())
    @settings(max_examples=25, deadline=None)
    def test_successful_bootstrap_is_capacity_feasible(self, conf):
        """Whenever try_bootstrap reports success, the assignment really
        satisfies constraints (1)-(7)."""
        result = try_bootstrap(
            conf, "agrank", config=AgRankConfig(n_ngbr=2), check_delay=False
        )
        if result.success:
            assert is_feasible(conf, result.assignment, dmax_ms=float("inf"))

    def test_more_candidates_help_admission_in_aggregate(self):
        """Larger AgRank pools admit more conferences *in aggregate* (the
        Fig. 9 shape).

        Per-instance monotonicity is genuinely false: with a larger pool
        the greedy packing may consolidate a session onto a top-ranked
        agent and blow a capacity envelope the spread-out n_ngbr = 1
        assignment satisfied (~0.3 % of random draws on this strategy
        space), so this is a seeded aggregate check rather than a
        hypothesis property.
        """
        import random

        rng = random.Random(1234)

        def draw(lo, hi):
            return rng.uniform(lo, hi)

        def build():
            builder = ConferenceBuilder(PAPER_LADDER)
            for i in range(3):
                builder.add_agent(
                    name=f"L{i}",
                    download_mbps=draw(20.0, 200.0),
                    upload_mbps=draw(20.0, 200.0),
                    transcode_slots=rng.randint(0, 8),
                )
            user_ids = [
                builder.user(
                    upstream=rng.choice(REP_NAMES),
                    downstream=rng.choice(REP_NAMES),
                )
                for _ in range(5)
            ]
            builder.add_session(user_ids[0], user_ids[1], user_ids[2])
            builder.add_session(user_ids[3], user_ids[4])
            d = np.full((3, 3), 25.0)
            np.fill_diagonal(d, 0.0)
            h = np.array(
                [[draw(5.0, 60.0) for _ in range(5)] for _ in range(3)]
            )
            return builder.build(inter_agent_ms=d, agent_user_ms=h)

        admitted = {1: 0, 2: 0, 3: 0}
        for _ in range(60):
            conf = build()
            for n in admitted:
                if try_bootstrap(
                    conf,
                    "agrank",
                    config=AgRankConfig(n_ngbr=n),
                    check_delay=False,
                ).success:
                    admitted[n] += 1
        assert admitted[2] > admitted[1]
        assert admitted[3] > admitted[1]


class TestLedgerConsistency:
    @given(capacity_conference())
    @settings(max_examples=25, deadline=None)
    def test_set_remove_roundtrip_restores_totals(self, conf):
        assignment = nearest_assignment(conf)
        ledger = CapacityLedger(conf)
        before = [a.copy() for a in ledger.totals()]
        usage = compute_session_usage(conf, assignment, 0)
        ledger.set_session(usage)
        ledger.remove_session(0)
        after = ledger.totals()
        for b, a in zip(before, after):
            assert np.allclose(b, a)

    @given(capacity_conference())
    @settings(max_examples=25, deadline=None)
    def test_residuals_plus_usage_equals_capacity(self, conf):
        assignment = nearest_assignment(conf)
        ledger = CapacityLedger.from_assignment(conf, assignment)
        res_down, res_up, res_slots = ledger.residuals()
        down, up, slots = ledger.totals()
        caps_down = np.array([a.download_mbps for a in conf.agents])
        caps_up = np.array([a.upload_mbps for a in conf.agents])
        caps_slots = np.array([float(a.transcode_slots) for a in conf.agents])
        assert np.allclose(res_down + down, caps_down)
        assert np.allclose(res_up + up, caps_up)
        assert np.allclose(res_slots + slots, caps_slots)


class TestMarkovPostconditions:
    @given(st.integers(0, 1000), st.sampled_from([4.0, 16.0, 64.0]))
    @settings(max_examples=10, deadline=None)
    def test_trajectory_stays_feasible(self, seed, beta):
        """Every state along any trajectory satisfies the constraints
        (unconstrained capacities -> structural + delay feasibility)."""
        from tests.conftest import build_pair_conference

        conf = build_pair_conference("720p", "360p", "360p", "480p")
        evaluator = ObjectiveEvaluator(
            conf, ObjectiveWeights.normalized_for(conf)
        )
        solver = MarkovAssignmentSolver(
            evaluator,
            nearest_assignment(conf),
            config=MarkovConfig(beta=beta),
            rng=np.random.default_rng(seed),
        )
        for _ in range(25):
            solver.session_hop(0)
            assert is_feasible(conf, solver.assignment)
