"""Tests for repro.runtime.live and the incremental re-solve kernels.

Two layers are pinned here.  First the new :class:`SearchContext`
entry points — :meth:`best_candidate` and :meth:`greedy_refine` — must
agree bit-for-bit across all three kernels and stay rng-free.  Second
the extracted :class:`LiveConference` engine must reproduce exactly
what a freshly built search context computes for the same active set,
restore state on infeasible resizes, and carry hop counters across
evaluator swaps — the properties both the simulator and the placement
service lean on.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime.live as live_module
from repro.core.markov import MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.search import KERNELS, SearchContext
from repro.errors import InfeasibleError
from repro.runtime.live import LiveConference
from repro.workloads.prototype import prototype_conference
from repro.workloads.scenarios import ScenarioParams, scenario_conference


def make_evaluator(conference, alphas=(1.0, 1.0, 1.0)):
    a1, a2, a3 = alphas
    return ObjectiveEvaluator(
        conference,
        ObjectiveWeights.normalized_for(conference, alpha1=a1, alpha2=a2, alpha3=a3),
    )


def make_context(conference, kernel, sids=None):
    evaluator = make_evaluator(conference)
    sids = list(range(conference.num_sessions)) if sids is None else list(sids)
    assignment = nearest_assignment(conference, sids)
    return SearchContext(
        evaluator, assignment, active_sids=sids, kernel=kernel
    )


class TestBestCandidate:
    def test_kernels_agree_bit_for_bit(self, small_scenario_conf):
        per_kernel = {}
        for kernel in KERNELS:
            context = make_context(small_scenario_conf, kernel)
            per_kernel[kernel] = [
                context.best_candidate(sid)
                for sid in range(small_scenario_conf.num_sessions)
            ]
        reference = per_kernel["reference"]
        for kernel in ("batched", "arrays"):
            for ref, fast in zip(reference, per_kernel[kernel]):
                assert (ref is None) == (fast is None)
                if ref is None:
                    continue
                assert ref.move == fast.move
                assert ref.phi == fast.phi  # exact, not approx
                assert ref.assignment == fast.assignment

    def test_is_the_argmin_of_the_feasible_set(self, small_scenario_conf):
        context = make_context(small_scenario_conf, "arrays")
        for sid in range(small_scenario_conf.num_sessions):
            best = context.best_candidate(sid)
            candidates = context.feasible_candidates(sid)
            assert best is not None
            assert best.phi == min(c.phi for c in candidates)

    def test_repeat_calls_are_identical(self, small_scenario_conf):
        """rng-free: the same live state always names the same move."""
        context = make_context(small_scenario_conf, "arrays")
        first = context.best_candidate(0)
        second = context.best_candidate(0)
        assert first.move == second.move
        assert first.phi == second.phi

    def test_none_when_no_moves_exist(self):
        conf = prototype_conference(
            seed=1, num_sessions=2, regions_override=("Virginia",)
        )
        context = make_context(conf, "arrays")
        assert context.best_candidate(0) is None


class TestGreedyRefine:
    def test_commits_only_strict_improvements(self, small_scenario_conf):
        context = make_context(small_scenario_conf, "arrays")
        before = context.total_phi()
        hops = context.greedy_refine(0, max_hops=8)
        assert 0 <= hops <= 8
        assert context.total_phi() <= before
        if hops < 8:
            # Terminated because no improving move remains.
            best = context.best_candidate(0)
            assert best is None or best.phi >= context.session_cost(0).phi

    def test_zero_budget_is_a_noop(self, small_scenario_conf):
        context = make_context(small_scenario_conf, "arrays")
        before = context.assignment
        assert context.greedy_refine(0, max_hops=0) == 0
        assert context.assignment == before

    def test_kernels_land_on_the_same_state(self, small_scenario_conf):
        finals = []
        for kernel in KERNELS:
            context = make_context(small_scenario_conf, kernel)
            hops = [
                context.greedy_refine(sid, max_hops=4)
                for sid in range(small_scenario_conf.num_sessions)
            ]
            finals.append((hops, context.assignment, context.total_phi()))
        for hops, assignment, phi in finals[1:]:
            assert hops == finals[0][0]
            assert assignment == finals[0][1]
            assert phi == finals[0][2]


class TestLiveConferenceDynamics:
    @pytest.fixture()
    def conf(self):
        params = ScenarioParams(num_user_sites=32, num_users=16)
        return scenario_conference(seed=5, params=params)

    def test_arrive_matches_fresh_context(self, conf):
        """Splicing sessions in one at a time lands on the state a cold
        build over the same active set computes."""
        evaluator = make_evaluator(conf)
        initial = [0]
        live = LiveConference.bootstrap(evaluator, initial)
        for sid in range(1, conf.num_sessions):
            live.arrive(sid)
        sids = list(range(conf.num_sessions))
        cold = SearchContext(
            evaluator, nearest_assignment(conf, sids), active_sids=sids
        )
        assert live.assignment == cold.assignment
        assert live.total_phi() == cold.total_phi()

    def test_depart_releases_capacity(self, conf):
        evaluator = make_evaluator(conf)
        sids = list(range(conf.num_sessions))
        live = LiveConference.bootstrap(evaluator, sids)
        live.depart(1)
        assert 1 not in live.active_sessions
        # A fresh context over the reduced set agrees on phi.
        survivors = [s for s in sids if s != 1]
        cold = SearchContext(
            evaluator,
            live.assignment,
            active_sids=survivors,
        )
        assert live.total_phi() == cold.total_phi()
        # The freed capacity admits the session again.
        live.arrive(1)
        assert 1 in live.active_sessions

    def test_resize_restores_placement_on_infeasible(self, conf, monkeypatch):
        evaluator = make_evaluator(conf)
        live = LiveConference.bootstrap(evaluator, list(range(conf.num_sessions)))
        before_assignment = live.assignment
        before_phi = live.total_phi()

        def explode(sid):
            raise InfeasibleError("no placement fits")

        monkeypatch.setattr(live, "placement_for", explode)
        with pytest.raises(InfeasibleError):
            live.resize(2)
        assert live.assignment == before_assignment
        assert live.total_phi() == before_phi
        assert 2 in live.active_sessions

    def test_resolve_from_scratch_failure_leaves_state_untouched(
        self, conf, monkeypatch
    ):
        evaluator = make_evaluator(conf)
        live = LiveConference.bootstrap(evaluator, [0, 1, 2])
        before_assignment = live.assignment
        before_active = live.active_sessions

        def explode(*args, **kwargs):
            raise InfeasibleError("pool exhausted")

        monkeypatch.setattr(live_module, "bootstrap_assignment", explode)
        with pytest.raises(InfeasibleError):
            live.resolve_from_scratch(extra_sid=3)
        assert live.assignment == before_assignment
        assert live.active_sessions == before_active
        assert 3 not in live.active_sessions

    def test_resolve_from_scratch_admits_extra_sid(self, conf):
        evaluator = make_evaluator(conf)
        live = LiveConference.bootstrap(evaluator, [0, 1])
        live.resolve_from_scratch(extra_sid=3)
        assert live.active_sessions == [0, 1, 3]
        # Equal to a cold bootstrap over the same set.
        cold = nearest_assignment(conf, [0, 1, 3])
        assert live.assignment == cold

    def test_swap_evaluator_carries_hops_and_state(self, conf):
        evaluator = make_evaluator(conf)
        live = LiveConference.bootstrap(
            evaluator,
            list(range(conf.num_sessions)),
            markov=MarkovConfig(beta=400.0),
            rng=np.random.default_rng(9),
        )
        for sid in range(conf.num_sessions):
            live.hop(sid)
        hops_before = live.hops
        assert hops_before == conf.num_sessions
        assignment_before = live.assignment
        swapped = make_evaluator(conf, alphas=(2.0, 1.0, 1.0))
        live.swap_evaluator(swapped)
        assert live.hops == hops_before  # accumulated, not reset
        assert live.assignment == assignment_before
        assert live.evaluator is swapped
        live.hop(0)
        assert live.hops == hops_before + 1

    def test_refine_is_deterministic_and_bounded(self, conf):
        evaluator = make_evaluator(conf)
        results = []
        for _ in range(2):
            live = LiveConference.bootstrap(evaluator, [0])
            for sid in range(1, conf.num_sessions):
                live.arrive(sid)
                live.refine(sid, 2)
            results.append((live.assignment, live.total_phi()))
        assert results[0] == results[1]
        assert LiveConference.bootstrap(evaluator, [0]).refine(0, 0) == 0

    def test_agrank_policy_places_against_live_ledger(self, conf):
        from repro.core.agrank import AgRankConfig

        evaluator = make_evaluator(conf)
        live = LiveConference.bootstrap(
            evaluator,
            [0],
            initial_policy="agrank",
            agrank=AgRankConfig(n_ngbr=2),
        )
        live.arrive(1)
        assert set(live.active_sessions) == {0, 1}
        placed = live.assignment
        for uid in conf.session(1).user_ids:
            assert 0 <= placed.agent_of(uid) < conf.num_agents
