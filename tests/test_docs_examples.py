"""No silent doc rot: every fenced ``repro ...`` command in README.md
and EXPERIMENTS.md must parse against the real argparse tree, and the
EXPERIMENTS.md "Comparing fleets" walkthrough must execute verbatim."""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import _build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = ("README.md", "EXPERIMENTS.md")

_FENCE = re.compile(r"```(?:bash|sh|console)?\n(.*?)```", re.DOTALL)


def fenced_repro_commands(text: str) -> list[str]:
    """``repro ...`` command lines inside fenced code blocks.

    Trailing comments and pipelines are stripped — what is parsed is
    exactly the argv a shell would hand to the ``repro`` entry point.
    """
    commands = []
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            line = line.split("#", 1)[0].split("|", 1)[0].strip()
            if line.startswith("repro "):
                commands.append(line)
    return commands


def _all_documented_commands() -> list[tuple[str, str]]:
    found = []
    for doc in DOCS:
        text = (REPO_ROOT / doc).read_text(encoding="utf-8")
        found.extend((doc, command) for command in fenced_repro_commands(text))
    return found


COMMANDS = _all_documented_commands()


def test_docs_contain_fenced_repro_commands():
    assert len(COMMANDS) >= 10  # the quickstart + walkthrough corpus
    assert any("fleet report" in command for _doc, command in COMMANDS)


@pytest.mark.parametrize(
    "doc,command", COMMANDS, ids=[f"{d}:{c}" for d, c in COMMANDS]
)
def test_documented_command_parses(doc, command):
    argv = shlex.split(command)[1:]
    parser = _build_parser()
    try:
        parser.parse_args(argv)
    except SystemExit as error:  # argparse rejected the documented usage
        pytest.fail(
            f"{doc} documents {command!r}, which the CLI rejects "
            f"(exit {error.code}); fix the doc or the parser"
        )


class TestChurnSweepWalkthrough:
    """The EXPERIMENTS.md churn-sweep commands actually execute."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Churn sweeps", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 4, commands
        return commands

    def test_walkthrough_executes(self, walkthrough, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"
        trace_text = (tmp_path / "runs/churn.csv").read_text(encoding="utf-8")
        assert trace_text.startswith("time_s,event,sid\n")
        results = (tmp_path / "runs/churn-sweep/results.jsonl").read_text(
            encoding="utf-8"
        )
        records = [json.loads(line) for line in results.splitlines()]
        assert len(records) == 4
        assert all(record["status"] == "ok" for record in records)
        assert {r["axes"]["churn.trace.rate_per_s"] for r in records} == {
            0.05,
            0.2,
        }


class TestChaosSweepWalkthrough:
    """The EXPERIMENTS.md chaos-sweep commands execute, and the claims
    they make — schema-v4 resilience metrics, per-replicate storms, a
    resilience summary in the report — hold on the actual output."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Chaos sweeps", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 3, commands
        return commands

    def test_walkthrough_executes(
        self, walkthrough, tmp_path, monkeypatch, capsys
    ):
        import json

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"

        def records(name):
            path = tmp_path / "runs" / name / "results.jsonl"
            return [
                json.loads(line)
                for line in path.read_text(encoding="utf-8").splitlines()
            ]

        outage = records("outage")
        assert len(outage) == 2  # the spec's 2 seed replicates
        for record in outage:
            assert record["status"] == "ok"
            assert record["schema_version"] == 4
            assert record["faults_injected"] == 2
            assert "recovery_mean_s" in record and "sla_violation_s" in record

        chaos = records("chaos")
        assert len(chaos) == 4  # 2 rates x 2 replicates
        assert {r["axes"]["faults.chaos.rate_per_s"] for r in chaos} == {
            0.05,
            0.2,
        }
        assert len({r["run_id"] for r in chaos}) == 4
        # The report (last command, on stdout) appends the resilience
        # summary table next to the standard fleet summary.
        captured = capsys.readouterr()
        assert "resilience summary" in captured.out
        assert "faults_injected" in captured.out


class TestBudgetedSweepWalkthrough:
    """The EXPERIMENTS.md budgeted-sweep commands actually execute, and
    the pruning/backed-equivalence claims they make hold."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Budgeted sweeps", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 4, commands
        return commands

    def test_walkthrough_executes(self, walkthrough, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"

        def records(name):
            path = tmp_path / "runs" / name / "results.jsonl"
            return [
                json.loads(line)
                for line in path.read_text(encoding="utf-8").splitlines()
            ]

        full, halved = records("full"), records("halved")
        assert len(full) == len(halved) == 8
        assert [r["status"] for r in full] == ["ok"] * 8
        statuses = [r["status"] for r in halved]
        assert statuses.count("ok") == 6 and statuses.count("pruned") == 2
        # Surviving points' records are bit-identical to the full run.
        by_id = {r["run_id"]: r for r in full}
        for record in halved:
            if record["status"] != "ok":
                assert record["rung"] == 0
                continue
            strip = lambda r: {
                k: v for k, v in r.items() if k != "wall_time_s"
            }
            assert strip(record) == strip(by_id[record["run_id"]])
        # The subprocess-backend run produced a clean record too.
        sub = records("sub")
        assert [r["status"] for r in sub] == ["ok"]


class TestClusterSweepWalkthrough:
    """The EXPERIMENTS.md cluster-sweep commands actually execute, and
    the pool/remote/ASHA/budget claims the section makes hold."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Cluster sweeps", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 5, commands
        return commands

    def test_walkthrough_executes(
        self, walkthrough, tmp_path, monkeypatch, capsys
    ):
        import json

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"

        def records(name):
            path = tmp_path / "runs" / name / "results.jsonl"
            return [
                json.loads(line)
                for line in path.read_text(encoding="utf-8").splitlines()
            ]

        pooled = records("pooled")
        assert len(pooled) == 8
        assert [r["status"] for r in pooled] == ["ok"] * 8
        # The remote run (localhost inventory) produced a clean record.
        remote = records("remote")
        assert [r["status"] for r in remote] == ["ok"]
        # ASHA prunes the same units as the synchronous plan would, and
        # its surviving records are bit-identical to the full pooled run.
        asha = records("asha")
        assert len(asha) == 8
        statuses = [r["status"] for r in asha]
        assert statuses.count("ok") == 6 and statuses.count("pruned") == 2
        by_id = {r["run_id"]: r for r in pooled}
        # The pooled run embeds telemetry (`--telemetry`); drop the same
        # volatile fields canonical_results_digest does.
        volatile = {"wall_time_s", "counters", "timings", "attempts"}
        strip = lambda r: {k: v for k, v in r.items() if k not in volatile}
        for record in asha:
            if record["status"] == "ok":
                assert strip(record) == strip(by_id[record["run_id"]])
        # The starved sweep dispatched nothing: first-class unscheduled
        # records, counted apart from failures.
        starved = records("starved")
        assert [r["status"] for r in starved] == ["unscheduled"] * 8
        assert all(r["schema_version"] == 6 for r in starved)
        assert all("FleetBudget" in r["error"] for r in starved)
        # The report renders the dispatch-stats table for the pool run.
        out = capsys.readouterr().out
        assert "dispatch stats" in out
        assert "pool units dispatched" in out
        assert "pool warm-cache (affinity) hits" in out


class TestProfilingSweepWalkthrough:
    """The EXPERIMENTS.md profiling commands execute and the telemetry
    artifacts they describe exist and parse."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Profiling a sweep", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 2, commands
        return commands

    def test_walkthrough_executes(
        self, walkthrough, tmp_path, monkeypatch, capsys
    ):
        from repro.telemetry import load_run_telemetry, span_names

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"
        captured = capsys.readouterr()
        # The live ticker lives on stderr; the report is on stdout.
        assert "fleet 4/4" in captured.err
        assert "phase-time breakdown" in captured.out
        telemetry = load_run_telemetry(tmp_path / "runs/profiled")
        assert len(telemetry.units) == 4 and telemetry.fleet is not None
        unit_names = set().union(
            *(span_names(r) for r in telemetry.units.values())
        )
        for name in (
            "unit.compile",
            "unit.solve",
            "unit.solve/sim.bootstrap",
            "unit.solve/solver.hop_batch",
        ):
            assert name in unit_names, unit_names
        assert "fleet.sweep" in span_names(telemetry.fleet)


class TestScaleSweepWalkthrough:
    """The EXPERIMENTS.md scale-sweep commands execute, and the claim
    they make — per-scale records identical across kernels except for
    the kernel axis, the unit id it is folded into, and wall time —
    holds on the actual output."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Scale sweeps", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 2, commands
        return commands

    def test_walkthrough_executes(self, walkthrough, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"
        results = (tmp_path / "runs/scale/results.jsonl").read_text(
            encoding="utf-8"
        )
        records = [json.loads(line) for line in results.splitlines()]
        assert len(records) == 4  # 2 sizes x 2 kernels
        assert all(record["status"] == "ok" for record in records)

        def essence(record):
            stripped = {
                k: v
                for k, v in record.items()
                if k not in ("wall_time_s", "run_id", "axes")
            }
            stripped["axes"] = {
                k: v
                for k, v in record["axes"].items()
                if k != "solver.kernel"
            }
            return stripped

        by_scale_kernel = {
            (
                record["axes"]["workload.num_users"],
                record["axes"]["solver.kernel"],
            ): record
            for record in records
        }
        for scale in (40, 80):
            batched = by_scale_kernel[(scale, "batched")]
            arrays = by_scale_kernel[(scale, "arrays")]
            assert essence(batched) == essence(arrays)
            # The kernel axis is folded into the unit id (distinct
            # cache slots), even though it is outside run identity.
            assert batched["run_id"] != arrays["run_id"]


class TestComparingFleetsWalkthrough:
    """The EXPERIMENTS.md walkthrough commands actually execute."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Comparing fleets", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 3, commands
        return commands

    def test_walkthrough_executes(self, walkthrough, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"
        assert (tmp_path / "runs/base/results.jsonl").exists()
        assert (tmp_path / "runs/beta200/results.jsonl").exists()
        csv_text = (tmp_path / "runs/cmp.csv").read_text(encoding="utf-8")
        assert "solver.beta,400,200" in csv_text
        html_text = (tmp_path / "runs/cmp.html").read_text(encoding="utf-8")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<svg" in html_text and "polyline" in html_text


class TestServeWalkthrough:
    """The EXPERIMENTS.md serve-and-drive commands execute, and the
    byte-identity claim the section makes holds: the in-process and
    HTTP replays of one trace write identical decision logs."""

    @pytest.fixture(scope="class")
    def walkthrough(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        section = text.split("## Serve and drive", 1)[1]
        section = section.split("\n## ", 1)[0]
        commands = fenced_repro_commands(section)
        assert len(commands) == 3, commands
        return commands

    def test_walkthrough_executes(self, walkthrough, tmp_path, monkeypatch):
        import json

        monkeypatch.chdir(tmp_path)
        for command in walkthrough:
            argv = shlex.split(command)[1:]
            assert main(argv) == 0, f"walkthrough command failed: {command}"
        inproc = (tmp_path / "runs/decisions.jsonl").read_bytes()
        http = (tmp_path / "runs/decisions-http.jsonl").read_bytes()
        assert inproc and inproc == http
        records = [json.loads(line) for line in inproc.splitlines()]
        assert all(r["status"] == "ok" for r in records)
        assert all("latency_ms" not in r for r in records)
        assert any("placement" in r for r in records)
        metrics_lines = (
            (tmp_path / "runs/service.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        )
        assert metrics_lines  # --flush-every 2 over 6 decisions
        assert json.loads(metrics_lines[-1])["errors"] == 0
