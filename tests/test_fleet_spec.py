"""Tests for the fleet spec layer: round-trips and fail-fast validation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.fleet.spec import (
    AxisSpec,
    ChurnSpec,
    ChurnWave,
    DemandSpec,
    NoiseSpec,
    RunSpec,
    SimulationSpec,
    SolverSpec,
    SweepSpec,
    TopologySpec,
    WorkloadSpec,
    dump_spec,
    load_spec,
    spec_hash,
)


@st.composite
def run_specs(draw):
    """Random valid RunSpecs spanning both workload kinds."""
    kind = draw(st.sampled_from(["prototype", "scenario"]))
    workload = WorkloadSpec(
        kind=kind,
        num_sessions=draw(st.integers(1, 12)),
        num_users=draw(st.integers(4, 60)),
        min_session_size=2,
        max_session_size=draw(st.integers(2, 5)),
        session_locality=draw(
            st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
        ),
        mean_bandwidth_mbps=math.inf
        if kind == "prototype"
        else draw(st.sampled_from([math.inf, 500.0, 1200.0])),
        demand=DemandSpec(
            preferred=draw(st.sampled_from(["480p", "720p", "1080p"])),
            preferred_share=draw(
                st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
            ),
            downgrade_only=draw(st.booleans()),
        ),
    )
    topology = TopologySpec(
        regions=draw(
            st.sampled_from(
                [(), ("Virginia", "Tokyo"), ("Oregon", "Ireland", "Singapore")]
            )
        ),
        num_user_sites=256 if kind == "prototype" else draw(st.integers(1, 300)),
        latency_seed=draw(st.integers(0, 2**31 - 1)),
    )
    solver = SolverSpec(
        policy=draw(st.sampled_from(["nearest", "agrank"])),
        beta=draw(st.floats(1.0, 1000.0, allow_nan=False, allow_infinity=False)),
        hop_rule=draw(st.sampled_from(["paper", "metropolis"])),
        n_ngbr=draw(st.integers(1, 4)),
    )
    noise = NoiseSpec(
        kind=draw(st.sampled_from(["none", "gaussian", "quantized"])),
        sigma=draw(st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False)),
        delta=draw(st.floats(0.0, 2.0, allow_nan=False, allow_infinity=False)),
        levels=draw(st.integers(1, 8)),
    )
    simulation = SimulationSpec(
        duration_s=draw(
            st.floats(1.0, 500.0, allow_nan=False, allow_infinity=False)
        ),
        seed=draw(st.integers(0, 10_000)),
    )
    sweep = SweepSpec(
        replicates=draw(st.integers(1, 4)),
        axes=draw(
            st.sampled_from(
                [
                    (),
                    (AxisSpec(path="solver.beta", values=(200, 400)),),
                    (
                        AxisSpec(path="solver.beta", values=(200.0, 400.0)),
                        AxisSpec(
                            path="workload.session_locality", values=(0.5, 0.9)
                        ),
                    ),
                ]
            )
        ),
    )
    return RunSpec(
        name=draw(st.sampled_from(["alpha", "run-1", "big sweep"])),
        description=draw(st.sampled_from(["", "a spec"])),
        workload=workload,
        topology=topology,
        solver=solver,
        noise=noise,
        churn=draw(
            st.sampled_from(
                [
                    ChurnSpec(),
                    ChurnSpec(initial=1, waves=(ChurnWave(time_s=10, arrive=1),)),
                ]
            )
        ),
        simulation=simulation,
        sweep=sweep,
    )


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(spec=run_specs())
    def test_yaml_round_trip(self, spec):
        assert RunSpec.from_yaml(spec.to_yaml()) == spec

    @settings(max_examples=40, deadline=None)
    @given(spec=run_specs())
    def test_json_round_trip(self, spec):
        assert RunSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=20, deadline=None)
    @given(spec=run_specs())
    def test_hash_stable_across_round_trip(self, spec):
        assert spec_hash(RunSpec.from_yaml(spec.to_yaml())) == spec_hash(spec)

    def test_infinity_survives_json(self):
        spec = RunSpec(
            name="inf",
            workload=WorkloadSpec(kind="scenario", mean_bandwidth_mbps=math.inf),
        )
        back = RunSpec.from_json(spec.to_json())
        assert math.isinf(back.workload.mean_bandwidth_mbps)

    def test_file_io_yaml_and_json(self, tmp_path):
        spec = RunSpec(name="file-io")
        for suffix in (".yaml", ".json"):
            path = tmp_path / f"spec{suffix}"
            dump_spec(spec, path)
            assert load_spec(path) == spec

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            load_spec(tmp_path / "nope.yaml")

    def test_constructor_scalars_normalized(self):
        # ints where floats are declared compare equal after parsing
        a = RunSpec(name="n", solver=SolverSpec(beta=200))
        b = RunSpec.from_yaml(a.to_yaml())
        assert a == b and isinstance(b.solver.beta, float)


class TestValidation:
    def test_unknown_region_rejected(self):
        with pytest.raises(SpecError, match="unknown cloud region"):
            TopologySpec(regions=("Atlantis",))

    def test_unknown_region_keeps_cause_chain(self):
        """The region check narrows to ModelError and chains the lookup
        failure (``from error``, not ``from None``), so the diagnostic
        shows *why* the catalog rejected the name."""
        from repro.errors import ModelError

        with pytest.raises(SpecError) as excinfo:
            TopologySpec(regions=("Atlantis",))
        assert isinstance(excinfo.value.__cause__, ModelError)
        assert "Atlantis" in str(excinfo.value.__cause__)

    def test_region_check_propagates_programming_errors(self, monkeypatch):
        """A non-ModelError failure inside region() is a bug, not an
        unknown region — it must surface as itself, never be rewritten
        into the 'unknown cloud region' diagnostic."""
        import repro.fleet.spec as spec_module

        def boom(name):
            raise RuntimeError("catalog corrupted")

        monkeypatch.setattr(spec_module, "region", boom)
        with pytest.raises(RuntimeError, match="catalog corrupted"):
            TopologySpec(regions=("Frankfurt",))

    def test_unknown_user_site_rejected(self):
        with pytest.raises(SpecError, match="unknown user site"):
            TopologySpec(user_sites=("Gotham City",))

    def test_negative_horizon_rejected(self):
        with pytest.raises(SpecError, match="duration_s must be positive"):
            SimulationSpec(duration_s=-10.0)

    def test_zero_sample_interval_rejected(self):
        with pytest.raises(SpecError, match="sample_interval_s"):
            SimulationSpec(sample_interval_s=0.0)

    def test_unknown_solver_policy_rejected(self):
        with pytest.raises(SpecError, match="solver.policy"):
            SolverSpec(policy="simulated-annealing")

    def test_unknown_hop_rule_rejected(self):
        with pytest.raises(SpecError, match="hop_rule"):
            SolverSpec(hop_rule="greedy")

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(SpecError, match="workload.kind"):
            WorkloadSpec(kind="planet-scale")

    def test_unknown_noise_kind_rejected(self):
        with pytest.raises(SpecError, match="noise.kind"):
            NoiseSpec(kind="cauchy")

    def test_bad_preferred_share_rejected(self):
        with pytest.raises(SpecError, match="preferred_share"):
            DemandSpec(preferred_share=1.5)

    def test_unknown_representation_rejected(self):
        with pytest.raises(SpecError, match="ladder"):
            DemandSpec(preferred="4K")

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            RunSpec.from_yaml("name: x\nsolvr: {}\n")

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(SpecError, match="spec.solver"):
            RunSpec.from_yaml("name: x\nsolver: {betta: 100}\n")

    def test_non_numeric_beta_rejected(self):
        with pytest.raises(SpecError, match="expected a number"):
            RunSpec.from_yaml("name: x\nsolver: {beta: fast}\n")

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SpecError, match="not a registered experiment"):
            RunSpec(name="x", artifact="fig99")

    def test_known_artifact_accepted(self):
        assert RunSpec(name="x", artifact="fig4").artifact == "fig4"

    def test_prototype_with_capacity_rejected(self):
        with pytest.raises(SpecError, match="capacity envelopes"):
            RunSpec(
                name="x",
                workload=WorkloadSpec(kind="prototype", mean_bandwidth_mbps=500.0),
            )

    def test_prototype_with_site_pool_rejected(self):
        with pytest.raises(SpecError, match="scenario workloads only"):
            RunSpec(
                name="x",
                workload=WorkloadSpec(kind="prototype"),
                topology=TopologySpec(num_user_sites=50),
            )

    def test_scenario_with_user_sites_rejected(self):
        with pytest.raises(SpecError, match="prototype workloads only"):
            RunSpec(
                name="x",
                workload=WorkloadSpec(kind="scenario"),
                topology=TopologySpec(user_sites=("Berkeley, CA",)),
            )

    def test_bad_sweep_path_rejected(self):
        with pytest.raises(SpecError, match="does not resolve"):
            RunSpec(
                name="x",
                sweep=SweepSpec(
                    axes=(AxisSpec(path="solver.betamax", values=(1,)),)
                ),
            )

    def test_sweep_outside_sections_rejected(self):
        with pytest.raises(SpecError, match="must start with"):
            RunSpec(
                name="x", sweep=SweepSpec(axes=(AxisSpec(path="name", values=(1,)),))
            )

    def test_seed_axis_reserved(self):
        with pytest.raises(SpecError, match="reserved"):
            RunSpec(
                name="x",
                sweep=SweepSpec(
                    axes=(AxisSpec(path="simulation.seed", values=(1, 2)),)
                ),
            )

    def test_section_axis_rejected(self):
        with pytest.raises(SpecError, match="scalar field"):
            RunSpec(
                name="x",
                sweep=SweepSpec(
                    axes=(AxisSpec(path="workload.demand", values=(1,)),)
                ),
            )

    def test_duplicate_axes_rejected(self):
        with pytest.raises(SpecError, match="repeat"):
            SweepSpec(
                axes=(
                    AxisSpec(path="solver.beta", values=(1,)),
                    AxisSpec(path="solver.beta", values=(2,)),
                )
            )

    def test_empty_axis_values_rejected(self):
        with pytest.raises(SpecError, match="at least one value"):
            AxisSpec(path="solver.beta", values=())

    def test_churn_waves_need_reserve(self):
        with pytest.raises(SpecError, match="reserve pool"):
            ChurnSpec(waves=(ChurnWave(time_s=5.0, arrive=1),))

    def test_negative_wave_time_rejected(self):
        with pytest.raises(SpecError, match="wave time"):
            ChurnWave(time_s=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError, match="name"):
            RunSpec(name="")

    def test_missing_name_rejected_as_spec_error(self):
        with pytest.raises(SpecError, match="missing required field"):
            RunSpec.from_yaml("workload: {kind: prototype}\n")

    def test_empty_document_rejected_as_spec_error(self):
        with pytest.raises(SpecError, match="missing required field"):
            RunSpec.from_yaml("")

    def test_nan_rejected(self):
        with pytest.raises(SpecError, match="NaN"):
            RunSpec.from_yaml("name: x\nsimulation: {duration_s: .nan}\n")
        with pytest.raises(SpecError, match="NaN"):
            SimulationSpec(duration_s=float("nan"))
        with pytest.raises(SpecError, match="NaN"):
            RunSpec.from_yaml('name: x\nsolver: {beta: "nan"}\n')

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(SpecError, match="repeats a value"):
            AxisSpec(path="solver.beta", values=(200, 200))


class TestOverridesAndHash:
    def test_with_overrides_changes_field_and_drops_sweep(self):
        spec = RunSpec(
            name="x",
            sweep=SweepSpec(axes=(AxisSpec(path="solver.beta", values=(200,)),)),
        )
        resolved = spec.with_overrides({"solver.beta": 200, "simulation.seed": 9})
        assert resolved.solver.beta == 200.0
        assert resolved.simulation.seed == 9
        assert not resolved.sweep.axes

    def test_override_bad_path_rejected(self):
        with pytest.raises(SpecError, match="no such field"):
            RunSpec(name="x").with_overrides({"solver.nope": 1})

    def test_hash_differs_on_change(self):
        base = RunSpec(name="x")
        assert spec_hash(base) != spec_hash(
            base.with_overrides({"solver.beta": 123})
        )
