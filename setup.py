"""Packaging for the repro library and the ``repro`` console command.

Offline boxes without the ``wheel`` package can install with
``python setup.py develop --no-deps`` instead of ``pip install -e .``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_VERSION = re.search(
    r'__version__ = "([^"]+)"',
    (Path(__file__).parent / "src" / "repro" / "_version.py").read_text(
        encoding="utf-8"
    ),
).group(1)

setup(
    name="repro-uap",
    version=_VERSION,
    description=(
        "Reproduction of 'Cost-Effective Low-Delay Cloud Video "
        "Conferencing' (Hajiesmaili et al., ICDCS 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.fleet.library": ["*.yaml"]},
    include_package_data=True,
    python_requires=">=3.10",
    install_requires=["numpy", "PyYAML"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
