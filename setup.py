"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable builds; offline
boxes that lack it can run ``python setup.py develop --no-deps`` instead.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
