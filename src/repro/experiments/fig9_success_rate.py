"""Fig. 9 — bootstrap success rate under capacity limits.

Panel (a) sweeps the mean per-agent bandwidth capacity (transcoding
unlimited); panel (b) sweeps the mean transcoding capacity (bandwidth
unlimited).  A scenario counts as successful when every session can be
admitted — all users subscribed and capacities respected (the delay cap is
not part of this notion).  Policies: Nrst (resource-oblivious),
AgRank#2 (n_ngbr=2) and AgRank#3 (n_ngbr=3).

Paper shape: success increases with capacity; AgRank#3 >= AgRank#2 >>
Nrst; AgRank#3 reaches 100 % around 750 Mbps while Nrst admits only a few
percent of scenarios there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.tables import render_table
from repro.core.agrank import AgRankConfig
from repro.core.bootstrap import try_bootstrap
from repro.experiments.common import result_record, scenarios_from_env
from repro.workloads.scenarios import ScenarioParams, scenario_conference

#: Sweep grids.  The paper sweeps 400-900 Mbps and 20-60 slots; our
#: synthetic workload carries a somewhat heavier per-agent load, so the
#: grids extend upward to capture the full S-curve (EXPERIMENTS.md).
BANDWIDTH_GRID_MBPS: tuple[float, ...] = (400, 500, 600, 700, 750, 800, 900, 1000, 1100)
TRANSCODE_GRID: tuple[float, ...] = (20, 30, 40, 50, 60, 70)

#: ``(label, policy, n_ngbr)`` rows of both panels.
POLICY_VARIANTS: tuple[tuple[str, str, int], ...] = (
    ("Nrst", "nearest", 1),
    ("AgRank#2", "agrank", 2),
    ("AgRank#3", "agrank", 3),
)


def _attempt(conference, policy: str, n_ngbr: int) -> bool:
    if policy == "nearest":
        result = try_bootstrap(conference, "nearest", check_delay=False)
    else:
        result = try_bootstrap(
            conference,
            "agrank",
            config=AgRankConfig(n_ngbr=n_ngbr),
            check_delay=False,
        )
    return result.success


@dataclass
class Fig9Result:
    num_scenarios: int
    #: panel -> capacity value -> policy label -> success %.
    rates: dict[str, dict[float, dict[str, float]]] = field(default_factory=dict)

    def panel_rows(self, panel: str) -> list[dict[str, object]]:
        rows = []
        for capacity in sorted(self.rates[panel]):
            row: dict[str, object] = {"capacity": capacity}
            row.update(self.rates[panel][capacity])
            rows.append(row)
        return rows

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per (panel, capacity) grid point."""
        records = []
        for panel in sorted(self.rates):
            for capacity in sorted(self.rates[panel]):
                metrics = {
                    "success_pct_"
                    + label.lower().replace("#", ""): rate
                    for label, rate in self.rates[panel][capacity].items()
                }
                metrics["scenarios"] = self.num_scenarios
                records.append(
                    result_record(
                        "fig9",
                        metrics,
                        axes={"panel": panel, "capacity": capacity},
                    )
                )
        return records

    def format_report(self) -> str:
        labels = [label for label, *_ in POLICY_VARIANTS]
        parts = []
        for panel, unit in (
            ("bandwidth", "mean bandwidth capacity (Mbps)"),
            ("transcode", "mean transcoding capacity (#)"),
        ):
            parts.append(
                render_table(
                    ["capacity"] + labels,
                    self.panel_rows(panel),
                    title=f"Fig. 9 - % successful scenarios vs {unit} "
                    f"({self.num_scenarios} scenarios)",
                )
            )
        return "\n\n".join(parts)


def run_fig9(
    num_scenarios: int | None = None,
    first_seed: int = 5000,
    bandwidth_grid: tuple[float, ...] = BANDWIDTH_GRID_MBPS,
    transcode_grid: tuple[float, ...] = TRANSCODE_GRID,
) -> Fig9Result:
    """Run both Fig. 9 panels."""
    count = num_scenarios if num_scenarios is not None else scenarios_from_env(20)
    result = Fig9Result(num_scenarios=count)
    result.rates["bandwidth"] = {}
    result.rates["transcode"] = {}

    for capacity in bandwidth_grid:
        params = ScenarioParams(
            mean_bandwidth_mbps=capacity, mean_transcode_slots=math.inf
        )
        successes = {label: 0 for label, *_ in POLICY_VARIANTS}
        for i in range(count):
            conference = scenario_conference(seed=first_seed + i, params=params)
            for label, policy, n_ngbr in POLICY_VARIANTS:
                if _attempt(conference, policy, n_ngbr):
                    successes[label] += 1
        result.rates["bandwidth"][capacity] = {
            label: 100.0 * successes[label] / count for label, *_ in POLICY_VARIANTS
        }

    for capacity in transcode_grid:
        params = ScenarioParams(
            mean_bandwidth_mbps=math.inf, mean_transcode_slots=capacity
        )
        successes = {label: 0 for label, *_ in POLICY_VARIANTS}
        for i in range(count):
            conference = scenario_conference(seed=first_seed + i, params=params)
            for label, policy, n_ngbr in POLICY_VARIANTS:
                if _attempt(conference, policy, n_ngbr):
                    successes[label] += 1
        result.rates["transcode"][capacity] = {
            label: 100.0 * successes[label] / count for label, *_ in POLICY_VARIANTS
        }
    return result
