"""Fig. 2 — the motivating example, solved exactly.

Checks the paper's three claims on the 4-user / 4-agent instance:

1. under the nearest policy user 4 attaches to SG (20 ms < 27 ms);
2. attaching user 4 to TO instead lowers both the session's delay cost
   and its inter-agent traffic (TO is closer to the other agents, and
   user 3 is already there);
3. SG still wins on transcoding latency (it is the powerful agent), which
   is exactly the tension the joint optimization resolves.

Also reports the exact UAP optimum of the instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.delay import session_delay_cost
from repro.experiments.common import result_record
from repro.core.exact import solve_exact
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.core.traffic import total_inter_agent_traffic
from repro.workloads.motivating import motivating_conference


@dataclass
class Fig2Result:
    nearest_agent_of_user4: str
    rows: list[dict[str, object]]
    sg_transcode_ms: float
    to_transcode_ms: float
    optimal_traffic: float
    optimal_delay_cost: float

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per candidate assignment."""
        records = [
            result_record(
                "fig2",
                {
                    "traffic_mbps": row["traffic (Mbps)"],
                    "delay_cost_ms": row["delay cost F (ms)"],
                },
                axes={"assignment": row["assignment of user 4"]},
            )
            for row in self.rows
        ]
        records.append(
            result_record(
                "fig2",
                {
                    "traffic_mbps": self.optimal_traffic,
                    "delay_cost_ms": self.optimal_delay_cost,
                },
                axes={"assignment": "exact optimum"},
            )
        )
        return records

    def format_report(self) -> str:
        table = render_table(
            ["assignment of user 4", "traffic (Mbps)", "delay cost F (ms)"],
            self.rows,
            title="Fig. 2 - motivating scenario (others at nearest agents)",
        )
        return "\n".join(
            [
                table,
                "",
                f"Nearest agent of user 4: {self.nearest_agent_of_user4} "
                "(the paper's nearest policy picks SG)",
                f"Transcoding latency: SG {self.sg_transcode_ms:.1f} ms vs "
                f"TO {self.to_transcode_ms:.1f} ms (SG is the powerful agent)",
                f"Exact UAP optimum: traffic {self.optimal_traffic:.1f} Mbps, "
                f"delay cost {self.optimal_delay_cost:.1f} ms",
            ]
        )


def run_fig2() -> Fig2Result:
    """Evaluate the Fig. 2 claims and the exact optimum."""
    conference = motivating_conference()
    weights = ObjectiveWeights.normalized_for(conference)
    evaluator = ObjectiveEvaluator(conference, weights)

    nearest = nearest_assignment(conference)
    user4 = 3
    name_of = {a.aid: a.name for a in conference.agents}
    nearest_name = name_of[nearest.agent_of(user4)]

    to_agent = next(a.aid for a in conference.agents if a.name == "TO")
    sg_agent = next(a.aid for a in conference.agents if a.name == "SG")

    rows: list[dict[str, object]] = []
    for label, agent in (("SG (nearest)", sg_agent), ("TO (session-aware)", to_agent)):
        candidate = nearest.with_user(user4, agent)
        # Transcoding tasks follow the source agent (the Nrst convention).
        rows.append(
            {
                "assignment of user 4": label,
                "traffic (Mbps)": total_inter_agent_traffic(conference, candidate),
                "delay cost F (ms)": session_delay_cost(conference, candidate, 0),
            }
        )

    ladder = conference.representations
    source_rep, target_rep = ladder["720p"], ladder["480p"]
    exact = solve_exact(evaluator)
    return Fig2Result(
        nearest_agent_of_user4=nearest_name,
        rows=rows,
        sg_transcode_ms=conference.agent(sg_agent).transcoding_latency_ms(
            source_rep, target_rep
        ),
        to_transcode_ms=conference.agent(to_agent).transcoding_latency_ms(
            source_rep, target_rep
        ),
        optimal_traffic=total_inter_agent_traffic(conference, exact.assignment),
        optimal_delay_cost=session_delay_cost(conference, exact.assignment, 0),
    )
