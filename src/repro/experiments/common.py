"""Shared experiment plumbing: result containers and scale control."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError

#: Environment variable overriding the number of random scenarios.
SCENARIOS_ENV = "REPRO_SCENARIOS"

#: The paper quotes beta values (200/400) against its raw-unit objective,
#: whose absolute scale is not disclosed.  Our default objective is
#: normalized to O(1) per session (see ObjectiveWeights.normalized_for),
#: so we map paper betas through a fixed calibration constant chosen such
#: that beta=400 sits at the edge of near-greedy behaviour and beta=200
#: visibly converges slower with larger fluctuations — the Fig. 4
#: contrast.  Calibrated once on the prototype workload and used verbatim
#: by every experiment.
PAPER_BETA_CALIBRATION = 12.5


def effective_beta(paper_beta: float) -> float:
    """Map a paper-quoted beta onto the normalized-objective scale."""
    if paper_beta <= 0:
        raise ExperimentError(f"beta must be positive, got {paper_beta}")
    return paper_beta / PAPER_BETA_CALIBRATION


def scenarios_from_env(default: int) -> int:
    """The scenario count: ``REPRO_SCENARIOS`` wins over ``default``.

    The paper uses 100; runners default lower so the bench suite stays
    laptop-friendly.
    """
    raw = os.environ.get(SCENARIOS_ENV, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as error:
        raise ExperimentError(f"{SCENARIOS_ENV}={raw!r} is not an integer") from error
    if value < 1:
        raise ExperimentError(f"{SCENARIOS_ENV} must be >= 1, got {value}")
    return value


@dataclass
class SeriesBundle:
    """Named (times, values) series of one experiment variant."""

    label: str
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def add(self, name: str, times: np.ndarray, values: np.ndarray) -> None:
        self.series[name] = (np.asarray(times, float), np.asarray(values, float))

    def get(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"bundle {self.label!r} has no series {name!r}; "
                f"have {sorted(self.series)}"
            ) from None

    def csv_rows(self) -> list[str]:
        """``label,series,t,value`` rows for offline plotting."""
        rows = []
        for name in sorted(self.series):
            times, values = self.series[name]
            rows.extend(
                f"{self.label},{name},{t:.3f},{v:.6g}"
                for t, v in zip(times, values)
            )
        return rows


def percent_change(baseline: float, value: float) -> float:
    """Signed percentage change from ``baseline`` to ``value`` (negative =
    reduction), guarded against a zero baseline."""
    if baseline == 0:
        raise ExperimentError("cannot compute a percentage of a zero baseline")
    return 100.0 * (value - baseline) / baseline
