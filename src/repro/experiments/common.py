"""Shared experiment plumbing: result containers, scale control, and the
schema-versioned result-record shape shared with the fleet layer."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ExperimentError

#: Environment variable overriding the number of random scenarios.
SCENARIOS_ENV = "REPRO_SCENARIOS"

#: The paper quotes beta values (200/400) against its raw-unit objective,
#: whose absolute scale is not disclosed.  Our default objective is
#: normalized to O(1) per session (see ObjectiveWeights.normalized_for),
#: so we map paper betas through a fixed calibration constant chosen such
#: that beta=400 sits at the edge of near-greedy behaviour and beta=200
#: visibly converges slower with larger fluctuations — the Fig. 4
#: contrast.  Calibrated once on the prototype workload and used verbatim
#: by every experiment.
PAPER_BETA_CALIBRATION = 12.5


def effective_beta(paper_beta: float) -> float:
    """Map a paper-quoted beta onto the normalized-objective scale."""
    if paper_beta <= 0:
        raise ExperimentError(f"beta must be positive, got {paper_beta}")
    return paper_beta / PAPER_BETA_CALIBRATION


def scenarios_from_env(default: int) -> int:
    """The scenario count: ``REPRO_SCENARIOS`` wins over ``default``.

    The paper uses 100; runners default lower so the bench suite stays
    laptop-friendly.
    """
    raw = os.environ.get(SCENARIOS_ENV, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as error:
        raise ExperimentError(f"{SCENARIOS_ENV}={raw!r} is not an integer") from error
    if value < 1:
        raise ExperimentError(f"{SCENARIOS_ENV} must be >= 1, got {value}")
    return value


@dataclass
class SeriesBundle:
    """Named (times, values) series of one experiment variant."""

    label: str
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def add(self, name: str, times: np.ndarray, values: np.ndarray) -> None:
        self.series[name] = (np.asarray(times, float), np.asarray(values, float))

    def get(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        try:
            return self.series[name]
        except KeyError:
            raise ExperimentError(
                f"bundle {self.label!r} has no series {name!r}; "
                f"have {sorted(self.series)}"
            ) from None

    def csv_rows(self) -> list[str]:
        """``label,series,t,value`` rows for offline plotting."""
        rows = []
        for name in sorted(self.series):
            times, values = self.series[name]
            rows.extend(
                f"{self.label},{name},{t:.3f},{v:.6g}"
                for t, v in zip(times, values)
            )
        return rows


def _record_scalar(value: object, key: str) -> object:
    """Coerce one metric value to a JSON-safe scalar.

    Non-finite floats (``nan``/``inf``) become ``None`` — strict JSON
    has no literal for them and the schema documents metrics as
    nullable; anything non-scalar is a programming error.
    """
    if isinstance(value, bool) or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return float(value) if math.isfinite(value) else None
    if value is None:
        return None
    raise ExperimentError(
        f"result-record metric {key!r} must be a JSON scalar, "
        f"got {type(value).__name__}"
    )


def result_record(
    name: str,
    metrics: Mapping[str, object],
    *,
    seed: int | None = None,
    axes: Mapping[str, object] | None = None,
) -> dict:
    """One result record in the fleet ``results.jsonl`` envelope.

    Experiment runners emit these from ``result_records()`` (exported by
    ``repro run <id> --jsonl``) so paper figures and fleet sweeps share
    one analysis path; the envelope fields and schema version live in
    :mod:`repro.analysis.report` and are documented in DESIGN.md
    "Result records".
    """
    from repro.analysis.report import ENVELOPE_FIELDS, record_schema_version

    record: dict = {
        # Experiment metrics never include the resilience payload, so
        # they stamp the minimal (pre-fault-layer) schema version.
        "schema_version": record_schema_version({}),
        "name": str(name),
        "status": "ok",
    }
    if seed is not None:
        record["seed"] = int(seed)
    if axes:
        record["axes"] = {
            str(key): _record_scalar(value, f"axes.{key}")
            for key, value in axes.items()
        }
    for key, value in metrics.items():
        if str(key) in ENVELOPE_FIELDS:
            raise ExperimentError(
                f"metric name {key!r} collides with a record envelope "
                "field; rename the metric"
            )
        record[str(key)] = _record_scalar(value, str(key))
    return record


def percent_change(baseline: float, value: float) -> float:
    """Signed percentage change from ``baseline`` to ``value`` (negative =
    reduction), guarded against a zero baseline."""
    if baseline == 0:
        raise ExperimentError("cannot compute a percentage of a zero baseline")
    return 100.0 * (value - baseline) / baseline
