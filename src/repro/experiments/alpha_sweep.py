"""The Internet-scale alpha sweep shared by Table II and Fig. 8.

For each random scenario (256 sites, 7 agents, 200 users) and each initial
policy (Nrst / AgRank), records the metrics of the initial assignment and
of Alg. 1's best state under the paper's three design-parameter mixes:

* ``alpha2 = 0`` — delay only (``alpha = (1, 0, 0)``);
* ``alpha1 = alpha2`` — the hybrid objective (``alpha = (1, 1, 1)``);
* ``alpha1 = 0`` — traffic cost only (``alpha = (0, 1, 1)``).

The transcoding weight alpha3 follows alpha2 (both are provider-cost
terms), matching the paper's delay-vs-cost framing of the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.agrank import AgRankConfig
from repro.core.bootstrap import bootstrap_assignment
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import effective_beta
from repro.workloads.scenarios import ScenarioParams, scenario_conference

#: ``(label, alpha1, alpha2, alpha3)`` in the paper's column order.
ALPHA_CONFIGS: tuple[tuple[str, float, float, float], ...] = (
    ("a2=0 (delay only)", 1.0, 0.0, 0.0),
    ("a1=a2", 1.0, 1.0, 1.0),
    ("a1=0 (traffic only)", 0.0, 1.0, 1.0),
)

#: Initial-policy labels in the paper's row order.
POLICIES: tuple[str, ...] = ("nearest", "agrank")


@dataclass(frozen=True)
class SweepOutcome:
    """One measured cell: scenario x policy x column."""

    scenario_seed: int
    policy: str
    column: str  # "init" or an ALPHA_CONFIGS label
    traffic_mbps: float
    delay_ms: float


def sweep_scenario(
    scenario_seed: int,
    params: ScenarioParams | None = None,
    beta: float = 400.0,
    hops_per_session: int = 40,
    agrank: AgRankConfig | None = None,
    alpha_configs: tuple[tuple[str, float, float, float], ...] = ALPHA_CONFIGS,
    policies: tuple[str, ...] = POLICIES,
) -> list[SweepOutcome]:
    """All outcomes of one scenario (init + alpha configs per policy)."""
    conference = scenario_conference(seed=scenario_seed, params=params)
    base_weights = ObjectiveWeights.normalized_for(conference)
    evaluator = ObjectiveEvaluator(conference, base_weights)
    num_sessions = conference.num_sessions
    outcomes: list[SweepOutcome] = []

    for policy in policies:
        if policy == "nearest":
            initial = nearest_assignment(conference)
        else:
            # Admit on capacity only; Alg. 1's hop filter enforces the
            # delay cap from the first migration onwards.
            initial = bootstrap_assignment(
                conference, "agrank", config=agrank, check_delay=False
            )
        init_total = evaluator.total(initial)
        outcomes.append(
            SweepOutcome(
                scenario_seed=scenario_seed,
                policy=policy,
                column="init",
                traffic_mbps=init_total.inter_agent_mbps,
                delay_ms=init_total.average_delay_ms,
            )
        )
        for label, a1, a2, a3 in alpha_configs:
            run_evaluator = evaluator.with_weights(
                base_weights.with_alphas(a1, a2, a3)
            )
            solver = MarkovAssignmentSolver(
                run_evaluator,
                initial,
                config=MarkovConfig(beta=effective_beta(beta)),
                rng=np.random.default_rng(
                    (scenario_seed, hash(policy) & 0xFFFF, len(label))
                ),
            )
            solver.run_until_stable(
                min_hops=4 * num_sessions,
                max_hops=hops_per_session * num_sessions,
            )
            best = evaluator.total(solver.best_assignment)
            outcomes.append(
                SweepOutcome(
                    scenario_seed=scenario_seed,
                    policy=policy,
                    column=label,
                    traffic_mbps=best.inter_agent_mbps,
                    delay_ms=best.average_delay_ms,
                )
            )
    return outcomes


def run_alpha_sweep(
    num_scenarios: int,
    first_seed: int = 1000,
    params: ScenarioParams | None = None,
    beta: float = 400.0,
    hops_per_session: int = 40,
) -> list[SweepOutcome]:
    """Run ``num_scenarios`` scenarios (seeds ``first_seed + i``)."""
    outcomes: list[SweepOutcome] = []
    for i in range(num_scenarios):
        outcomes.extend(
            sweep_scenario(
                scenario_seed=first_seed + i,
                params=params,
                beta=beta,
                hops_per_session=hops_per_session,
            )
        )
    return outcomes


def aggregate(
    outcomes: list[SweepOutcome], policy: str, column: str
) -> tuple[float, float]:
    """Mean ``(traffic, delay)`` over scenarios for one cell."""
    cells = [o for o in outcomes if o.policy == policy and o.column == column]
    if not cells:
        raise ValueError(f"no outcomes for policy={policy!r} column={column!r}")
    return (
        float(np.mean([o.traffic_mbps for o in cells])),
        float(np.mean([o.delay_ms for o in cells])),
    )


def delays_of(outcomes: list[SweepOutcome], policy: str, column: str) -> np.ndarray:
    """Per-scenario delay sample for one cell (Fig. 8 boxes)."""
    return np.array(
        [o.delay_ms for o in outcomes if o.policy == policy and o.column == column]
    )
