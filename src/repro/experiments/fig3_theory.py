"""Fig. 3 + the Sec. IV-A theory, verified on the toy instance.

Enumerates the 8 feasible states of the 2-user / 2-agent / 1-task
instance, rebuilds the CTMC realized by Alg. 1 under both hop rules,
and compares stationary distributions against the Gibbs target of
Eq. (9); checks the Eq. (10) sandwich and the Eq. (12) optimality-gap
bound; and validates Theorem 1's perturbed chain (Eqs. (11)/(13))
under the quantized error model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import result_record
from repro.core.theory import (
    build_state_space,
    eq10_bounds,
    eq13_bound,
    expected_phi,
    generator_matrix,
    gibbs_distribution,
    optimality_gap_bound,
    perturbed_stationary,
    stationary_distribution,
    total_variation,
)
from repro.netsim.noise import QuantizedPerturbation
from repro.workloads.toy import FIG3_NUM_STATES, toy_conference


@dataclass
class Fig3Result:
    num_states: int
    beta: float
    tv_paper_rule: float
    tv_metropolis_rule: float
    eq10_lower: float
    eq10_phi_hat: float
    eq10_upper: float
    eq12_gap: float
    eq12_bound: float
    eq13_gap: float
    eq13_bound_value: float

    def rows(self) -> list[dict[str, object]]:
        return [
            {"check": "feasible states (Fig. 3a)", "value": float(self.num_states),
             "target": float(FIG3_NUM_STATES)},
            {"check": "TV(paper chain, Gibbs)", "value": self.tv_paper_rule,
             "target": 0.0},
            {"check": "TV(metropolis chain, Gibbs)", "value": self.tv_metropolis_rule,
             "target": 0.0},
            {"check": "Eq.10 lower", "value": self.eq10_lower,
             "target": self.eq10_phi_hat},
            {"check": "Eq.10 upper", "value": self.eq10_upper,
             "target": self.eq10_phi_hat},
            {"check": "Eq.12 gap (Phi_avg - Phi_min)", "value": self.eq12_gap,
             "target": self.eq12_bound},
            {"check": "Eq.13 gap (perturbed)", "value": self.eq13_gap,
             "target": self.eq13_bound_value},
        ]

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per theory check."""
        return [
            result_record(
                "fig3",
                {"value": row["value"], "target": row["target"]},
                axes={"check": row["check"], "solver.beta": self.beta},
            )
            for row in self.rows()
        ]

    def format_report(self) -> str:
        return render_table(
            ["check", "value", "target"],
            self.rows(),
            precision=4,
            title=f"Fig. 3 / theory checks on the toy chain (beta={self.beta:g})",
        )


def run_fig3(beta: float = 6.0, delta: float = 0.05) -> Fig3Result:
    """Verify the approximation framework on the enumerable instance.

    ``beta`` is deliberately moderate: at the paper's beta = 400 the Gibbs
    mass collapses onto the optimum and every distribution comparison is
    trivially tiny.
    """
    conference = toy_conference()
    evaluator = ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )
    space = build_state_space(evaluator)
    gibbs = gibbs_distribution(space.phis, beta)

    q_paper = generator_matrix(conference, space, beta, rule="paper")
    q_metro = generator_matrix(conference, space, beta, rule="metropolis")
    pi_paper = stationary_distribution(q_paper)
    pi_metro = stationary_distribution(q_metro)

    lower, phi_hat, upper = eq10_bounds(space.phis, beta)
    gap = expected_phi(gibbs, space.phis) - space.phi_min
    bound = optimality_gap_bound(conference, beta)

    perturbation = QuantizedPerturbation(delta=delta, levels=4)
    perturbed = perturbed_stationary(
        space.phis, beta, [perturbation] * len(space)
    )
    gap13 = expected_phi(perturbed, space.phis) - space.phi_min
    bound13 = eq13_bound(conference, beta, delta)

    return Fig3Result(
        num_states=len(space),
        beta=beta,
        tv_paper_rule=total_variation(pi_paper, gibbs),
        tv_metropolis_rule=total_variation(pi_metro, gibbs),
        eq10_lower=lower,
        eq10_phi_hat=phi_hat,
        eq10_upper=upper,
        eq12_gap=gap,
        eq12_bound=bound,
        eq13_gap=gap13,
        eq13_bound_value=bound13,
    )
