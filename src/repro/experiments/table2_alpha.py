"""Table II — the impact of the design parameters alpha on Alg. 1.

Paper layout (mean over 100 random scenarios):

=========  =======  =====  ==============  ======  ==============
Alg./Cost           Init.  a2=0 (delay)    a1=a2   a1=0 (traffic)
=========  =======  =====  ==============  ======  ==============
Nrst       Traffic   1443             979     829             521
           Delay      166             149     150             209
AgRank     Traffic    384             499     335             296
           Delay      176             162     163             214
=========  =======  =====  ==============  ======  ==============

Shape targets: Alg.1 + AgRank under the hybrid objective cuts traffic by
~77 % versus Nrst-init with comparable (paper: slightly lower) delay;
Alg.1 + Nrst cuts ~42 %; AgRank alone cuts ~73 % at a small delay penalty;
the traffic-only mix gives the lowest traffic but the highest delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import render_table
from repro.experiments.alpha_sweep import (
    ALPHA_CONFIGS,
    POLICIES,
    SweepOutcome,
    aggregate,
    run_alpha_sweep,
)
from repro.experiments.common import result_record, scenarios_from_env
from repro.workloads.scenarios import ScenarioParams

#: Paper's Table II means, for side-by-side comparison in reports.
PAPER_TABLE2 = {
    ("nearest", "init"): (1443.0, 166.0),
    ("nearest", "a2=0 (delay only)"): (979.0, 149.0),
    ("nearest", "a1=a2"): (829.0, 150.0),
    ("nearest", "a1=0 (traffic only)"): (521.0, 209.0),
    ("agrank", "init"): (384.0, 176.0),
    ("agrank", "a2=0 (delay only)"): (499.0, 162.0),
    ("agrank", "a1=a2"): (335.0, 163.0),
    ("agrank", "a1=0 (traffic only)"): (296.0, 214.0),
}

_POLICY_LABEL = {"nearest": "Nrst", "agrank": "AgRank"}
_COLUMNS = ("init",) + tuple(label for label, *_ in ALPHA_CONFIGS)


@dataclass
class Table2Result:
    outcomes: list[SweepOutcome]
    num_scenarios: int
    cells: dict[tuple[str, str], tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for policy in POLICIES:
            for column in _COLUMNS:
                self.cells[(policy, column)] = aggregate(
                    self.outcomes, policy, column
                )

    def reduction_vs_nrst_init(self, policy: str, column: str) -> tuple[float, float]:
        """(traffic reduction %, delay reduction %) vs the Nrst initial."""
        base_traffic, base_delay = self.cells[("nearest", "init")]
        traffic, delay = self.cells[(policy, column)]
        return (
            100.0 * (base_traffic - traffic) / base_traffic,
            100.0 * (base_delay - delay) / base_delay,
        )

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for policy in POLICIES:
            for metric, index in (("Traffic", 0), ("Delay", 1)):
                row: dict[str, object] = {
                    "Alg.": _POLICY_LABEL[policy],
                    "Cost": metric,
                }
                for column in _COLUMNS:
                    row[column] = self.cells[(policy, column)][index]
                rows.append(row)
        return rows

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per (policy, alpha mix) cell."""
        return [
            result_record(
                "table2",
                {
                    "traffic_mbps": traffic,
                    "delay_ms": delay,
                    "scenarios": self.num_scenarios,
                },
                axes={"solver.policy": policy, "alpha": column},
            )
            for (policy, column), (traffic, delay) in sorted(
                self.cells.items()
            )
        ]

    def format_report(self) -> str:
        table = render_table(
            ["Alg.", "Cost"] + list(_COLUMNS),
            self.rows(),
            precision=0,
            title=(
                f"Table II - impact of alpha on Alg. 1 "
                f"(mean of {self.num_scenarios} scenarios; paper uses 100)"
            ),
        )
        def change_line(policy: str, column: str) -> str:
            t_red, d_red = self.reduction_vs_nrst_init(policy, column)
            return f"traffic {-t_red:+.0f}%, delay {-d_red:+.0f}%"

        lines = [
            table,
            "",
            f"Alg.1+AgRank (a1=a2) vs Nrst init: {change_line('agrank', 'a1=a2')} "
            "(paper: traffic -77%, delay -2%)",
            f"Alg.1+Nrst   (a1=a2) vs Nrst init: {change_line('nearest', 'a1=a2')} "
            "(paper: traffic -42%, delay -10%)",
            f"AgRank init          vs Nrst init: {change_line('agrank', 'init')} "
            "(paper: traffic -73%, delay +6%)",
        ]
        return "\n".join(lines)


def run_table2(
    num_scenarios: int | None = None,
    first_seed: int = 1000,
    beta: float = 400.0,
    hops_per_session: int = 40,
    params: ScenarioParams | None = None,
) -> Table2Result:
    """Run the Table II sweep (``REPRO_SCENARIOS`` overrides the count)."""
    count = num_scenarios if num_scenarios is not None else scenarios_from_env(8)
    outcomes = run_alpha_sweep(
        num_scenarios=count,
        first_seed=first_seed,
        params=params,
        beta=beta,
        hops_per_session=hops_per_session,
    )
    return Table2Result(outcomes=outcomes, num_scenarios=count)
