"""Fig. 7 — per-session traffic/delay trajectories (case study).

Tracks three sample sessions with 5, 4 and 3 users through a 200 s Nrst-
initialized run.  Paper shape: at least one session consolidates onto a
single agent (zero inter-agent traffic); occasionally a session migrates
to a worse assignment and recovers within a few hops (the probabilistic
nature of the chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import render_table
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import ExperimentError
from repro.experiments.common import SeriesBundle, effective_beta, result_record
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.simulation import (
    ConferencingSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.workloads.prototype import prototype_conference


@dataclass
class Fig7Result:
    bundles: dict[int, SeriesBundle] = field(default_factory=dict)
    session_sizes: dict[int, int] = field(default_factory=dict)
    simulation: SimulationResult | None = None

    def summary_rows(self) -> list[dict[str, object]]:
        rows = []
        for sid, bundle in sorted(self.bundles.items()):
            _, traffic = bundle.get("traffic")
            _, delay = bundle.get("delay")
            regressions = int(np.sum(np.diff(traffic) > 1e-9))
            rows.append(
                {
                    "session": sid,
                    "users": self.session_sizes[sid],
                    "traffic0 (Mbps)": float(traffic[0]),
                    "traffic_end (Mbps)": float(traffic[-1]),
                    "min traffic (Mbps)": float(traffic.min()),
                    "delay0 (ms)": float(delay[0]),
                    "delay_end (ms)": float(delay[-1]),
                    "worse-then-recover": regressions,
                }
            )
        return rows

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per tracked session."""
        return [
            result_record(
                "fig7",
                {
                    "users": row["users"],
                    "traffic0_mbps": row["traffic0 (Mbps)"],
                    "traffic_mbps": row["traffic_end (Mbps)"],
                    "traffic_min_mbps": row["min traffic (Mbps)"],
                    "delay0_ms": row["delay0 (ms)"],
                    "delay_ms": row["delay_end (ms)"],
                    "regressions": row["worse-then-recover"],
                },
                axes={"session": row["session"]},
            )
            for row in self.summary_rows()
        ]

    def format_report(self) -> str:
        return render_table(
            [
                "session",
                "users",
                "traffic0 (Mbps)",
                "traffic_end (Mbps)",
                "min traffic (Mbps)",
                "delay0 (ms)",
                "delay_end (ms)",
                "worse-then-recover",
            ],
            self.summary_rows(),
            title="Fig. 7 - three sample sessions under Alg. 1 (Nrst init)",
        )


def pick_sessions_by_size(sizes: dict[int, int], wanted: tuple[int, ...]) -> list[int]:
    """First session of each wanted size (paper tracks 5/4/3 users)."""
    chosen: list[int] = []
    for size in wanted:
        match = next(
            (sid for sid, s in sorted(sizes.items()) if s == size and sid not in chosen),
            None,
        )
        if match is None:
            raise ExperimentError(f"no session with {size} users in the scenario")
        chosen.append(match)
    return chosen


def run_fig7(
    seed: int = 7,
    duration_s: float = 200.0,
    beta: float = 400.0,
    tracked_sizes: tuple[int, ...] = (5, 4, 3),
) -> Fig7Result:
    """Run Fig. 7 with per-session tracking."""
    conference = prototype_conference(seed=seed)
    sizes = {s.sid: len(s) for s in conference.sessions}
    tracked = pick_sessions_by_size(sizes, tracked_sizes)

    weights = ObjectiveWeights.normalized_for(conference)
    evaluator = ObjectiveEvaluator(conference, weights)
    schedule = DynamicsSchedule.static(range(conference.num_sessions))
    config = SimulationConfig(
        duration_s=duration_s,
        markov=MarkovConfig(beta=effective_beta(beta)),
        initial_policy="nearest",
        seed=seed,
        track_sessions=tuple(tracked),
    )
    simulation = ConferencingSimulator(evaluator, schedule, config).run()

    result = Fig7Result(simulation=simulation)
    for sid in tracked:
        bundle = SeriesBundle(label=f"session-{sid}")
        for metric in ("traffic", "delay"):
            times, values = simulation.series(f"s{sid}/{metric}")
            bundle.add(metric, times, values)
        result.bundles[sid] = bundle
        result.session_sizes[sid] = sizes[sid]
    return result
