"""A7 — robustness of Alg. 1 to noisy measurements (Sec. IV-A.4).

The paper argues Alg. 1 tolerates inaccurate measurements of RTTs and
transcoding latencies: with a perturbed objective the chain converges to
the perturbed stationary distribution of Theorem 1, whose optimality gap
grows by at most ``Delta_max`` (Eq. 13).  This experiment makes the claim
empirical at system scale: run the prototype pipeline under increasing
observation noise and record how much solution quality degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import render_table
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import effective_beta, result_record
from repro.netsim.noise import QuantizedPerturbation
from repro.workloads.prototype import prototype_conference


@dataclass
class NoiseRobustnessResult:
    """Solution quality vs the noise bound Delta (per-session phi units)."""

    #: delta -> (mean best phi, mean traffic Mbps, mean delay ms).
    points: dict[float, tuple[float, float, float]] = field(default_factory=dict)
    clean_phi: float = 0.0
    initial_phi: float = 0.0

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "Delta": delta,
                "best phi": values[0],
                "traffic (Mbps)": values[1],
                "delay (ms)": values[2],
                "degradation vs clean (%)": 100.0 * (values[0] / self.clean_phi - 1.0),
            }
            for delta, values in sorted(self.points.items())
        ]

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per noise bound Delta."""
        return [
            result_record(
                "noise",
                {
                    "phi": row["best phi"],
                    "traffic_mbps": row["traffic (Mbps)"],
                    "delay_ms": row["delay (ms)"],
                    "degradation_pct": row["degradation vs clean (%)"],
                },
                axes={"noise.delta": row["Delta"]},
            )
            for row in self.rows()
        ]

    def format_report(self) -> str:
        table = render_table(
            ["Delta", "best phi", "traffic (Mbps)", "delay (ms)",
             "degradation vs clean (%)"],
            self.rows(),
            precision=2,
            title="A7 - Alg. 1 under noisy objective observations "
            "(prototype, Nrst init)",
        )
        return "\n".join(
            [
                table,
                "",
                f"Nrst initial phi: {self.initial_phi:.2f}; "
                f"noise-free Alg. 1 best phi: {self.clean_phi:.2f}",
            ]
        )


def run_noise_robustness(
    seed: int = 7,
    deltas: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2),
    trials: int = 3,
    hops: int = 400,
    beta: float = 400.0,
) -> NoiseRobustnessResult:
    """Sweep the quantized-noise bound Delta and measure solution quality.

    ``Delta`` is expressed in the normalized per-session objective units
    (typical session phi is O(1)); each trial reseeds both the chain and
    the noise draws.
    """
    conference = prototype_conference(seed=seed)
    evaluator = ObjectiveEvaluator(
        conference, ObjectiveWeights.normalized_for(conference)
    )
    initial = nearest_assignment(conference)
    result = NoiseRobustnessResult(
        initial_phi=evaluator.total(initial).phi
    )

    for delta in deltas:
        phis: list[float] = []
        traffics: list[float] = []
        delays: list[float] = []
        for trial in range(trials):
            noise = (
                QuantizedPerturbation(delta=delta, levels=4) if delta > 0 else None
            )
            solver = MarkovAssignmentSolver(
                evaluator,
                initial,
                config=MarkovConfig(beta=effective_beta(beta)),
                noise=noise,
                rng=np.random.default_rng((seed, trial, int(delta * 1000))),
            )
            solver.run(hops)
            best = evaluator.total(solver.best_assignment)
            phis.append(best.phi)
            traffics.append(best.inter_agent_mbps)
            delays.append(best.average_delay_ms)
        result.points[delta] = (
            float(np.mean(phis)),
            float(np.mean(traffics)),
            float(np.mean(delays)),
        )
    result.clean_phi = result.points[min(result.points)][0]
    return result
