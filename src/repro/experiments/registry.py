"""Registry of all experiments, keyed by the paper's artifact ids."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExperimentError
from repro.experiments.fig2_motivating import run_fig2
from repro.experiments.fig3_theory import run_fig3
from repro.experiments.fig4_convergence import run_fig4
from repro.experiments.fig5_dynamics import run_fig5
from repro.experiments.fig6_agrank_init import run_fig6
from repro.experiments.fig7_sessions import run_fig7
from repro.experiments.fig8_delay_boxplot import run_fig8
from repro.experiments.fig9_success_rate import run_fig9
from repro.experiments.fig10_nngbr import run_fig10
from repro.experiments.noise_robustness import run_noise_robustness
from repro.experiments.table2_alpha import run_table2


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: its runner and a one-line description."""

    experiment_id: str
    description: str
    runner: Callable[..., Any]


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig2",
            "Motivating example: nearest vs session-aware assignment of user 4",
            run_fig2,
        ),
        ExperimentSpec(
            "fig3",
            "Toy chain: 8 states, stationary vs Gibbs, Eqs. (10)/(12)/(13)",
            run_fig3,
        ),
        ExperimentSpec(
            "fig4",
            "Traffic/delay evolution of Alg. 1, beta in {200, 400}, Nrst init",
            run_fig4,
        ),
        ExperimentSpec(
            "fig5",
            "Alg. 1 under session arrivals (t=40 s) and departures (t=80 s)",
            run_fig5,
        ),
        ExperimentSpec(
            "fig6",
            "Alg. 1 bootstrapped by AgRank(n_ngbr=2), 100 s",
            run_fig6,
        ),
        ExperimentSpec(
            "fig7",
            "Per-session case study: 3 sessions (5/4/3 users)",
            run_fig7,
        ),
        ExperimentSpec(
            "table2",
            "Impact of alpha: Internet-scale sweep, Nrst/AgRank x 3 mixes",
            run_table2,
        ),
        ExperimentSpec(
            "fig8",
            "Delay box plots across the alpha sweep",
            run_fig8,
        ),
        ExperimentSpec(
            "fig9",
            "Bootstrap success rate vs bandwidth/transcoding capacity",
            run_fig9,
        ),
        ExperimentSpec(
            "fig10",
            "AgRank initial assignment vs n_ngbr",
            run_fig10,
        ),
        ExperimentSpec(
            "noise",
            "A7: Alg. 1 robustness to noisy objective measurements (Sec. IV-A.4)",
            run_noise_robustness,
        ),
    )
}


def experiment_ids() -> tuple[str, ...]:
    """Sorted ids of every registered experiment.

    The single source of truth for artifact names: the CLI builds its
    ``run`` choices and ``list`` output from this, and the fleet spec
    layer validates ``artifact`` references against it.
    """
    return tuple(sorted(EXPERIMENTS))


def list_experiments() -> tuple[ExperimentSpec, ...]:
    """All registered experiments in id order (programmatic listing)."""
    return tuple(EXPERIMENTS[eid] for eid in experiment_ids())


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment."""
    spec = EXPERIMENTS.get(experiment_id)
    if spec is None:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return spec


def run_experiment(experiment_id: str, **kwargs: Any) -> Any:
    """Run a registered experiment and return its result object."""
    return get_experiment(experiment_id).runner(**kwargs)
