"""Fig. 10 — the impact of n_ngbr on AgRank's initial assignment.

Sweeps ``n_ngbr`` from 1 (equivalent to Nrst) to L (whole session on the
single best-ranked agent) and reports the traffic and delay of the
*initial* assignment, averaged over random scenarios.

Paper shape: traffic is highest at n_ngbr = 1 and falls as the candidate
pool grows; delay rises towards n_ngbr = L, where sessions consolidate
onto one agent regardless of member locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tables import render_table
from repro.core.agrank import AgRankConfig
from repro.core.bootstrap import bootstrap_assignment
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import result_record, scenarios_from_env
from repro.workloads.scenarios import ScenarioParams, scenario_conference


@dataclass
class Fig10Result:
    num_scenarios: int
    #: n_ngbr -> (mean traffic Mbps, mean delay ms).
    points: dict[int, tuple[float, float]] = field(default_factory=dict)

    def rows(self) -> list[dict[str, object]]:
        return [
            {
                "n_ngbr": n,
                "traffic (Mbps)": self.points[n][0],
                "delay (ms)": self.points[n][1],
            }
            for n in sorted(self.points)
        ]

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per candidate-pool size."""
        return [
            result_record(
                "fig10",
                {
                    "traffic_mbps": row["traffic (Mbps)"],
                    "delay_ms": row["delay (ms)"],
                    "scenarios": self.num_scenarios,
                },
                axes={"solver.n_ngbr": row["n_ngbr"]},
            )
            for row in self.rows()
        ]

    def format_report(self) -> str:
        return render_table(
            ["n_ngbr", "traffic (Mbps)", "delay (ms)"],
            self.rows(),
            title=f"Fig. 10 - AgRank initial assignment vs n_ngbr "
            f"({self.num_scenarios} scenarios)",
        )


def run_fig10(
    num_scenarios: int | None = None,
    first_seed: int = 3000,
    n_values: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
    params: ScenarioParams | None = None,
) -> Fig10Result:
    """Run the n_ngbr sweep on unlimited-capacity scenarios."""
    count = num_scenarios if num_scenarios is not None else scenarios_from_env(12)
    result = Fig10Result(num_scenarios=count)
    for n in n_values:
        traffics: list[float] = []
        delays: list[float] = []
        for i in range(count):
            conference = scenario_conference(seed=first_seed + i, params=params)
            evaluator = ObjectiveEvaluator(
                conference, ObjectiveWeights.normalized_for(conference)
            )
            assignment = bootstrap_assignment(
                conference,
                "agrank",
                config=AgRankConfig(n_ngbr=n),
                # The sweep reports raw initial-assignment metrics; large
                # n_ngbr consolidations may exceed Dmax on single flows
                # (AgRank is not delay-aware), exactly like the paper's
                # long-delay right end of Fig. 10(b).
                check_delay=False,
            )
            total = evaluator.total(assignment)
            traffics.append(total.inter_agent_mbps)
            delays.append(total.average_delay_ms)
        result.points[n] = (float(np.mean(traffics)), float(np.mean(delays)))
    return result
