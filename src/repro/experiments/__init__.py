"""Experiment harness: one runner per table/figure of the paper's Sec. V.

Every runner is deterministic under its ``seed``, returns a result object
with a ``format_report()`` method printing the paper-shaped rows/series,
and is registered in :mod:`repro.experiments.registry` under the paper's
artifact id (``fig4`` ... ``fig10``, ``table2``, plus the ``fig2`` /
``fig3`` illustration instances and the ablation/validation experiments).

Scale: the paper averages 100 random scenarios per data point in its
Internet-scale experiments.  Runners accept ``num_scenarios`` and default
to a laptop-friendly subset; set the environment variable
``REPRO_SCENARIOS=100`` (or pass the parameter) to match the paper
exactly.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]
