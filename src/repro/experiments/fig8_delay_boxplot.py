"""Fig. 8 — box plots of conferencing delay across the alpha sweep.

Panel (a): Nrst initialization — boxes for [Nrst init, a2=0, a1=a2, a1=0];
panel (b): the same for AgRank.  Paper shape: the delay-only mix gives the
lowest boxes, traffic-only the highest, the hybrid in between and close to
delay-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import BoxStats, box_stats
from repro.analysis.tables import render_table
from repro.experiments.alpha_sweep import (
    ALPHA_CONFIGS,
    POLICIES,
    SweepOutcome,
    delays_of,
    run_alpha_sweep,
)
from repro.experiments.common import result_record, scenarios_from_env
from repro.workloads.scenarios import ScenarioParams

_COLUMNS = ("init",) + tuple(label for label, *_ in ALPHA_CONFIGS)


@dataclass
class Fig8Result:
    outcomes: list[SweepOutcome]
    num_scenarios: int
    boxes: dict[tuple[str, str], BoxStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for policy in POLICIES:
            for column in _COLUMNS:
                sample = delays_of(self.outcomes, policy, column)
                self.boxes[(policy, column)] = box_stats(sample)

    def panel_rows(self, policy: str) -> list[dict[str, object]]:
        rows = []
        for column in _COLUMNS:
            box = self.boxes[(policy, column)]
            row: dict[str, object] = {"config": column}
            row.update(box.row())
            rows.append(row)
        return rows

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per (policy, alpha mix) box."""
        records = []
        for (policy, column), box in sorted(self.boxes.items()):
            metrics: dict[str, object] = {"scenarios": box.count}
            metrics.update(box.row())
            records.append(
                result_record(
                    "fig8",
                    metrics,
                    axes={"solver.policy": policy, "alpha": column},
                )
            )
        return records

    def format_report(self) -> str:
        parts = []
        for policy, label in (("nearest", "(a) Nrst"), ("agrank", "(b) AgRank")):
            parts.append(
                render_table(
                    ["config", "lo_whisker", "q1", "median", "q3", "hi_whisker", "mean"],
                    self.panel_rows(policy),
                    title=f"Fig. 8 {label} - conferencing delay (ms), "
                    f"{self.num_scenarios} scenarios",
                )
            )
        return "\n\n".join(parts)


def run_fig8(
    num_scenarios: int | None = None,
    first_seed: int = 1000,
    beta: float = 400.0,
    hops_per_session: int = 40,
    params: ScenarioParams | None = None,
    outcomes: list[SweepOutcome] | None = None,
) -> Fig8Result:
    """Run (or reuse) the alpha sweep and compute the delay boxes.

    Pass ``outcomes`` from a Table II run to avoid recomputing the sweep.
    """
    count = num_scenarios if num_scenarios is not None else scenarios_from_env(8)
    if outcomes is None:
        outcomes = run_alpha_sweep(
            num_scenarios=count,
            first_seed=first_seed,
            params=params,
            beta=beta,
            hops_per_session=hops_per_session,
        )
    return Fig8Result(outcomes=outcomes, num_scenarios=count)
