"""Fig. 6 — Alg. 1 bootstrapped by AgRank (n_ngbr = 2).

Same prototype substrate as Fig. 4 but 100 s long, with AgRank providing
the initial assignment.  Paper shape: the initial traffic sits well below
Nrst's (15 vs 22 Mbps in the paper), and the value reached by 100 s with
AgRank matches what Nrst-boot needed 200 s to reach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.agrank import AgRankConfig
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import (
    SeriesBundle,
    effective_beta,
    percent_change,
    result_record,
)
from repro.experiments.fig4_convergence import run_fig4
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.simulation import (
    ConferencingSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.workloads.prototype import prototype_conference


@dataclass
class Fig6Result:
    bundle: SeriesBundle
    simulation: SimulationResult
    nrst_initial_traffic: float
    nrst_200s_traffic: float

    def summary_rows(self) -> list[dict[str, object]]:
        _, traffic = self.bundle.get("traffic")
        _, delay = self.bundle.get("delay")
        return [
            {
                "quantity": "initial traffic (Mbps)",
                "AgRank": float(traffic[0]),
                "Nrst": self.nrst_initial_traffic,
                "change (%)": percent_change(
                    self.nrst_initial_traffic, float(traffic[0])
                ),
            },
            {
                "quantity": "traffic at end (Mbps)",
                "AgRank": self.simulation.steady_state_mean("traffic"),
                "Nrst": self.nrst_200s_traffic,
                "change (%)": percent_change(
                    self.nrst_200s_traffic,
                    self.simulation.steady_state_mean("traffic"),
                ),
            },
            {
                "quantity": "initial delay (ms)",
                "AgRank": float(delay[0]),
                "Nrst": float("nan"),
                "change (%)": float("nan"),
            },
        ]

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per bootstrap policy."""
        _, traffic = self.bundle.get("traffic")
        _, delay = self.bundle.get("delay")
        return [
            result_record(
                "fig6",
                {
                    "traffic0_mbps": float(traffic[0]),
                    "traffic_mbps": self.simulation.steady_state_mean(
                        "traffic"
                    ),
                    "delay0_ms": float(delay[0]),
                },
                axes={"solver.policy": "agrank"},
            ),
            result_record(
                "fig6",
                {
                    "traffic0_mbps": self.nrst_initial_traffic,
                    "traffic_mbps": self.nrst_200s_traffic,
                },
                axes={"solver.policy": "nearest"},
            ),
        ]

    def format_report(self) -> str:
        return render_table(
            ["quantity", "AgRank", "Nrst", "change (%)"],
            self.summary_rows(),
            title="Fig. 6 - AgRank(n_ngbr=2) bootstrap vs Nrst (100 s vs 200 s)",
        )


def run_fig6(
    seed: int = 7,
    duration_s: float = 100.0,
    beta: float = 400.0,
    n_ngbr: int = 2,
) -> Fig6Result:
    """Run Fig. 6 and compare against the Fig. 4 (beta=400) baseline."""
    conference = prototype_conference(seed=seed)
    weights = ObjectiveWeights.normalized_for(conference)
    evaluator = ObjectiveEvaluator(conference, weights)
    schedule = DynamicsSchedule.static(range(conference.num_sessions))
    config = SimulationConfig(
        duration_s=duration_s,
        markov=MarkovConfig(beta=effective_beta(beta)),
        initial_policy="agrank",
        agrank=AgRankConfig(n_ngbr=n_ngbr),
        seed=seed,
    )
    simulation = ConferencingSimulator(evaluator, schedule, config).run()
    bundle = SeriesBundle(label=f"agrank#{n_ngbr}")
    for name in ("traffic", "delay"):
        times, values = simulation.series(name)
        bundle.add(name, times, values)

    baseline = run_fig4(seed=seed, betas=(beta,), duration_s=2 * duration_s)
    nrst_sim = baseline.simulations[beta]
    return Fig6Result(
        bundle=bundle,
        simulation=simulation,
        nrst_initial_traffic=nrst_sim.initial_value("traffic"),
        nrst_200s_traffic=nrst_sim.steady_state_mean("traffic"),
    )
