"""Fig. 5 — Alg. 1 under session dynamics.

6 sessions at t=0, 4 more arriving at t=40 s, 3 departing at t=80 s,
beta=400.  Paper shape: traffic/delay step up at the arrival, drop at the
departure, and the algorithm re-converges between events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import render_table
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.errors import ExperimentError
from repro.experiments.common import SeriesBundle, effective_beta, result_record
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.simulation import (
    ConferencingSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.workloads.prototype import prototype_conference


@dataclass
class Fig5Result:
    bundle: SeriesBundle
    simulation: SimulationResult
    arrival_time_s: float
    departure_time_s: float

    def _window_mean(self, name: str, t_lo: float, t_hi: float) -> float:
        times, values = self.bundle.get(name)
        mask = (times >= t_lo) & (times < t_hi)
        if not mask.any():
            raise ExperimentError(f"no samples of {name!r} in [{t_lo}, {t_hi})")
        return float(values[mask].mean())

    def _value_at(self, name: str, t: float) -> float:
        times, values = self.bundle.get(name)
        idx = int(np.searchsorted(times, t, side="right")) - 1
        idx = max(0, min(idx, len(values) - 1))
        return float(values[idx])

    def phase_rows(self) -> list[dict[str, object]]:
        """One row per phase: the value right after the phase starts (the
        jump/drop the paper plots) and the converged level at its end."""
        t_arr, t_dep = self.arrival_time_s, self.departure_time_s
        times, _ = self.bundle.get("traffic")
        t_end = float(times[-1])
        phases = [
            ("initial (6 sessions)", 0.0, t_arr),
            ("after arrival (10)", t_arr, t_dep),
            ("after departure (7)", t_dep, t_end),
        ]
        rows = []
        for label, lo, hi in phases:
            tail_lo = max(lo, hi - 10.0)
            rows.append(
                {
                    "phase": label,
                    "traffic@start": self._value_at("traffic", lo + 1e-9),
                    "traffic@end": self._window_mean("traffic", tail_lo, hi + 1e-9),
                    "delay@start": self._value_at("delay", lo + 1e-9),
                    "delay@end": self._window_mean("delay", tail_lo, hi + 1e-9),
                    "sessions": self._value_at("sessions", lo + 1.0),
                }
            )
        return rows

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per churn phase."""
        return [
            result_record(
                "fig5",
                {
                    "traffic0_mbps": row["traffic@start"],
                    "traffic_mbps": row["traffic@end"],
                    "delay0_ms": row["delay@start"],
                    "delay_ms": row["delay@end"],
                    "sessions": row["sessions"],
                },
                axes={"phase": row["phase"]},
            )
            for row in self.phase_rows()
        ]

    def format_report(self) -> str:
        return render_table(
            [
                "phase",
                "traffic@start",
                "traffic@end",
                "delay@start",
                "delay@end",
                "sessions",
            ],
            self.phase_rows(),
            title="Fig. 5 - Alg. 1 (beta=400) under session arrival/departure "
            "(traffic Mbps, delay ms; @end = mean of last 10 s)",
        )


def run_fig5(
    seed: int = 7,
    duration_s: float = 120.0,
    arrival_time_s: float = 40.0,
    departure_time_s: float = 80.0,
    beta: float = 400.0,
) -> Fig5Result:
    """Run the Fig. 5 experiment: 6 initial sessions, +4 at the arrival
    epoch, -3 at the departure epoch (sessions chosen deterministically)."""
    conference = prototype_conference(seed=seed)
    if conference.num_sessions < 10:
        raise ExperimentError("the Fig. 5 scenario needs 10 sessions")
    initial = tuple(range(6))
    arriving = tuple(range(6, 10))
    rng = np.random.default_rng(seed)
    departing = tuple(int(s) for s in rng.choice(6, size=3, replace=False))

    weights = ObjectiveWeights.normalized_for(conference)
    evaluator = ObjectiveEvaluator(conference, weights)
    schedule = DynamicsSchedule.fig5(
        initial, arriving, departing, arrival_time_s, departure_time_s
    )
    config = SimulationConfig(
        duration_s=duration_s,
        markov=MarkovConfig(beta=effective_beta(beta)),
        initial_policy="nearest",
        seed=seed,
    )
    simulation = ConferencingSimulator(evaluator, schedule, config).run()
    bundle = SeriesBundle(label="fig5")
    for name in ("traffic", "delay", "sessions"):
        times, values = simulation.series(name)
        bundle.add(name, times, values)
    return Fig5Result(
        bundle=bundle,
        simulation=simulation,
        arrival_time_s=arrival_time_s,
        departure_time_s=departure_time_s,
    )
