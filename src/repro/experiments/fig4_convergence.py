"""Fig. 4 — traffic/delay evolution of Alg. 1 under different beta.

Prototype conference (10 sessions, 6 agents), Nrst initial assignment,
200 s of simulated wall-clock with a 10 s mean hop interval, for
``beta in {200, 400}``.  Paper shape: both series drop from the Nrst
level; beta = 400 converges faster with smaller fluctuations; convergence
lands around 180 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.convergence import convergence_time
from repro.analysis.tables import render_table
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights
from repro.experiments.common import SeriesBundle, effective_beta, result_record
from repro.runtime.dynamics import DynamicsSchedule
from repro.runtime.simulation import (
    ConferencingSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.workloads.prototype import prototype_conference


@dataclass
class Fig4Result:
    """Per-beta trajectories plus summary statistics."""

    bundles: dict[float, SeriesBundle] = field(default_factory=dict)
    simulations: dict[float, SimulationResult] = field(default_factory=dict)

    def summary_rows(self) -> list[dict[str, object]]:
        rows = []
        for beta, bundle in sorted(self.bundles.items()):
            times, traffic = bundle.get("traffic")
            _, delay = bundle.get("delay")
            rows.append(
                {
                    "beta": int(beta),
                    "traffic0 (Mbps)": float(traffic[0]),
                    "traffic_ss (Mbps)": self.simulations[beta].steady_state_mean("traffic"),
                    "delay0 (ms)": float(delay[0]),
                    "delay_ss (ms)": self.simulations[beta].steady_state_mean("delay"),
                    "t_conv (s)": convergence_time(times, traffic),
                    "migrations": len(self.simulations[beta].migrations),
                }
            )
        return rows

    def result_records(self) -> list[dict]:
        """Schema-versioned records: one per beta trajectory."""
        return [
            result_record(
                "fig4",
                {
                    "traffic0_mbps": row["traffic0 (Mbps)"],
                    "traffic_mbps": row["traffic_ss (Mbps)"],
                    "delay0_ms": row["delay0 (ms)"],
                    "delay_ms": row["delay_ss (ms)"],
                    "t_conv_s": row["t_conv (s)"],
                    "migrations": row["migrations"],
                },
                axes={"solver.beta": row["beta"]},
            )
            for row in self.summary_rows()
        ]

    def format_report(self) -> str:
        headers = [
            "beta",
            "traffic0 (Mbps)",
            "traffic_ss (Mbps)",
            "delay0 (ms)",
            "delay_ss (ms)",
            "t_conv (s)",
            "migrations",
        ]
        return render_table(
            headers,
            self.summary_rows(),
            title="Fig. 4 - Alg. 1 from Nrst init, prototype conference",
        )


def run_fig4(
    seed: int = 7,
    betas: tuple[float, ...] = (200.0, 400.0),
    duration_s: float = 200.0,
    hop_interval_mean_s: float = 10.0,
) -> Fig4Result:
    """Run the Fig. 4 experiment; deterministic under ``seed``."""
    conference = prototype_conference(seed=seed)
    weights = ObjectiveWeights.normalized_for(conference)
    evaluator = ObjectiveEvaluator(conference, weights)
    schedule = DynamicsSchedule.static(range(conference.num_sessions))

    result = Fig4Result()
    for beta in betas:
        config = SimulationConfig(
            duration_s=duration_s,
            hop_interval_mean_s=hop_interval_mean_s,
            markov=MarkovConfig(beta=effective_beta(beta)),
            initial_policy="nearest",
            seed=seed,
        )
        simulation = ConferencingSimulator(evaluator, schedule, config).run()
        bundle = SeriesBundle(label=f"beta={beta:g}")
        for name in ("traffic", "delay"):
            times, values = simulation.series(name)
            bundle.add(name, times, values)
        result.bundles[beta] = bundle
        result.simulations[beta] = simulation
    return result
