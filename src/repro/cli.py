"""Command-line interface: ``repro list`` / ``repro run <experiment>``.

Examples::

    repro list
    repro run fig4
    repro run table2 --scenarios 100
    repro run fig7 --csv out/fig7.csv
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.experiments.common import SCENARIOS_ENV
from repro.experiments.registry import EXPERIMENTS, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Cost-Effective Low-Delay Cloud Video "
            "Conferencing' (ICDCS 2015)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run = subparsers.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--scenarios",
        type=int,
        default=None,
        help="number of random scenarios (Internet-scale experiments; "
        "the paper uses 100)",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    run.add_argument(
        "--csv",
        default="",
        help="also write raw series rows to this CSV file (figures only)",
    )
    return parser


def _collect_csv_rows(result: object) -> list[str]:
    rows: list[str] = []
    bundles = getattr(result, "bundles", None)
    if isinstance(bundles, dict):
        for bundle in bundles.values():
            rows.extend(bundle.csv_rows())
    bundle = getattr(result, "bundle", None)
    if bundle is not None:
        rows.extend(bundle.csv_rows())
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid in sorted(EXPERIMENTS):
            print(f"{eid:<{width}}  {EXPERIMENTS[eid].description}")
        return 0

    spec = get_experiment(args.experiment)
    kwargs = {}
    if args.scenarios is not None:
        os.environ[SCENARIOS_ENV] = str(args.scenarios)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = spec.runner(**kwargs)
    print(result.format_report())

    if args.csv:
        rows = _collect_csv_rows(result)
        if rows:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write("label,series,time_s,value\n")
                handle.write("\n".join(rows))
                handle.write("\n")
            print(f"\nwrote {len(rows)} series rows to {args.csv}")
        else:
            print("\n(no series data to export for this experiment)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
