"""Command-line interface: paper experiments and the fleet orchestrator.

Examples::

    repro list
    repro run fig4
    repro run table2 --scenarios 100
    repro run fig7 --csv out/fig7.csv
    repro run fig4 --jsonl out/fig4.jsonl

    repro fleet list
    repro fleet run prototype_smoke --workers 2
    repro fleet run my_spec.yaml --out runs/my_spec
    repro fleet run prototype_smoke --backend subprocess --budget 60
    repro fleet run prototype_smoke --backend pool --workers 4
    repro fleet run prototype_smoke --backend remote --hosts h1,h2
    repro fleet sweep beta_locality --replicates 4 --halving 1,2 --asha
    repro fleet sweep beta_locality --axis solver.beta=200,400 --replicates 3
    repro fleet sweep beta_locality --replicates 4 --halving 1,2
    repro fleet run prototype_smoke --telemetry --progress
    repro fleet report fleet_runs/prototype_smoke
    repro fleet report fleet_runs/prototype_smoke --telemetry
    repro fleet report runs/base --compare runs/beta200 --csv cmp.csv
    repro fleet report --compare runs/base runs/beta200 --html cmp.html

    repro trace generate --kind poisson --rate 0.1 --max-sessions 4 --seed 7 --out churn.csv
    repro trace validate churn.csv --sessions 4
    repro trace play churn.csv --spec prototype_smoke
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import SpecError
from repro.experiments.common import SCENARIOS_ENV
from repro.experiments.registry import experiment_ids, get_experiment, list_experiments
from repro.log import configure as _configure_logging
from repro.log import get_logger

#: CLI status/diagnostic channel: everything conversational goes through
#: this stderr logger (gated by -v/-q); deliverable output — reports,
#: tables, JSON, CSV — stays on stdout via ``print``.
_LOG = get_logger("cli")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Cost-Effective Low-Delay Cloud Video "
            "Conferencing' (ICDCS 2015)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="show debug-level status messages on stderr",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress status messages on stderr (errors still show)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run = subparsers.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=experiment_ids())
    run.add_argument(
        "--scenarios",
        type=int,
        default=None,
        help="number of random scenarios (Internet-scale experiments; "
        "the paper uses 100)",
    )
    run.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    run.add_argument(
        "--csv",
        default="",
        help="also write raw series rows to this CSV file (figures only)",
    )
    run.add_argument(
        "--jsonl",
        default="",
        metavar="PATH",
        help="also write the result as schema-versioned JSONL records "
        "(the fleet results.jsonl shape; see DESIGN.md 'Result records')",
    )

    fleet = subparsers.add_parser(
        "fleet", help="declarative scenario specs + parallel orchestration"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_sub.add_parser("list", help="list bundled library specs")

    def add_exec_args(sub: argparse.ArgumentParser) -> None:
        from repro.fleet.spec import BACKEND_KINDS

        sub.add_argument(
            "spec", help="path to a YAML/JSON spec, or a library spec name"
        )
        sub.add_argument(
            "--out",
            default="",
            help="output directory (default fleet_runs/<spec name>)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes (<= 1 runs serially; default: the "
            "spec's execution.workers)",
        )
        sub.add_argument(
            "--backend",
            choices=BACKEND_KINDS,
            default=None,
            help="execution backend (default: the spec's "
            "execution.backend, normally 'local')",
        )
        sub.add_argument(
            "--budget",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-unit wall-time budget; over-budget units are "
            "recorded as status 'timeout' (default: the spec's "
            "execution.unit_timeout_s)",
        )
        sub.add_argument(
            "--total-budget",
            type=float,
            default=None,
            metavar="SECONDS",
            help="fleet-level wall-clock allowance; once spent, the "
            "scheduler stops dispatching and records remaining units "
            "as status 'unscheduled' (default: the spec's "
            "execution.total_budget_s)",
        )
        sub.add_argument(
            "--halving",
            default="",
            metavar="R1[,R2...]",
            help="successive-halving rungs: after each cumulative "
            "replicate count, keep the best ceil(n/eta) grid points "
            "and record the rest as status 'pruned'",
        )
        sub.add_argument(
            "--asha",
            action="store_true",
            help="asynchronous successive halving: promote/prune grid "
            "points the moment enough completed peers prove the "
            "decision, instead of barriering per rung (records stay "
            "byte-identical to synchronous halving)",
        )
        sub.add_argument(
            "--hosts",
            default="",
            metavar="H1[,H2...]",
            help="host inventory for the remote backend (sets "
            "execution.hosts; use with --backend remote)",
        )
        sub.add_argument(
            "--no-resume",
            action="store_true",
            help="ignore cached results and re-execute every run",
        )
        sub.add_argument(
            "--telemetry",
            action="store_true",
            help="collect span/counter telemetry (telemetry.jsonl beside "
            "results.jsonl + timings/counters record blocks); results "
            "stay bit-identical either way",
        )
        sub.add_argument(
            "--progress",
            action="store_true",
            help="live stderr progress ticker (done/running/pruned/"
            "timeout counts + rolling ETA)",
        )
        sub.add_argument(
            "--set",
            dest="overrides",
            action="append",
            default=[],
            metavar="PATH=VALUE",
            help="override a scalar spec field, e.g. solver.beta=200",
        )

    fleet_run = fleet_sub.add_parser(
        "run", help="execute a spec's run matrix end to end"
    )
    add_exec_args(fleet_run)

    fleet_sweep = fleet_sub.add_parser(
        "sweep", help="run a spec with sweep axes given on the command line"
    )
    add_exec_args(fleet_sweep)
    fleet_sweep.add_argument(
        "--axis",
        dest="axes",
        action="append",
        default=[],
        metavar="PATH=V1,V2,...",
        help="sweep axis, e.g. --axis solver.beta=200,400 (repeatable)",
    )
    fleet_sweep.add_argument(
        "--replicates",
        type=int,
        default=None,
        help="seed replicates per grid point",
    )

    fleet_report = fleet_sub.add_parser(
        "report",
        help="re-aggregate finished fleet run directories; with several "
        "directories, render a spec-diff x metric-delta comparison",
    )
    fleet_report.add_argument(
        "out_dir",
        nargs="*",
        help="directories holding results.jsonl (first = baseline)",
    )
    fleet_report.add_argument(
        "--compare",
        dest="compare",
        nargs="+",
        default=[],
        metavar="DIR",
        help="additional run directories to compare against the baseline",
    )
    fleet_report.add_argument(
        "--csv",
        default="",
        metavar="PATH",
        help="write the spec-diff + metric-delta comparison as CSV",
    )
    fleet_report.add_argument(
        "--html",
        default="",
        metavar="PATH",
        help="write a self-contained HTML dashboard (inline SVG sparklines)",
    )
    fleet_report.add_argument(
        "--telemetry",
        action="store_true",
        help="also render the telemetry section (phase-time breakdown, "
        "cache hit rates, solver counters) from each run's "
        "telemetry.jsonl; the HTML dashboard gains a bar-chart panel",
    )

    trace = subparsers.add_parser(
        "trace", help="churn traces: generate, validate and play them"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    generate = trace_sub.add_parser(
        "generate", help="synthesize a seeded stochastic session trace"
    )
    generate.add_argument(
        "--kind",
        choices=("poisson", "mmpp", "diurnal"),
        default="poisson",
        help="arrival process family (default poisson)",
    )
    generate.add_argument(
        "--rate", type=float, default=0.05, help="mean arrivals per second"
    )
    generate.add_argument(
        "--mean-holding",
        type=float,
        default=60.0,
        help="mean session holding time in seconds",
    )
    generate.add_argument(
        "--holding",
        choices=("exponential", "lognormal"),
        default="exponential",
        help="holding-time distribution",
    )
    generate.add_argument(
        "--holding-sigma",
        type=float,
        default=0.5,
        help="lognormal holding shape parameter",
    )
    generate.add_argument(
        "--burst-rate",
        type=float,
        default=0.0,
        help="mmpp: burst-state arrival rate (>= --rate)",
    )
    generate.add_argument(
        "--mean-burst",
        type=float,
        default=20.0,
        help="mmpp: mean burst dwell in seconds",
    )
    generate.add_argument(
        "--mean-calm",
        type=float,
        default=60.0,
        help="mmpp: mean calm dwell in seconds",
    )
    generate.add_argument(
        "--diurnal-period",
        type=float,
        default=240.0,
        help="diurnal: modulation period in seconds",
    )
    generate.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.5,
        help="diurnal: relative rate amplitude in [0, 1)",
    )
    generate.add_argument(
        "--duration", type=float, default=200.0, help="trace horizon in seconds"
    )
    generate.add_argument(
        "--initial", type=int, default=1, help="sessions active at t=0"
    )
    generate.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="session id pool size (arrivals beyond it are blocked)",
    )
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument(
        "--out",
        default="",
        metavar="PATH",
        help="trace file to write (default: CSV on stdout)",
    )
    generate.add_argument(
        "--format",
        choices=("csv", "jsonl"),
        default="",
        help="output format (default: by --out suffix, else csv)",
    )

    def add_trace_input(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "trace", help="trace file path, or '-' to read CSV/JSONL from stdin"
        )
        sub.add_argument(
            "--format",
            choices=("csv", "jsonl"),
            default="",
            help="input format (default: by file suffix; csv for stdin)",
        )

    validate = trace_sub.add_parser(
        "validate", help="parse a trace and check its invariants"
    )
    add_trace_input(validate)
    validate.add_argument(
        "--sessions",
        type=int,
        default=None,
        help="also check every sid against this session-pool size",
    )

    play = trace_sub.add_parser(
        "play", help="simulate a trace end to end and print its metrics record"
    )
    add_trace_input(play)
    play.add_argument(
        "--spec",
        default="",
        help="base spec (library name or file) providing workload/solver; "
        "default: a prototype workload sized to the trace",
    )
    play.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulation horizon (default: the spec's, or the trace end "
        "plus two hop intervals)",
    )
    play.add_argument(
        "--seed", type=int, default=None, help="override the simulation seed"
    )

    serve = subparsers.add_parser(
        "serve",
        help="long-lived online placement service (arrive/depart/resize "
        "over HTTP, incremental re-solve; see DESIGN.md 'Service mode')",
    )
    serve.add_argument(
        "--spec",
        default="prototype_smoke",
        help="base spec (library name or file) providing workload/solver "
        "(default prototype_smoke); its churn and sweep sections are "
        "ignored — the service is driven externally",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 = ephemeral; default 8642)",
    )
    serve.add_argument(
        "--initial",
        type=int,
        default=1,
        help="sessions active at startup when not driving a trace "
        "(sids 0..N-1; default 1)",
    )
    serve.add_argument(
        "--drive",
        default="",
        metavar="TRACE",
        help="replay this trace file as service load, print the drive "
        "report and exit (the trace's t=0 arrivals become the initial "
        "conference)",
    )
    serve.add_argument(
        "--http",
        action="store_true",
        help="with --drive: route the replay through a loopback HTTP "
        "server instead of in-process calls",
    )
    serve.add_argument(
        "--budget-ms",
        type=float,
        default=50.0,
        help="per-event latency budget in ms — observational only: "
        "overruns are counted in /metrics, decisions never depend on "
        "wall time (default 50)",
    )
    serve.add_argument(
        "--refine-hops",
        type=int,
        default=2,
        help="greedy re-solve hops after each arrival/resize splice "
        "(deterministic; 0 disables refinement; default 2)",
    )
    serve.add_argument(
        "--decisions",
        default="",
        metavar="PATH",
        help="append every placement decision to this JSONL log "
        "(byte-identical across replays of one request log)",
    )
    serve.add_argument(
        "--metrics-out",
        default="",
        metavar="PATH",
        help="rolling service.jsonl metrics snapshots",
    )
    serve.add_argument(
        "--flush-every",
        type=int,
        default=100,
        help="decisions between rolling metrics snapshots (default 100)",
    )
    serve.add_argument(
        "--seed", type=int, default=None, help="override the simulation seed"
    )
    serve.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help="override a scalar spec field, e.g. solver.beta=200",
    )
    return parser


def _collect_result_records(result: object) -> list[dict]:
    """Schema-versioned records of an experiment result (if it emits any)."""
    emit = getattr(result, "result_records", None)
    return emit() if callable(emit) else []


def _collect_csv_rows(result: object) -> list[str]:
    rows: list[str] = []
    bundles = getattr(result, "bundles", None)
    if isinstance(bundles, dict):
        for bundle in bundles.values():
            rows.extend(bundle.csv_rows())
    bundle = getattr(result, "bundle", None)
    if bundle is not None:
        rows.extend(bundle.csv_rows())
    return rows


def _parse_scalar(raw: str) -> object:
    """CLI value -> scalar, with the same coercion a YAML spec gets, so
    ``--set solver.beta=200`` and ``beta: 200`` in a file resolve (and
    content-hash) identically."""
    import yaml

    try:
        value = yaml.safe_load(raw)
    except yaml.YAMLError:
        return raw
    return raw if isinstance(value, (dict, list)) or value is None else value


def _split_assignment(raw: str, flag: str) -> tuple[str, str]:
    if "=" not in raw:
        raise SpecError(f"{flag} expects PATH=VALUE, got {raw!r}")
    path, _, value = raw.partition("=")
    if not path or not value:
        raise SpecError(f"{flag} expects PATH=VALUE, got {raw!r}")
    return path, value


def _resolve_spec(reference: str):
    from repro.fleet import load_library_spec, load_spec
    from repro.fleet.library import library_spec_names

    candidate = Path(reference)
    if candidate.suffix.lower() in (".yaml", ".yml", ".json"):
        return load_spec(candidate)
    # Bare names prefer the library, so a stray local file or output
    # directory that happens to share a spec's name cannot shadow it.
    if reference in library_spec_names():
        return load_library_spec(reference)
    if candidate.is_file():
        return load_spec(candidate)
    raise SpecError(
        f"{reference!r} is neither a spec file nor a library spec; "
        f"library specs: {list(library_spec_names())}"
    )


def _run_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetOrchestrator

    spec = _resolve_spec(args.spec)

    from repro.fleet.spec import apply_override

    overrides: dict[str, object] = {}
    for raw in args.overrides:
        path, value = _split_assignment(raw, "--set")
        overrides[path] = _parse_scalar(value)
    axes = getattr(args, "axes", None)
    replicates = getattr(args, "replicates", None)
    if (
        overrides
        or axes
        or replicates is not None
        or args.halving
        or args.asha
        or args.hosts
    ):
        data = spec.to_dict()
        if axes:
            data["sweep"]["axes"] = [
                {
                    "path": path,
                    "values": [_parse_scalar(v) for v in values.split(",")],
                }
                for path, values in (
                    _split_assignment(raw, "--axis") for raw in axes
                )
            ]
        if replicates is not None:
            data["sweep"]["replicates"] = replicates
        if args.halving:
            try:
                rungs = [
                    int(rung) for rung in args.halving.split(",") if rung
                ]
            except ValueError:
                raise SpecError(
                    f"--halving expects comma-separated integers, "
                    f"got {args.halving!r}"
                ) from None
            data["execution"]["halving"]["rungs"] = rungs
        if args.asha:
            data["execution"]["halving"]["asynchronous"] = True
        if args.hosts:
            data["execution"]["hosts"] = [
                host.strip()
                for host in args.hosts.split(",")
                if host.strip()
            ]
        for path, value in overrides.items():
            apply_override(data, path, value)
        spec = type(spec).from_dict(data)

    out_dir = args.out or str(Path("fleet_runs") / spec.name)
    orchestrator = FleetOrchestrator(
        out_dir,
        workers=args.workers,
        resume=not args.no_resume,
        backend=args.backend,
        unit_timeout_s=args.budget,
        telemetry=True if args.telemetry else None,
        total_budget_s=args.total_budget,
        progress=args.progress,
    )
    result = orchestrator.run(spec)
    print(result.format_report())
    if args.telemetry or result.telemetry_path.exists():
        _LOG.info("wrote telemetry to %s", result.telemetry_path)
    return 1 if result.failed or result.timed_out else 0


def _read_trace(args: argparse.Namespace):
    """Events of the trace named on the command line (file or stdin)."""
    from repro.runtime.traces import load_trace, parse_trace

    if args.trace == "-":
        fmt = args.format or "csv"
        return parse_trace(sys.stdin.read(), fmt=fmt, origin="<stdin>")
    return load_trace(args.trace, fmt=args.format)


def _generate_trace(args: argparse.Namespace) -> int:
    from repro.runtime.traces import SessionProcess, dump_trace, format_trace

    process = SessionProcess(
        kind=args.kind,
        rate_per_s=args.rate,
        mean_holding_s=args.mean_holding,
        holding=args.holding,
        holding_sigma=args.holding_sigma,
        burst_rate_per_s=args.burst_rate,
        mean_burst_s=args.mean_burst,
        mean_calm_s=args.mean_calm,
        diurnal_period_s=args.diurnal_period,
        diurnal_amplitude=args.diurnal_amplitude,
        initial=args.initial,
        max_sessions=args.max_sessions,
        seed=args.seed,
    )
    events = process.trace(args.duration)
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        if args.format:
            Path(args.out).write_text(
                format_trace(events, fmt=args.format), encoding="utf-8"
            )
        else:
            dump_trace(events, args.out)
        _LOG.info("wrote %d trace events to %s", len(events), args.out)
        return 0
    fmt = args.format or "csv"
    sys.stdout.write(format_trace(events, fmt=fmt))
    return 0


def _validate_trace(args: argparse.Namespace) -> int:
    from repro.runtime.traces import validate_trace

    events = _read_trace(args)
    initial = validate_trace(events, max_sessions=args.sessions)
    active = len(initial)
    peak = active
    for event in events:
        if event.time_s == 0.0 and event.kind == "arrive":
            continue
        if event.kind == "arrive":
            active += 1
            peak = max(peak, active)
        elif event.kind == "depart":
            active -= 1
    sids = {event.sid for event in events}
    last = events[-1].time_s if events else 0.0
    print(
        f"trace ok: {len(events)} events, {len(sids)} distinct sessions, "
        f"{len(initial)} initial, peak {peak} concurrent, "
        f"final {active} active, horizon {last:g}s"
    )
    return 0


def _play_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.fleet import execute_trace
    from repro.fleet.spec import RunSpec, apply_override

    events = _read_trace(args)
    if not events:
        raise SpecError("trace is empty: nothing to play")
    horizon = max(event.time_s for event in events)
    if args.spec:
        spec = _resolve_spec(args.spec)
        data = spec.to_dict()
    else:
        pool = max(event.sid for event in events) + 1
        spec = RunSpec(name="trace-play")
        data = spec.to_dict()
        apply_override(data, "workload.num_sessions", max(pool, 2))
        hop_mean = spec.simulation.hop_interval_mean_s
        apply_override(
            data, "simulation.duration_s", horizon + 2.0 * hop_mean
        )
    if args.duration is not None:
        apply_override(data, "simulation.duration_s", args.duration)
    if args.seed is not None:
        apply_override(data, "simulation.seed", args.seed)
    record = execute_trace(events, RunSpec.from_dict(data))
    print(_json.dumps(record, sort_keys=True, indent=2))
    return 0


def _serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.fleet.spec import RunSpec, apply_override
    from repro.service import (
        HTTPServiceClient,
        InProcessClient,
        ServiceConfig,
        ServiceServer,
        drive_trace,
        service_from_spec,
    )
    from repro.service.drive import initial_sids_of
    from repro.runtime.traces import load_trace

    spec = _resolve_spec(args.spec)
    data = spec.to_dict()
    for raw in args.overrides:
        path, value = _split_assignment(raw, "--set")
        apply_override(data, path, _parse_scalar(value))
    if args.seed is not None:
        apply_override(data, "simulation.seed", args.seed)
    spec = RunSpec.from_dict(data)

    events = None
    if args.drive:
        events = load_trace(args.drive)
        initial = initial_sids_of(events)
    else:
        initial = list(range(max(1, args.initial)))

    config = ServiceConfig(
        budget_ms=args.budget_ms,
        refine_hops=args.refine_hops,
        decision_log=args.decisions,
        metrics_log=args.metrics_out,
        metrics_flush_every=args.flush_every,
    )
    service = service_from_spec(spec, initial_sids=initial, config=config)
    _LOG.info(
        "service warm: spec %s, %d initial session(s), refine_hops=%d",
        spec.name,
        len(initial),
        config.refine_hops,
    )

    if events is not None:
        server = None
        try:
            if args.http:
                server = ServiceServer(service, host=args.host, port=0).start()
                client = HTTPServiceClient(server.url)
                _LOG.info("driving over loopback HTTP at %s", server.url)
            else:
                client = InProcessClient(service)
            report = drive_trace(client, events)
        finally:
            if server is not None:
                server.shutdown()
        summary = report.as_dict()
        summary["metrics"] = service.stats.snapshot()
        print(_json.dumps(summary, sort_keys=True, indent=2))
        return 1 if report.errors else 0

    server = ServiceServer(service, host=args.host, port=args.port)
    _LOG.info(
        "serving on %s (POST /v1/arrive|depart|resize|resolve|request, "
        "GET /v1/snapshot /metrics /healthz; POST /v1/shutdown or Ctrl-C "
        "to stop)",
        server.url,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _LOG.info("interrupted; shutting down")
        server.shutdown()
    return 0


def _report_fleet(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        compare_fleets,
        comparison_csv,
        load_fleet_runs,
        render_comparison,
        render_run_report,
    )

    dirs = list(args.out_dir) + list(args.compare)
    if not dirs:
        raise SpecError(
            "fleet report needs at least one run directory "
            "(positional or via --compare)"
        )
    runs = load_fleet_runs(dirs)

    def print_telemetry_sections() -> None:
        from repro.analysis.report import render_telemetry_report

        for run in runs:
            print()
            print(render_telemetry_report(run.path))

    if len(runs) == 1:
        # A lone directory always gets its text report (even when every
        # unit failed); the CSV/HTML artifacts need successful records,
        # so requesting them for an all-failed run raises the
        # compare_fleets diagnostic below instead of silently emitting
        # empty artifacts.
        print(render_run_report(runs[0]))
        if args.telemetry:
            print_telemetry_sections()
        if not (args.csv or args.html):
            return 0
    comparison = compare_fleets(runs)
    if len(runs) > 1:
        print(render_comparison(comparison))
        if args.telemetry:
            print_telemetry_sections()
    if args.csv:
        Path(args.csv).write_text(comparison_csv(comparison), encoding="utf-8")
        _LOG.info("wrote comparison CSV to %s", args.csv)
    if args.html:
        from repro.analysis.html import render_html

        telemetry = None
        if args.telemetry:
            from repro.analysis.report import telemetry_breakdown

            telemetry = {
                run.label: telemetry_breakdown(run.path) for run in runs
            }
        Path(args.html).write_text(
            render_html(comparison, telemetry=telemetry), encoding="utf-8"
        )
        _LOG.info("wrote HTML dashboard to %s", args.html)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (repro list | head).
        # Detach stdout so the interpreter's shutdown flush stays quiet,
        # then exit like a well-behaved unix tool.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(argv: Sequence[str] | None) -> int:
    args = _build_parser().parse_args(argv)
    _configure_logging((-1 if args.quiet else 0) + (1 if args.verbose else 0))

    if args.command == "list":
        specs = list_experiments()
        width = max(len(spec.experiment_id) for spec in specs)
        for spec in specs:
            print(f"{spec.experiment_id:<{width}}  {spec.description}")
        return 0

    if args.command == "fleet":
        try:
            if args.fleet_command == "list":
                from repro.fleet import load_library_spec
                from repro.fleet.library import library_spec_names

                names = library_spec_names()
                if not names:
                    print("(no library specs found)")
                    return 0
                width = max(len(name) for name in names)
                for name in names:
                    spec = load_library_spec(name)
                    summary = " ".join(spec.description.split())
                    print(f"{name:<{width}}  {summary}")
                return 0
            if args.fleet_command == "report":
                return _report_fleet(args)
            return _run_fleet(args)
        except SpecError as error:
            _LOG.error("error: %s", error)
            return 2

    if args.command == "trace":
        from repro.errors import ReproError

        try:
            if args.trace_command == "generate":
                return _generate_trace(args)
            if args.trace_command == "validate":
                return _validate_trace(args)
            return _play_trace(args)
        except ReproError as error:
            _LOG.error("error: %s", error)
            return 2

    if args.command == "serve":
        from repro.errors import ReproError

        try:
            return _serve(args)
        except ReproError as error:
            _LOG.error("error: %s", error)
            return 2

    spec = get_experiment(args.experiment)
    kwargs = {}
    if args.scenarios is not None:
        os.environ[SCENARIOS_ENV] = str(args.scenarios)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = spec.runner(**kwargs)
    print(result.format_report())

    if args.csv:
        rows = _collect_csv_rows(result)
        if rows:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write("label,series,time_s,value\n")
                handle.write("\n".join(rows))
                handle.write("\n")
            _LOG.info("wrote %d series rows to %s", len(rows), args.csv)
        else:
            _LOG.warning("(no series data to export for this experiment)")

    if args.jsonl:
        records = _collect_result_records(result)
        if records:
            from repro.analysis.report import validate_record, write_records

            for record in records:
                validate_record(record)  # corrupt records never reach disk
            count = write_records(records, args.jsonl)
            _LOG.info("wrote %d result records to %s", count, args.jsonl)
        else:
            _LOG.warning("(no result records to export for this experiment)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
