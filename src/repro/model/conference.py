"""The Conference aggregate: validated model + derived quantities.

A :class:`Conference` binds users, sessions, agents and the delay topology
together, validates global invariants (dense ids, one session per user,
matrix shapes) and precomputes everything the optimization core consumes on
its hot path:

* the transcoding matrix ``theta`` (Sec. II) — ``theta[u, v] = 1`` iff
  ``u`` and ``v`` share a session and ``v`` demands a representation of
  ``u``'s stream that differs from ``u``'s upstream;
* the global ordered tuple of transcoding pairs ``(u, v)`` — the tasks whose
  placement is the second decision dimension (``theta_sum`` of them);
* per-session views (user ids, pair indices) and dense bitrate arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelError, UnknownEntityError
from repro.model.agent import Agent
from repro.model.representation import Representation, RepresentationSet
from repro.model.topology import Topology
from repro.model.user import Session, User
from repro.types import DEFAULT_DMAX_MS


class Conference:
    """Immutable description of one conferencing deployment.

    Parameters
    ----------
    users:
        All users, with dense ids ``0..U-1`` (any order).
    sessions:
        All sessions, with dense ids ``0..S-1``; they must partition the
        user set.
    agents:
        All agents, with dense ids ``0..L-1``.
    topology:
        Delay matrices sized ``L x L`` and ``L x U``.
    representations:
        The representation universe R; every upstream/downstream
        representation used by a user must be a member.
    dmax_ms:
        The end-to-end delay cap of constraint (8).
    """

    def __init__(
        self,
        users: Sequence[User],
        sessions: Sequence[Session],
        agents: Sequence[Agent],
        topology: Topology,
        representations: RepresentationSet,
        dmax_ms: float = DEFAULT_DMAX_MS,
    ):
        self._users = tuple(sorted(users, key=lambda u: u.uid))
        self._sessions = tuple(sorted(sessions, key=lambda s: s.sid))
        self._agents = tuple(sorted(agents, key=lambda a: a.aid))
        self._topology = topology
        self._representations = representations
        if dmax_ms <= 0:
            raise ModelError(f"dmax_ms must be positive, got {dmax_ms}")
        self._dmax_ms = float(dmax_ms)
        self._validate()
        self._derive()

    # ------------------------------------------------------------------ #
    # Validation and derivation                                          #
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if not self._agents:
            raise ModelError("a conference needs at least one agent")
        if [u.uid for u in self._users] != list(range(len(self._users))):
            raise ModelError("user ids must be dense 0..U-1")
        if [s.sid for s in self._sessions] != list(range(len(self._sessions))):
            raise ModelError("session ids must be dense 0..S-1")
        if [a.aid for a in self._agents] != list(range(len(self._agents))):
            raise ModelError("agent ids must be dense 0..L-1")

        seen: dict[int, int] = {}
        for session in self._sessions:
            for uid in session.user_ids:
                if uid >= len(self._users):
                    raise UnknownEntityError(
                        f"session {session.sid} references unknown user {uid}"
                    )
                if uid in seen:
                    raise ModelError(
                        f"user {uid} is in sessions {seen[uid]} and {session.sid}; "
                        "each user participates in exactly one session"
                    )
                seen[uid] = session.sid
        if len(seen) != len(self._users):
            orphans = sorted(set(range(len(self._users))) - set(seen))
            raise ModelError(f"users without a session: {orphans}")

        if self._topology.num_agents != len(self._agents):
            raise ModelError(
                f"topology has {self._topology.num_agents} agents, "
                f"model has {len(self._agents)}"
            )
        if self._topology.num_users != len(self._users):
            raise ModelError(
                f"topology has {self._topology.num_users} users, "
                f"model has {len(self._users)}"
            )

        for user in self._users:
            if user.upstream not in self._representations:
                raise ModelError(
                    f"user {user.uid} upstream {user.upstream} not in the "
                    "representation set"
                )
            if user.downstream_default not in self._representations:
                raise ModelError(
                    f"user {user.uid} downstream default "
                    f"{user.downstream_default} not in the representation set"
                )
            for source, rep in user.downstream_overrides.items():
                if rep not in self._representations:
                    raise ModelError(
                        f"user {user.uid} downstream override for {source} "
                        f"({rep}) not in the representation set"
                    )

    def _derive(self) -> None:
        num_users = len(self._users)
        self._session_of = np.empty(num_users, dtype=np.int64)
        for session in self._sessions:
            for uid in session.user_ids:
                self._session_of[uid] = session.sid
        self._session_of.setflags(write=False)

        self._kappa_up = np.array(
            [u.upstream.bitrate_mbps for u in self._users], dtype=float
        )
        self._kappa_up.setflags(write=False)

        theta = np.zeros((num_users, num_users), dtype=bool)
        pairs: list[tuple[int, int]] = []
        for session in self._sessions:
            for u in session.user_ids:
                source = self._users[u]
                for v in session.user_ids:
                    if v == u:
                        continue
                    demanded = self._users[v].downstream_from(u)
                    if demanded != source.upstream:
                        theta[u, v] = True
                        pairs.append((u, v))
        theta.setflags(write=False)
        self._theta = theta
        self._pairs: tuple[tuple[int, int], ...] = tuple(pairs)
        self._pair_index: dict[tuple[int, int], int] = {
            pair: i for i, pair in enumerate(self._pairs)
        }
        self._session_pairs: tuple[tuple[int, ...], ...] = tuple(
            tuple(
                i
                for i, (u, _v) in enumerate(self._pairs)
                if self._session_of[u] == session.sid
            )
            for session in self._sessions
        )

    # ------------------------------------------------------------------ #
    # Entity access                                                      #
    # ------------------------------------------------------------------ #

    @property
    def users(self) -> tuple[User, ...]:
        return self._users

    @property
    def sessions(self) -> tuple[Session, ...]:
        return self._sessions

    @property
    def agents(self) -> tuple[Agent, ...]:
        return self._agents

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def representations(self) -> RepresentationSet:
        return self._representations

    @property
    def dmax_ms(self) -> float:
        return self._dmax_ms

    @property
    def num_users(self) -> int:
        return len(self._users)

    @property
    def num_sessions(self) -> int:
        return len(self._sessions)

    @property
    def num_agents(self) -> int:
        return len(self._agents)

    def user(self, uid: int) -> User:
        try:
            return self._users[uid]
        except IndexError:
            raise UnknownEntityError(f"unknown user {uid}") from None

    def session(self, sid: int) -> Session:
        try:
            return self._sessions[sid]
        except IndexError:
            raise UnknownEntityError(f"unknown session {sid}") from None

    def agent(self, aid: int) -> Agent:
        try:
            return self._agents[aid]
        except IndexError:
            raise UnknownEntityError(f"unknown agent {aid}") from None

    def session_of(self, uid: int) -> int:
        """``s(u)`` — the session id of user ``uid``."""
        if not 0 <= uid < len(self._users):
            raise UnknownEntityError(f"unknown user {uid}")
        return int(self._session_of[uid])

    def participants(self, uid: int) -> tuple[int, ...]:
        """``P(u)`` — ids of the other users in ``uid``'s session."""
        return self._sessions[self.session_of(uid)].others(uid)

    # ------------------------------------------------------------------ #
    # Transcoding structure                                              #
    # ------------------------------------------------------------------ #

    @property
    def theta(self) -> np.ndarray:
        """The U x U transcoding matrix (read-only bool array)."""
        return self._theta

    @property
    def transcode_pairs(self) -> tuple[tuple[int, int], ...]:
        """All ``(source, destination)`` pairs with ``theta = 1``, in a
        fixed global order; the task-assignment vector is aligned to it."""
        return self._pairs

    @property
    def theta_sum(self) -> int:
        """Total number of transcoding tasks (``theta_sum`` in Thm. 1)."""
        return len(self._pairs)

    def pair_index(self, source: int, destination: int) -> int:
        """Position of the ``(source, destination)`` task in the global order."""
        try:
            return self._pair_index[(source, destination)]
        except KeyError:
            raise UnknownEntityError(
                f"no transcoding task for flow {source} -> {destination}"
            ) from None

    def session_pair_indices(self, sid: int) -> tuple[int, ...]:
        """Indices of the transcoding pairs belonging to session ``sid``."""
        if not 0 <= sid < len(self._sessions):
            raise UnknownEntityError(f"unknown session {sid}")
        return self._session_pairs[sid]

    def demanded_representation(self, source: int, destination: int) -> Representation:
        """``r^d_{v,u}`` — what ``destination`` demands of ``source``'s stream."""
        return self._users[destination].downstream_from(source)

    def upstream_kappa(self) -> np.ndarray:
        """Per-user upstream bitrates ``kappa(r^u_u)`` (read-only array)."""
        return self._kappa_up

    # ------------------------------------------------------------------ #
    # Convenience                                                        #
    # ------------------------------------------------------------------ #

    def state_space_log_size(self) -> float:
        """``(U + theta_sum) * log(L)`` — the log of the assignment-space
        size, which calibrates beta (Sec. V-A) and the Eq. (12) bound."""
        return (self.num_users + self.theta_sum) * float(np.log(self.num_agents))

    def describe(self) -> str:
        """A short multi-line summary for logs and examples."""
        lines = [
            f"Conference: {self.num_users} users, {self.num_sessions} sessions, "
            f"{self.num_agents} agents, {self.theta_sum} transcoding tasks",
            f"  dmax = {self._dmax_ms:g} ms; representations: "
            f"{', '.join(self._representations.names)}",
        ]
        for session in self._sessions:
            members = ", ".join(self._users[u].name for u in session.user_ids)
            lines.append(f"  {session.name}: [{members}]")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Conference(users={self.num_users}, sessions={self.num_sessions}, "
            f"agents={self.num_agents}, tasks={self.theta_sum})"
        )


def merge_conference_users(users: Iterable[User]) -> tuple[User, ...]:
    """Sort and de-duplicate users by id, raising on conflicting duplicates."""
    by_id: dict[int, User] = {}
    for user in users:
        existing = by_id.get(user.uid)
        if existing is not None and existing != user:
            raise ModelError(f"conflicting definitions for user {user.uid}")
        by_id[user.uid] = user
    return tuple(by_id[uid] for uid in sorted(by_id))
