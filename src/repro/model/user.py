"""Users and sessions (paper Sec. II).

Each user belongs to exactly one session, produces one upstream
representation ``r^u_u``, and demands a downstream representation
``r^d_{uv}`` for the stream of every other participant ``v``.  In the
paper's workloads a user demands the same representation from everyone
(80 % demand 720p), so :class:`User` stores a default demand plus optional
per-source overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ModelError
from repro.model.representation import Representation


@dataclass(frozen=True)
class User:
    """A conference participant.

    Attributes
    ----------
    uid:
        Dense integer id, unique across the conference.
    upstream:
        ``r^u_u`` — the representation this user produces.
    downstream_default:
        The representation this user demands from any source for which no
        override is given.
    downstream_overrides:
        Optional per-source demands, keyed by the source user's ``uid``.
    name:
        Human-readable label (defaults to ``"u<uid>"``).
    site:
        Optional name of the geographic site the user connects from
        (used by the latency substrate; informational here).
    """

    uid: int
    upstream: Representation
    downstream_default: Representation
    downstream_overrides: Mapping[int, Representation] = field(default_factory=dict)
    name: str = ""
    site: str = ""

    def __post_init__(self) -> None:
        if self.uid < 0:
            raise ModelError(f"user id must be non-negative, got {self.uid}")
        if not self.name:
            object.__setattr__(self, "name", f"u{self.uid}")

    def downstream_from(self, source_uid: int) -> Representation:
        """``r^d_{u,source}`` — the representation demanded from ``source``."""
        return self.downstream_overrides.get(source_uid, self.downstream_default)

    def __str__(self) -> str:
        return f"{self.name}(up={self.upstream.name})"


@dataclass(frozen=True)
class Session:
    """A conferencing session: a group of users who all exchange streams.

    Attributes
    ----------
    sid:
        Dense integer id, unique across the conference.
    user_ids:
        The ``uid`` values of the participants, in ascending order.
    initiator:
        The ``uid`` of the session initiator (whose agent runs Alg. 1 and
        AgRank for the session).  Defaults to the first participant.
    name:
        Human-readable label (defaults to ``"s<sid>"``).
    """

    sid: int
    user_ids: tuple[int, ...]
    initiator: int = -1
    name: str = ""

    def __post_init__(self) -> None:
        if self.sid < 0:
            raise ModelError(f"session id must be non-negative, got {self.sid}")
        if len(self.user_ids) < 2:
            raise ModelError(
                f"session {self.sid} needs at least 2 users, got {len(self.user_ids)}"
            )
        ordered = tuple(sorted(self.user_ids))
        if len(set(ordered)) != len(ordered):
            raise ModelError(f"session {self.sid} has duplicate users: {self.user_ids}")
        object.__setattr__(self, "user_ids", ordered)
        if self.initiator < 0:
            object.__setattr__(self, "initiator", ordered[0])
        elif self.initiator not in ordered:
            raise ModelError(
                f"initiator {self.initiator} is not a participant of session {self.sid}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"s{self.sid}")

    def __len__(self) -> int:
        return len(self.user_ids)

    def __contains__(self, uid: object) -> bool:
        return uid in self.user_ids

    def others(self, uid: int) -> tuple[int, ...]:
        """``P(u)`` — the other participants of ``uid``'s session."""
        if uid not in self.user_ids:
            raise ModelError(f"user {uid} is not in session {self.sid}")
        return tuple(v for v in self.user_ids if v != uid)

    def __str__(self) -> str:
        return f"{self.name}({len(self)} users)"
