"""Delay topology (paper Sec. II).

``D`` is the L x L inter-agent one-way delay matrix and ``H`` the L x U
agent-to-user one-way delay matrix, both in milliseconds.  The paper obtains
them from active measurements (RTT / 2); here they are supplied directly,
typically synthesized by :mod:`repro.netsim.latency`.

Agents are fully connected and do not forward traffic of other agents, so a
single matrix lookup gives every propagation-delay term of the end-to-end
delay formula.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class Topology:
    """Validated, immutable container for the D and H delay matrices."""

    def __init__(self, inter_agent_ms: np.ndarray, agent_user_ms: np.ndarray):
        d = np.asarray(inter_agent_ms, dtype=float)
        h = np.asarray(agent_user_ms, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ModelError(f"D must be square, got shape {d.shape}")
        if h.ndim != 2 or h.shape[0] != d.shape[0]:
            raise ModelError(
                f"H must have one row per agent ({d.shape[0]}), got shape {h.shape}"
            )
        if not np.all(np.isfinite(d)) or not np.all(np.isfinite(h)):
            raise ModelError("delay matrices must be finite")
        if (d < 0).any() or (h < 0).any():
            raise ModelError("delays must be non-negative")
        if not np.allclose(np.diag(d), 0.0):
            raise ModelError("inter-agent delay matrix must have a zero diagonal")
        self._d = d.copy()
        self._h = h.copy()
        self._d.setflags(write=False)
        self._h.setflags(write=False)

    @property
    def num_agents(self) -> int:
        return self._d.shape[0]

    @property
    def num_users(self) -> int:
        return self._h.shape[1]

    @property
    def inter_agent_ms(self) -> np.ndarray:
        """The full D matrix (read-only view)."""
        return self._d

    @property
    def agent_user_ms(self) -> np.ndarray:
        """The full H matrix (read-only view)."""
        return self._h

    def agent_to_agent(self, l: int, k: int) -> float:
        """``D_lk`` — one-way delay between agents ``l`` and ``k`` in ms."""
        return float(self._d[l, k])

    def agent_to_user(self, l: int, u: int) -> float:
        """``H_lu`` — one-way delay between agent ``l`` and user ``u`` in ms."""
        return float(self._h[l, u])

    def nearest_agents(self, u: int) -> np.ndarray:
        """Agent ids sorted by increasing delay to user ``u`` (ties by id)."""
        return np.argsort(self._h[:, u], kind="stable")

    def is_symmetric(self, tolerance: float = 1e-9) -> bool:
        """Whether D is symmetric (RTT-derived matrices are)."""
        return bool(np.allclose(self._d, self._d.T, atol=tolerance))

    def __repr__(self) -> str:
        return f"Topology(agents={self.num_agents}, users={self.num_users})"
