"""Conference data model (paper Sec. II, Table I).

This package defines the static description of a cloud-assisted video
conferencing deployment:

* :class:`~repro.model.representation.Representation` — a stream
  format/bitrate configuration, and the standard ladders used in the paper;
* :class:`~repro.model.user.User` / :class:`~repro.model.user.Session` —
  conference participants, their upstream representation and per-source
  downstream demands;
* :class:`~repro.model.agent.Agent` — a cloud VM described by the paper's
  quadruple ``{u_l, d_l, t_l, sigma_l(.)}``;
* :class:`~repro.model.topology.Topology` — the inter-agent delay matrix
  ``D`` and the agent-to-user delay matrix ``H``;
* :class:`~repro.model.conference.Conference` — the validated, immutable
  aggregate of all of the above, with the transcoding matrix ``theta``
  derived on construction;
* :class:`~repro.model.builder.ConferenceBuilder` — a fluent constructor.
"""

from repro.model.agent import Agent, LinearTranscodingLatency, TranscodingLatencyModel
from repro.model.builder import ConferenceBuilder
from repro.model.conference import Conference
from repro.model.representation import (
    PAPER_LADDER,
    Representation,
    RepresentationSet,
)
from repro.model.topology import Topology
from repro.model.user import Session, User

__all__ = [
    "Agent",
    "Conference",
    "ConferenceBuilder",
    "LinearTranscodingLatency",
    "PAPER_LADDER",
    "Representation",
    "RepresentationSet",
    "Session",
    "Topology",
    "TranscodingLatencyModel",
    "User",
]
