"""Cloud agents (paper Sec. II).

An agent is a VM leased in a cloud site, described by the quadruple
``{u_l, d_l, t_l, sigma_l(.)}``: upload capacity (Mbps), download capacity
(Mbps), transcoding capacity (concurrent tasks) and a transcoding-latency
function increasing in the bitrates of both the input and the output
representation.  The paper's prototype draws transcoding latencies from
[30, 60] ms depending on the instance's processing capability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.errors import ModelError
from repro.model.representation import Representation

#: Envelope of per-task transcoding latencies reported for the prototype.
PROTOTYPE_LATENCY_RANGE_MS: tuple[float, float] = (30.0, 60.0)


@runtime_checkable
class TranscodingLatencyModel(Protocol):
    """``sigma_l(r1, r2)`` — transcoding latency in ms, increasing in both
    the input and the output bitrate."""

    def __call__(self, source: Representation, target: Representation) -> float:
        """Return the latency of transcoding ``source`` into ``target``."""
        ...


@dataclass(frozen=True)
class LinearTranscodingLatency:
    """A latency model affine in the input and output bitrates.

    ``sigma(r1, r2) = base_ms + ms_per_input_mbps * kappa(r1)
    + ms_per_output_mbps * kappa(r2)``, all divided by ``speed`` — the
    relative processing capability of the agent (1.0 = reference instance,
    2.0 = twice as fast).

    The defaults are chosen so that a reference agent transcoding within the
    paper ladder lands inside the prototype's [30, 60] ms envelope.
    """

    base_ms: float = 24.0
    ms_per_input_mbps: float = 1.6
    ms_per_output_mbps: float = 2.4
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.base_ms < 0 or self.ms_per_input_mbps < 0 or self.ms_per_output_mbps < 0:
            raise ModelError("latency coefficients must be non-negative")
        if self.speed <= 0:
            raise ModelError(f"speed must be positive, got {self.speed}")

    def __call__(self, source: Representation, target: Representation) -> float:
        raw = (
            self.base_ms
            + self.ms_per_input_mbps * source.bitrate_mbps
            + self.ms_per_output_mbps * target.bitrate_mbps
        )
        return raw / self.speed

    def reference_latency_ms(self) -> float:
        """Latency of a 5 Mbps -> 2.5 Mbps transcode (a typical task)."""
        return (self.base_ms + 5.0 * self.ms_per_input_mbps + 2.5 * self.ms_per_output_mbps) / self.speed


@dataclass(frozen=True)
class Agent:
    """A cloud agent VM (the paper's quadruple, plus bookkeeping fields).

    Attributes
    ----------
    aid:
        Dense integer id, unique across the conference.
    upload_mbps / download_mbps:
        ``u_l`` / ``d_l`` — bandwidth capacities; ``math.inf`` models the
        "large enough" capacities of the prototype experiments.
    transcode_slots:
        ``t_l`` — number of concurrent transcoding tasks; may be ``inf``.
    latency:
        ``sigma_l(., .)`` — the transcoding latency model.
    name / region:
        Human-readable labels (e.g. ``"TO"`` / ``"ap-northeast-1"``).
    egress_price_per_gb:
        Optional dollar price of egress bandwidth at this site, used by the
        pricing substrate to express G(x) in dollars rather than Mbps.
    """

    aid: int
    upload_mbps: float = math.inf
    download_mbps: float = math.inf
    transcode_slots: float = math.inf
    latency: TranscodingLatencyModel = field(default_factory=LinearTranscodingLatency)
    name: str = ""
    region: str = ""
    egress_price_per_gb: float = 0.09

    def __post_init__(self) -> None:
        if self.aid < 0:
            raise ModelError(f"agent id must be non-negative, got {self.aid}")
        for label, value in (
            ("upload_mbps", self.upload_mbps),
            ("download_mbps", self.download_mbps),
            ("transcode_slots", self.transcode_slots),
        ):
            if not (value >= 0):  # also rejects NaN
                raise ModelError(f"agent {self.aid}: {label} must be >= 0, got {value}")
        if not self.name:
            object.__setattr__(self, "name", f"a{self.aid}")

    def transcoding_latency_ms(self, source: Representation, target: Representation) -> float:
        """``sigma_l(r1, r2)`` in milliseconds."""
        return self.latency(source, target)

    def __str__(self) -> str:
        up = "inf" if math.isinf(self.upload_mbps) else f"{self.upload_mbps:g}"
        down = "inf" if math.isinf(self.download_mbps) else f"{self.download_mbps:g}"
        slots = "inf" if math.isinf(self.transcode_slots) else f"{self.transcode_slots:g}"
        return f"{self.name}(up={up},down={down},slots={slots})"
