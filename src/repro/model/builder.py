"""Fluent construction of :class:`~repro.model.conference.Conference`.

The builder assigns dense ids automatically and lets workload generators and
tests express scenarios compactly::

    builder = ConferenceBuilder(PAPER_LADDER)
    oregon = builder.add_agent(name="OR", upload_mbps=500, download_mbps=500)
    tokyo = builder.add_agent(name="TO")
    alice = builder.user(upstream="720p", downstream="480p", name="alice")
    bob = builder.user(upstream="480p", downstream="720p", name="bob")
    builder.add_session(alice, bob)
    conference = builder.build(topology)
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ModelError
from repro.model.agent import Agent, LinearTranscodingLatency, TranscodingLatencyModel
from repro.model.conference import Conference
from repro.model.representation import Representation, RepresentationSet
from repro.model.topology import Topology
from repro.model.user import Session, User
from repro.types import DEFAULT_DMAX_MS


class ConferenceBuilder:
    """Accumulates agents, users and sessions, then builds a Conference."""

    def __init__(self, representations: RepresentationSet, dmax_ms: float = DEFAULT_DMAX_MS):
        self._representations = representations
        self._dmax_ms = dmax_ms
        self._agents: list[Agent] = []
        self._users: list[User] = []
        self._sessions: list[Session] = []

    # ------------------------------------------------------------------ #
    # Agents                                                             #
    # ------------------------------------------------------------------ #

    def add_agent(
        self,
        name: str = "",
        region: str = "",
        upload_mbps: float = math.inf,
        download_mbps: float = math.inf,
        transcode_slots: float = math.inf,
        latency: TranscodingLatencyModel | None = None,
        speed: float = 1.0,
        egress_price_per_gb: float = 0.09,
    ) -> int:
        """Add an agent and return its id.

        ``speed`` builds a :class:`LinearTranscodingLatency` scaled by the
        agent's processing capability when no explicit ``latency`` model is
        given.
        """
        if latency is None:
            latency = LinearTranscodingLatency(speed=speed)
        agent = Agent(
            aid=len(self._agents),
            upload_mbps=upload_mbps,
            download_mbps=download_mbps,
            transcode_slots=transcode_slots,
            latency=latency,
            name=name,
            region=region,
            egress_price_per_gb=egress_price_per_gb,
        )
        self._agents.append(agent)
        return agent.aid

    # ------------------------------------------------------------------ #
    # Users and sessions                                                 #
    # ------------------------------------------------------------------ #

    def _resolve(self, rep: Representation | str) -> Representation:
        if isinstance(rep, str):
            return self._representations[rep]
        if rep not in self._representations:
            raise ModelError(f"{rep} is not in the builder's representation set")
        return rep

    def user(
        self,
        upstream: Representation | str,
        downstream: Representation | str | None = None,
        name: str = "",
        site: str = "",
        downstream_overrides: dict[int, Representation | str] | None = None,
    ) -> int:
        """Add a user and return its id.

        ``downstream`` defaults to the upstream representation (the user
        demands what it produces, i.e. no transcoding towards it unless a
        source differs).
        """
        up = self._resolve(upstream)
        down = self._resolve(downstream) if downstream is not None else up
        overrides = {
            src: self._resolve(rep) for src, rep in (downstream_overrides or {}).items()
        }
        user = User(
            uid=len(self._users),
            upstream=up,
            downstream_default=down,
            downstream_overrides=overrides,
            name=name,
            site=site,
        )
        self._users.append(user)
        return user.uid

    def add_session(self, *user_ids: int, initiator: int = -1, name: str = "") -> int:
        """Group previously added users into a session; returns session id."""
        for uid in user_ids:
            if not 0 <= uid < len(self._users):
                raise ModelError(f"unknown user id {uid} in session")
        session = Session(
            sid=len(self._sessions),
            user_ids=tuple(user_ids),
            initiator=initiator,
            name=name,
        )
        self._sessions.append(session)
        return session.sid

    # ------------------------------------------------------------------ #
    # Build                                                              #
    # ------------------------------------------------------------------ #

    @property
    def num_users(self) -> int:
        return len(self._users)

    @property
    def num_agents(self) -> int:
        return len(self._agents)

    def build(self, topology: Topology | None = None, *,
              inter_agent_ms: np.ndarray | None = None,
              agent_user_ms: np.ndarray | None = None) -> Conference:
        """Create the Conference.

        Either pass a ready :class:`Topology` or the raw ``D`` / ``H``
        matrices.
        """
        if topology is None:
            if inter_agent_ms is None or agent_user_ms is None:
                raise ModelError(
                    "build() needs a Topology or both inter_agent_ms and agent_user_ms"
                )
            topology = Topology(inter_agent_ms, agent_user_ms)
        return Conference(
            users=self._users,
            sessions=self._sessions,
            agents=self._agents,
            topology=topology,
            representations=self._representations,
            dmax_ms=self._dmax_ms,
        )
