"""Video stream representations (paper Sec. II).

A *representation* is a specific configuration of format, encoding bitrate
and spatial/temporal resolution.  The paper's evaluation uses the YouTube
ladder — (360p, 1 Mbps), (480p, 2.5 Mbps), (720p, 5 Mbps), (1080p, 8 Mbps) —
plus 240p, which appears in the prototype's migration-overhead measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ModelError, UnknownEntityError


@dataclass(frozen=True, order=True)
class Representation:
    """One stream configuration; ordered by bitrate (then name).

    Attributes
    ----------
    bitrate_mbps:
        Encoding bitrate ``kappa(r)`` in Mbps.  Listed first so that the
        generated ordering compares representations by quality.
    name:
        Human-readable label, e.g. ``"720p"``.
    height:
        Vertical resolution in pixels (informational).
    """

    bitrate_mbps: float
    name: str = field(compare=True)
    height: int = 0

    def __post_init__(self) -> None:
        if self.bitrate_mbps <= 0:
            raise ModelError(
                f"representation {self.name!r} must have positive bitrate, "
                f"got {self.bitrate_mbps}"
            )

    @property
    def kappa(self) -> float:
        """The paper's ``kappa(r)``: the bitrate of this representation."""
        return self.bitrate_mbps

    def __str__(self) -> str:
        return f"{self.name}@{self.bitrate_mbps}Mbps"


class RepresentationSet:
    """An ordered, name-indexed collection of representations (the set R).

    Iteration order is ascending quality.  Lookup is by name
    (``ladder["720p"]``) or by position (``ladder.at(2)``).
    """

    def __init__(self, representations: Iterator[Representation] | list[Representation]):
        reps = sorted(representations)
        if not reps:
            raise ModelError("a representation set cannot be empty")
        names = [r.name for r in reps]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate representation names: {names}")
        self._reps: tuple[Representation, ...] = tuple(reps)
        self._by_name: dict[str, Representation] = {r.name: r for r in reps}
        self._index: dict[Representation, int] = {r: i for i, r in enumerate(reps)}

    def __len__(self) -> int:
        return len(self._reps)

    def __iter__(self) -> Iterator[Representation]:
        return iter(self._reps)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Representation):
            return item in self._index
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __getitem__(self, name: str) -> Representation:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownEntityError(
                f"unknown representation {name!r}; known: {sorted(self._by_name)}"
            ) from None

    def at(self, index: int) -> Representation:
        """Return the representation at quality rank ``index`` (ascending)."""
        return self._reps[index]

    def index_of(self, rep: Representation) -> int:
        """Return the quality rank of ``rep`` within this set."""
        try:
            return self._index[rep]
        except KeyError:
            raise UnknownEntityError(f"{rep} is not part of this set") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self._reps)

    @property
    def max_bitrate(self) -> float:
        return self._reps[-1].bitrate_mbps

    def __repr__(self) -> str:
        return f"RepresentationSet({', '.join(map(str, self._reps))})"


#: The ladder used throughout the paper's evaluation (Sec. V-B), with the
#: 240p entry from the prototype's migration-overhead discussion (Sec. V-A).
PAPER_LADDER = RepresentationSet(
    [
        Representation(0.4, "240p", 240),
        Representation(1.0, "360p", 360),
        Representation(2.5, "480p", 480),
        Representation(5.0, "720p", 720),
        Representation(8.0, "1080p", 1080),
    ]
)
