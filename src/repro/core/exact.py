"""Exhaustive exact solver for small instances.

UAP is combinatorial with ``L ** (U + theta_sum)`` states; for the toy
instances used in tests and theory experiments (Fig. 3's 8-state chain,
the Fig. 2 scenario) exhaustive enumeration is exact, dependency-free, and
fast.  It powers:

* optimality-gap validation against Alg. 1 (Eq. 10 / 12);
* exact stationary-distribution computation in :mod:`repro.core.theory`;
* ground truth for property-based tests of the heuristics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.assignment import Assignment
from repro.core.feasibility import is_feasible
from repro.core.objective import ObjectiveEvaluator
from repro.errors import SolverError
from repro.model.conference import Conference

#: Refuse to enumerate beyond this many raw states by default.
DEFAULT_MAX_STATES = 1_000_000


def state_space_size(conference: Conference, sids: Iterable[int] | None = None) -> int:
    """``L ** (#users + #tasks)`` over the given (default all) sessions."""
    if sids is None:
        sids = range(conference.num_sessions)
    decisions = 0
    for sid in sids:
        decisions += len(conference.session(sid).user_ids)
        decisions += len(conference.session_pair_indices(sid))
    return conference.num_agents**decisions


def enumerate_assignments(
    conference: Conference,
    sids: Iterable[int] | None = None,
    feasible_only: bool = True,
    max_states: int = DEFAULT_MAX_STATES,
) -> Iterator[Assignment]:
    """Yield all (by default: all feasible) assignments of the sessions.

    Raises :class:`SolverError` when the raw state space exceeds
    ``max_states`` — use the heuristics beyond toy scale.
    """
    sid_list = list(sids) if sids is not None else list(range(conference.num_sessions))
    size = state_space_size(conference, sid_list)
    if size > max_states:
        raise SolverError(
            f"state space has {size} states (> {max_states}); exhaustive "
            "enumeration is limited to toy instances"
        )
    uids = [uid for sid in sid_list for uid in conference.session(sid).user_ids]
    pair_indices = [
        i for sid in sid_list for i in conference.session_pair_indices(sid)
    ]
    base = Assignment.empty(conference)
    agents = range(conference.num_agents)
    decisions = len(uids) + len(pair_indices)
    for combo in itertools.product(agents, repeat=decisions):
        user_agent = base.user_agent.copy()
        task_agent = base.task_agent.copy()
        for offset, uid in enumerate(uids):
            user_agent[uid] = combo[offset]
        for offset, i in enumerate(pair_indices):
            task_agent[i] = combo[len(uids) + offset]
        assignment = Assignment(user_agent, task_agent)
        if not feasible_only or is_feasible(conference, assignment, sid_list):
            yield assignment


@dataclass(frozen=True)
class ExactResult:
    """Optimal assignment with enumeration statistics."""

    assignment: Assignment
    phi: float
    num_feasible: int
    num_states: int


def solve_exact(
    evaluator: ObjectiveEvaluator,
    sids: Iterable[int] | None = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> ExactResult:
    """Enumerate feasible states and return the global optimum ``Phi_min``."""
    conference = evaluator.conference
    sid_list = list(sids) if sids is not None else list(range(conference.num_sessions))
    best: Assignment | None = None
    best_phi = np.inf
    feasible = 0
    for assignment in enumerate_assignments(conference, sid_list, max_states=max_states):
        feasible += 1
        phi = evaluator.total(assignment, sid_list).phi
        if phi < best_phi:
            best_phi = phi
            best = assignment
    if best is None:
        raise SolverError("no feasible assignment exists for the instance")
    return ExactResult(
        assignment=best,
        phi=float(best_phi),
        num_feasible=feasible,
        num_states=state_space_size(conference, sid_list),
    )
