"""Alg. 2 — AgRank: proximity- and resource-aware agent ranking.

AgRank bootstraps Alg. 1 with a close-to-optimal initial assignment:

1. **Candidate construction** — each user contributes its ``n_ngbr``
   nearest agents; the union is the session's potential agent set N(s).
2. **Ranking** — a PageRank-style random walk over N(s).  The initial rank
   of an agent is its normalized residual quadruple (upload, download,
   transcoding slots, transcoding speed), making the ranking
   resource-aware; the walk matrix is the normalized inverse inter-agent
   delay matrix ``Dhat`` (low mutual delay attracts rank), making it
   proximity-aware.  We iterate the damped personalized form
   ``pi <- (1 - d) * pi0 + d * pi @ M`` (M = row-normalized ``Dhat``),
   which keeps the resource prior in the fixed point and inherits
   PageRank's fast geometric convergence; ``d -> 1`` recovers the paper's
   undamped iteration.
3. **Assignment** — each user picks the highest-ranked agent among its own
   candidates N(u).  With capacity awareness on, users fall back to their
   next-ranked candidate when the choice cannot fit the residual
   capacities (this is what gives AgRank#3 its higher success rate than
   AgRank#2 in Fig. 9 — a larger feasible set per user).
4. **Transcoding placement** — the paper's rule of thumb: when at least two
   destinations demand the same representation, transcode at the source
   agent (one task serves all); a single down-scaled destination also
   transcodes at the source (ship the smaller stream), while a single
   up-scaled destination transcodes at its own agent.

``n_ngbr = 1`` reduces to the Nrst policy; ``n_ngbr = L`` subscribes whole
sessions to the single best-ranked agent (the Fig. 10 extremes).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.capacity import CapacityLedger
from repro.core.fastpath import profile_for
from repro.errors import InfeasibleError, SolverError
from repro.model.conference import Conference
from repro.model.representation import Representation


@dataclass(frozen=True)
class AgRankConfig:
    """Parameters of Alg. 2.

    Attributes
    ----------
    n_ngbr:
        Candidate agents per user, in ``[1, L]`` (the paper's key knob).
    damping:
        Weight of the delay-driven walk vs. the resource prior; the
        paper's undamped update is the ``damping -> 1`` limit.  The
        default 0.3 keeps 70 % of the weight on the residual-capacity
        prior, which is what makes larger candidate pools strictly help
        under tight capacities (the AgRank#3 >= AgRank#2 ordering of
        Fig. 9); delay-centrality still breaks ties between
        equally-loaded agents.
    epsilon:
        Convergence threshold of the power iteration (paper line 13).
    max_iterations:
        Safety cap; the iteration converges geometrically.
    capacity_aware:
        Fall back to lower-ranked candidates when capacities bind.
    max_leaf_checks:
        Bound on full-assignment feasibility checks during the fallback
        search (keeps the bootstrap O(1) per session).
    """

    n_ngbr: int = 2
    damping: float = 0.3
    epsilon: float = 1e-10
    max_iterations: int = 500
    capacity_aware: bool = True
    max_leaf_checks: int = 512

    def __post_init__(self) -> None:
        if self.n_ngbr < 1:
            raise SolverError(f"n_ngbr must be >= 1, got {self.n_ngbr}")
        if not 0.0 < self.damping <= 1.0:
            raise SolverError(f"damping must be in (0, 1], got {self.damping}")
        if self.epsilon <= 0:
            raise SolverError("epsilon must be positive")


@dataclass(frozen=True)
class AgRankResult:
    """Ranking diagnostics: candidates, scores and iteration count."""

    candidates: tuple[int, ...]
    scores: dict[int, float]
    per_user_candidates: dict[int, tuple[int, ...]]
    iterations: int

    def ordered(self, agents: tuple[int, ...] | None = None) -> list[int]:
        """Agents sorted by decreasing rank (ties: lower id first)."""
        pool = self.candidates if agents is None else agents
        return sorted(pool, key=lambda a: (-self.scores[a], a))


def _reference_latency_ms(conference: Conference, agent: int) -> float:
    """A representative ``sigma_l`` value used for the resource prior."""
    ladder = list(conference.representations)
    high = ladder[-1]
    low: Representation = ladder[0] if len(ladder) > 1 else ladder[-1]
    return conference.agent(agent).transcoding_latency_ms(high, low)


def _residual_quadruple_scores(
    conference: Conference,
    candidates: list[int],
    ledger: CapacityLedger | None,
) -> np.ndarray:
    """Per-candidate normalized residual quadruples (paper line 8)."""
    if ledger is not None:
        res_down, res_up, res_slots = ledger.residuals()
    else:
        res_down = np.array([a.download_mbps for a in conference.agents])
        res_up = np.array([a.upload_mbps for a in conference.agents])
        res_slots = np.array([a.transcode_slots for a in conference.agents])

    def normalize(values: np.ndarray) -> np.ndarray:
        vals = np.array([max(values[c], 0.0) for c in candidates], dtype=float)
        finite = vals[np.isfinite(vals)]
        top = float(finite.max()) if finite.size else 1.0
        if top <= 0:
            top = 1.0
        return np.where(np.isfinite(vals), vals / top, 1.0)

    latencies = np.array(
        [_reference_latency_ms(conference, c) for c in candidates], dtype=float
    )
    speed_score = latencies.min() / latencies  # faster transcoder -> closer to 1

    quad = normalize(res_up) + normalize(res_down) + normalize(res_slots) + speed_score
    total = quad.sum()
    if total <= 0:
        return np.full(len(candidates), 1.0 / len(candidates))
    return quad / total


def _walk_matrix(conference: Conference, candidates: list[int]) -> np.ndarray:
    """Row-stochastic normalized inverse-delay matrix ``Dhat``."""
    size = len(candidates)
    if size == 1:
        return np.ones((1, 1))
    delay = conference.topology.inter_agent_ms
    sub = np.array(
        [[delay[i, j] for j in candidates] for i in candidates], dtype=float
    )
    off = sub[~np.eye(size, dtype=bool)]
    positive = off[off > 0]
    min_delay = float(positive.min()) if positive.size else 1.0
    with np.errstate(divide="ignore"):
        dhat = np.where(sub > 0, min_delay / sub, 0.0)
    np.fill_diagonal(dhat, 0.0)
    row_sums = dhat.sum(axis=1, keepdims=True)
    uniform = np.full((size, size), 1.0 / max(size - 1, 1))
    np.fill_diagonal(uniform, 0.0)
    return np.where(row_sums > 0, dhat / np.where(row_sums > 0, row_sums, 1.0), uniform)


def rank_agents(
    conference: Conference,
    sid: int,
    ledger: CapacityLedger | None = None,
    config: AgRankConfig | None = None,
) -> AgRankResult:
    """Construct N(s) and compute the AgRank scores (Alg. 2 lines 1-14)."""
    config = config if config is not None else AgRankConfig()
    n_ngbr = min(config.n_ngbr, conference.num_agents)
    session = conference.session(sid)

    per_user: dict[int, tuple[int, ...]] = {}
    pool: list[int] = []
    seen: set[int] = set()
    for uid in session.user_ids:
        nearest = tuple(
            int(a) for a in conference.topology.nearest_agents(uid)[:n_ngbr]
        )
        per_user[uid] = nearest
        for agent in nearest:
            if agent not in seen:
                seen.add(agent)
                pool.append(agent)
    pool.sort()

    pi0 = _residual_quadruple_scores(conference, pool, ledger)
    matrix = _walk_matrix(conference, pool)
    pi = pi0.copy()
    iterations = 0
    for iterations in range(1, config.max_iterations + 1):
        updated = (1.0 - config.damping) * pi0 + config.damping * (pi @ matrix)
        total = updated.sum()
        if total > 0:
            updated = updated / total
        delta = float(np.linalg.norm(updated - pi))
        pi = updated
        if delta < config.epsilon:
            break
    scores = {agent: float(pi[i]) for i, agent in enumerate(pool)}
    return AgRankResult(
        candidates=tuple(pool),
        scores=scores,
        per_user_candidates=per_user,
        iterations=iterations,
    )


def _place_tasks(
    conference: Conference,
    sid: int,
    user_choice: dict[int, int],
    ranking: AgRankResult,
    slot_residual: np.ndarray,
) -> dict[int, int] | None:
    """The rule-of-thumb transcoding placement; None when slots run out.

    Returns pair-index -> agent.  ``slot_residual`` is consumed in place.
    """
    placements: dict[int, int] = {}
    groups: dict[tuple[int, Representation], list[int]] = {}
    for i in conference.session_pair_indices(sid):
        source, destination = conference.transcode_pairs[i]
        rep = conference.demanded_representation(source, destination)
        groups.setdefault((source, rep), []).append(i)

    ranked_pool = ranking.ordered()
    for (source, rep), pair_indices in sorted(
        groups.items(), key=lambda item: (item[0][0], item[0][1].name)
    ):
        source_agent = user_choice[source]
        upstream = conference.user(source).upstream
        preferences: list[int] = []
        if len(pair_indices) >= 2 or rep.bitrate_mbps < upstream.bitrate_mbps:
            preferences.append(source_agent)
        for i in pair_indices:
            dest_agent = user_choice[conference.transcode_pairs[i][1]]
            if dest_agent not in preferences:
                preferences.append(dest_agent)
        if source_agent not in preferences:
            preferences.append(source_agent)
        for agent in ranked_pool:
            if agent not in preferences:
                preferences.append(agent)

        chosen = next((a for a in preferences if slot_residual[a] >= 1), None)
        if chosen is None:
            return None
        slot_residual[chosen] -= 1
        for i in pair_indices:
            placements[i] = chosen
    return placements


def agrank_assignment(
    conference: Conference,
    sid: int,
    ledger: CapacityLedger | None = None,
    config: AgRankConfig | None = None,
    base: Assignment | None = None,
) -> Assignment:
    """Bootstrap session ``sid`` with Alg. 2 (optionally capacity-aware).

    Raises :class:`InfeasibleError` when no candidate combination fits the
    residual capacities — the "failed scenario" outcome of Fig. 9.
    """
    config = config if config is not None else AgRankConfig()
    ranking = rank_agents(conference, sid, ledger, config)
    session = conference.session(sid)
    base = base if base is not None else Assignment.empty(conference)

    # Per-user candidate lists in rank order (ties broken towards lower
    # user-to-agent delay, then id).
    ordered_candidates: dict[int, list[int]] = {}
    for uid in session.user_ids:
        pool = ranking.per_user_candidates[uid]
        ordered_candidates[uid] = sorted(
            pool,
            key=lambda a: (
                -ranking.scores[a],
                conference.topology.agent_to_user(a, uid),
                a,
            ),
        )

    if ledger is not None:
        res_down, res_up, res_slots = ledger.residuals(excluding_sid=sid)
    else:
        num_agents = conference.num_agents
        res_down = np.full(num_agents, math.inf)
        res_up = np.full(num_agents, math.inf)
        res_slots = np.full(num_agents, math.inf)

    users = list(session.user_ids)
    option_lists = [
        ordered_candidates[uid] if config.capacity_aware else ordered_candidates[uid][:1]
        for uid in users
    ]

    checks = 0
    for combo in itertools.product(*option_lists):
        checks += 1
        if checks > config.max_leaf_checks:
            break
        user_choice = dict(zip(users, combo))
        slot_budget = res_slots.copy()
        placements = _place_tasks(conference, sid, user_choice, ranking, slot_budget)
        if placements is None:
            continue
        candidate = base
        user_agent = candidate.user_agent.copy()
        task_agent = candidate.task_agent.copy()
        for uid, agent in user_choice.items():
            user_agent[uid] = agent
        for i, agent in placements.items():
            task_agent[i] = agent
        candidate = Assignment(user_agent, task_agent)
        # The profile kernel is pinned bit-identical to
        # ``compute_session_usage``; the combo loop is NN-GBR's hot path.
        usage = profile_for(conference).session_usage(
            candidate.user_agent, candidate.task_agent, sid
        )
        fits = bool(
            np.all(usage.download <= res_down + 1e-9)
            and np.all(usage.upload <= res_up + 1e-9)
            and np.all(usage.transcodes <= res_slots + 1e-9)
        )
        if fits:
            return candidate
        if not config.capacity_aware:
            return candidate  # capacity-oblivious callers take what they get

    raise InfeasibleError(
        f"AgRank found no feasible bootstrap for session {sid} "
        f"(n_ngbr={config.n_ngbr}, {checks} combinations tried)"
    )
