"""Simulated annealing over the UAP neighbourhood.

Sec. IV-A.3 contrasts Markov approximation with simulated annealing and
MCMC sampling: they share the chain-over-states idea but were not designed
for parallel per-session execution or provable robustness.  This module
provides the classic SA reference implementation for the ablation benches —
a single centralized chain with a geometric cooling schedule and Metropolis
acceptance on the *global* objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.search import SearchContext
from repro.errors import SolverError


@dataclass(frozen=True)
class AnnealingConfig:
    """Cooling-schedule parameters.

    Temperature after hop ``t`` is ``initial * decay ** t``, floored at
    ``final``; acceptance of an objective increase ``delta`` has
    probability ``exp(-delta / temperature)``.
    """

    initial_temperature: float = 1.0
    final_temperature: float = 1e-4
    decay: float = 0.995
    hops: int = 2000

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0 or self.final_temperature <= 0:
            raise SolverError("temperatures must be positive")
        if not 0.0 < self.decay < 1.0:
            raise SolverError(f"decay must be in (0, 1), got {self.decay}")
        if self.hops < 1:
            raise SolverError("hops must be >= 1")

    def temperature(self, step: int) -> float:
        return max(self.final_temperature, self.initial_temperature * self.decay**step)


@dataclass(frozen=True)
class AnnealingResult:
    """Outcome of a simulated-annealing run (best state seen)."""

    assignment: Assignment
    phi: float
    accepted: int
    proposed: int


def simulated_annealing(
    evaluator: ObjectiveEvaluator,
    initial_assignment: Assignment,
    config: AnnealingConfig | None = None,
    active_sids: list[int] | None = None,
    rng: np.random.Generator | None = None,
    kernel: str | None = None,
) -> AnnealingResult:
    """Run SA and return the best assignment encountered.

    On the vectorized kernels only the uniformly drawn proposal is
    materialized; the uniform draw ranges over the same feasible count
    in the same enumeration order, so trajectories are bit-identical to
    the reference path.
    """
    config = config if config is not None else AnnealingConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    context = SearchContext(
        evaluator, initial_assignment, active_sids=active_sids, kernel=kernel
    )
    reference = context.kernel == "reference"
    active = context.active_sessions

    best_assignment = context.assignment
    best_phi = context.total_phi()
    accepted = 0

    for step in range(config.hops):
        sid = active[int(rng.integers(len(active)))]
        if reference:
            candidates = context.feasible_candidates(sid)
            if not candidates:
                continue
            candidate = candidates[int(rng.integers(len(candidates)))]
        else:
            batch = context.candidate_batch(sid)
            if batch.num_feasible == 0:
                continue
            candidate = batch.materialize(int(rng.integers(batch.num_feasible)))
        delta = candidate.phi - context.session_cost(sid).phi
        if delta <= 0 or rng.uniform() < np.exp(-delta / config.temperature(step)):
            context.commit(sid, candidate)
            accepted += 1
            phi = context.total_phi()
            if phi < best_phi:
                best_phi = phi
                best_assignment = context.assignment
    return AnnealingResult(
        assignment=best_assignment,
        phi=best_phi,
        accepted=accepted,
        proposed=config.hops,
    )
