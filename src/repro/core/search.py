"""Shared local-search machinery.

Alg. 1 (Markov approximation), greedy descent and simulated annealing all
walk the same single-decision neighbourhood under the same feasibility
rules.  :class:`SearchContext` centralizes that: it owns the current
assignment, the capacity ledger, cached per-session costs, and candidate
evaluation (usage + capacity fit + delay cap + session-local objective),
so the solvers reduce to their selection rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.capacity import CapacityLedger
from repro.core.neighborhood import Move, session_moves
from repro.core.objective import ObjectiveEvaluator, SessionCost
from repro.errors import ModelError, SolverError
from repro.model.conference import Conference
from repro.netsim.noise import NoiseModel, NoNoise


@dataclass(frozen=True)
class Candidate:
    """One feasible neighbouring assignment of a session."""

    move: Move
    assignment: Assignment
    cost: SessionCost

    @property
    def phi(self) -> float:
        return self.cost.phi


class SearchContext:
    """Mutable search state shared by the local-search solvers.

    Parameters
    ----------
    evaluator:
        Objective evaluator (fixes the conference, alphas and costs).
    assignment:
        A feasible starting assignment covering ``active_sids``.
    active_sids:
        Sessions being optimized (defaults to all sessions); inactive
        sessions' users must be unassigned and are ignored.
    noise:
        Optional observation noise applied to every *candidate* objective
        evaluation (the current state's remembered cost stays exact), which
        models the noisy measurements of Sec. IV-A.4.
    rng:
        Generator used only for noise draws here; solvers hold their own.
    """

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        assignment: Assignment,
        active_sids: list[int] | None = None,
        noise: NoiseModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._evaluator = evaluator
        self._conference = evaluator.conference
        self._active = (
            sorted(active_sids)
            if active_sids is not None
            else list(range(self._conference.num_sessions))
        )
        if not self._active:
            raise SolverError("at least one active session is required")
        self._assignment = assignment
        self._noise: NoiseModel = noise if noise is not None else NoNoise()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._ledger = CapacityLedger.from_assignment(
            self._conference, assignment, self._active
        )
        self._costs: dict[int, SessionCost] = {
            sid: evaluator.session_cost(assignment, sid) for sid in self._active
        }

    # ------------------------------------------------------------------ #
    # State access                                                       #
    # ------------------------------------------------------------------ #

    @property
    def conference(self) -> Conference:
        return self._conference

    @property
    def evaluator(self) -> ObjectiveEvaluator:
        return self._evaluator

    @property
    def assignment(self) -> Assignment:
        return self._assignment

    @property
    def ledger(self) -> CapacityLedger:
        return self._ledger

    @property
    def active_sessions(self) -> list[int]:
        return list(self._active)

    def session_cost(self, sid: int) -> SessionCost:
        return self._costs[sid]

    def total_phi(self) -> float:
        return sum(cost.phi for cost in self._costs.values())

    def metrics(self) -> tuple[float, float]:
        """``(inter_agent_mbps, average_delay_ms)`` over active sessions."""
        profile = self._evaluator.profile
        traffic = sum(c.inter_agent_mbps for c in self._costs.values())
        delays: list[float] = []
        for sid in self._active:
            delays.extend(
                profile.session_user_delays(
                    self._assignment.user_agent, self._assignment.task_agent, sid
                ).values()
            )
        return traffic, float(np.mean(delays))

    # ------------------------------------------------------------------ #
    # Candidate evaluation                                               #
    # ------------------------------------------------------------------ #

    def evaluate_move(self, sid: int, move: Move) -> Candidate | None:
        """Apply feasibility rules to one move; None when infeasible.

        One pass computes the session usage (for the capacity check and
        the cost terms) and the flow delays (for constraint (8) and the
        delay cost); the candidate's stored cost is the *observed*
        (possibly noisy) one — exactly what Alg. 1's HOP acts on.
        """
        candidate = move.apply(self._assignment)
        profile = self._evaluator.profile
        usage = profile.session_usage(candidate.user_agent, candidate.task_agent, sid)
        if not self._ledger.fits(usage):
            return None
        delay_cost, max_flow = profile.session_delays(
            candidate.user_agent, candidate.task_agent, sid
        )
        if max_flow > self._conference.dmax_ms + 1e-9:
            return None
        cost = self._evaluator.assemble_session_cost(sid, usage, delay_cost)
        observed_phi = self._noise.perturb(cost.phi, self._rng)
        if observed_phi != cost.phi:
            cost = SessionCost(
                sid=cost.sid,
                phi=observed_phi,
                delay_cost_ms=cost.delay_cost_ms,
                traffic_cost=cost.traffic_cost,
                transcode_cost=cost.transcode_cost,
                usage=cost.usage,
            )
        return Candidate(move=move, assignment=candidate, cost=cost)

    def feasible_candidates(self, sid: int) -> list[Candidate]:
        """All feasible single-decision neighbours of session ``sid``."""
        candidates = []
        for move in session_moves(self._conference, self._assignment, sid):
            candidate = self.evaluate_move(sid, move)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    # ------------------------------------------------------------------ #
    # Commitment                                                         #
    # ------------------------------------------------------------------ #

    def commit(self, sid: int, candidate: Candidate) -> None:
        """Adopt a candidate: swap the assignment and refresh caches.

        The committed cost is re-evaluated noiselessly so the context's
        view of the current state stays exact (noise applies to
        *observations* of candidates, not to the state itself).
        """
        self._assignment = candidate.assignment
        exact_cost = self._evaluator.session_cost(candidate.assignment, sid)
        self._costs[sid] = exact_cost
        self._ledger.set_session(exact_cost.usage)

    # ------------------------------------------------------------------ #
    # Session dynamics (arrivals / departures)                           #
    # ------------------------------------------------------------------ #

    def add_session(self, sid: int, assignment: Assignment) -> None:
        """Activate a session bootstrapped in ``assignment`` (which must
        agree with the current assignment on all other sessions)."""
        if sid in self._costs:
            raise ModelError(f"session {sid} is already active")
        merged = self._assignment.merged(assignment, self._conference, sid)
        self._assignment = merged
        cost = self._evaluator.session_cost(merged, sid)
        self._costs[sid] = cost
        self._ledger.set_session(cost.usage)
        self._active = sorted(self._active + [sid])

    def remove_session(self, sid: int) -> None:
        """Deactivate a session and release its capacity."""
        if sid not in self._costs:
            raise ModelError(f"session {sid} is not active")
        del self._costs[sid]
        self._ledger.remove_session(sid)
        self._active.remove(sid)
        self._assignment = self._assignment.with_session_cleared(self._conference, sid)
