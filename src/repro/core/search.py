"""Shared local-search machinery.

Alg. 1 (Markov approximation), greedy descent and simulated annealing all
walk the same single-decision neighbourhood under the same feasibility
rules.  :class:`SearchContext` centralizes that: it owns the current
assignment, the capacity ledger, cached per-session costs, and candidate
evaluation (usage + capacity fit + delay cap + session-local objective),
so the solvers reduce to their selection rules.

Candidate evaluation has three interchangeable kernels:

* ``"reference"`` (:meth:`SearchContext.evaluate_move`) evaluates one
  move at a time through the per-assignment fastpath kernels,
* ``"batched"`` (:meth:`SearchContext.candidate_batch`) evaluates the
  whole move set in one :mod:`repro.core.batched` array pass, and
* ``"arrays"`` (the default) runs the same batch pass on the
  struct-of-arrays layouts of :mod:`repro.core.arrays`, with the
  conference-level ``phi`` kept in a :class:`~repro.core.arrays.
  PhiArray` and the committed cost reused from the candidate batch.

All three produce bit-identical candidate sets, masks and ``phi``
values (``tests/test_core_batched.py`` and ``tests/test_core_arrays.py``
pin this), so the ``kernel`` choice is purely a performance switch.
The legacy ``batched`` flag maps onto it (``True`` -> ``"batched"``,
``False`` -> ``"reference"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arrays import PhiArray, arrays_for
from repro.core.assignment import Assignment
from repro.core.batched import BatchEvaluation, capacity_mask, delay_mask
from repro.core.capacity import CapacityLedger
from repro.core.feasibility import CAPACITY_TOLERANCE
from repro.core.neighborhood import Move, session_moves
from repro.core.objective import ObjectiveEvaluator, SessionCost
from repro.core.traffic import SessionUsage
from repro.errors import ModelError, SolverError
from repro.model.conference import Conference
from repro.netsim.noise import NoiseModel, NoNoise

#: Candidate-evaluation kernels, slowest to fastest; all bit-identical.
KERNELS = ("reference", "batched", "arrays")

#: Shared read-only ``arange`` prefixes for fully-feasible candidate
#: batches (the overwhelmingly common case on uncongested conferences),
#: keyed by length.
_IDENTITY_INDICES: dict[int, np.ndarray] = {}


def _identity_indices(n: int) -> np.ndarray:
    indices = _IDENTITY_INDICES.get(n)
    if indices is None:
        indices = np.arange(n, dtype=np.int64)
        indices.setflags(write=False)
        _IDENTITY_INDICES[n] = indices
    return indices


def resolve_kernel(kernel: str | None, batched: bool | None) -> str:
    """Fold the legacy ``batched`` flag and the ``kernel`` name into one
    validated kernel choice (both unset -> ``"arrays"``)."""
    if kernel is None:
        if batched is None:
            return "arrays"
        return "batched" if batched else "reference"
    if kernel not in KERNELS:
        raise SolverError(
            f"unknown search kernel {kernel!r}; expected one of {KERNELS}"
        )
    if batched is not None and bool(batched) != (kernel != "reference"):
        raise SolverError(
            f"kernel {kernel!r} contradicts batched={batched!r}"
        )
    return kernel


@dataclass(frozen=True)
class Candidate:
    """One feasible neighbouring assignment of a session."""

    move: Move
    assignment: Assignment
    cost: SessionCost

    @property
    def phi(self) -> float:
        return self.cost.phi


class CandidateBatch:
    """One session's feasible neighbours as flat arrays.

    Produced by :meth:`SearchContext.candidate_batch`.  Feasible
    candidates keep the reference enumeration order; :attr:`phi` holds
    their *observed* (possibly noise-perturbed) objectives, which is what
    the HOP selection rules act on.  :meth:`materialize` builds a full
    :class:`Candidate` only for the (single) chosen neighbour.
    """

    def __init__(
        self,
        evaluation: BatchEvaluation,
        feasible: np.ndarray,
        phi_observed: np.ndarray,
        traffic: np.ndarray,
        transcode: np.ndarray,
        base_assignment: Assignment,
    ):
        self._evaluation = evaluation
        self._feasible = feasible
        self._all_feasible = bool(feasible.all())
        self._feasible_indices = (
            _identity_indices(feasible.shape[0])
            if self._all_feasible
            else np.flatnonzero(feasible)
        )
        self._phi_observed = phi_observed
        self._traffic = traffic
        self._transcode = transcode
        self._base = base_assignment

    @property
    def sid(self) -> int:
        return self._evaluation.moves.sid

    @property
    def evaluation(self) -> BatchEvaluation:
        return self._evaluation

    @property
    def feasible_mask(self) -> np.ndarray:
        """Feasibility over the *raw* move set (before filtering)."""
        return self._feasible

    @property
    def num_feasible(self) -> int:
        return int(self._feasible_indices.shape[0])

    @property
    def phi(self) -> np.ndarray:
        """Observed ``phi`` of the feasible candidates, enumeration order."""
        if self._all_feasible:
            return self._phi_observed
        return self._phi_observed[self._feasible_indices]

    def materialize(self, position: int) -> Candidate:
        """Build the full :class:`Candidate` for the ``position``-th
        *feasible* neighbour (the index the hop rules select on)."""
        i = position if self._all_feasible else int(self._feasible_indices[position])
        evaluation = self._evaluation
        move = evaluation.moves.move(i)
        usage = SessionUsage(
            sid=self.sid,
            inter_in=evaluation.inter_in[i].copy(),
            inter_out=evaluation.inter_out[i].copy(),
            download=evaluation.download[i].copy(),
            upload=evaluation.upload[i].copy(),
            transcodes=evaluation.transcodes[i].copy(),
        )
        cost = SessionCost(
            sid=self.sid,
            phi=float(self._phi_observed[i]),
            delay_cost_ms=float(evaluation.delay_cost_ms[i]),
            traffic_cost=float(self._traffic[i]),
            transcode_cost=float(self._transcode[i]),
            usage=usage,
        )
        return Candidate(move=move, assignment=move.apply(self._base), cost=cost)

    def materialize_all(self) -> list[Candidate]:
        return [self.materialize(p) for p in range(self.num_feasible)]


class SearchContext:
    """Mutable search state shared by the local-search solvers.

    Parameters
    ----------
    evaluator:
        Objective evaluator (fixes the conference, alphas and costs).
    assignment:
        A feasible starting assignment covering ``active_sids``.
    active_sids:
        Sessions being optimized (defaults to all sessions); inactive
        sessions' users must be unassigned and are ignored.
    noise:
        Optional observation noise applied to every *candidate* objective
        evaluation (the current state's remembered cost stays exact), which
        models the noisy measurements of Sec. IV-A.4.
    rng:
        Generator used only for noise draws here; solvers hold their own.
    batched:
        Legacy kernel flag (``True`` -> ``"batched"``, ``False`` ->
        ``"reference"``); superseded by ``kernel``.
    kernel:
        One of :data:`KERNELS`; defaults to ``"arrays"`` when neither it
        nor ``batched`` is given.  All kernels yield bit-identical
        candidates.
    """

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        assignment: Assignment,
        active_sids: list[int] | None = None,
        noise: NoiseModel | None = None,
        rng: np.random.Generator | None = None,
        batched: bool | None = None,
        kernel: str | None = None,
    ):
        self._kernel = resolve_kernel(kernel, batched)
        self._batched = self._kernel != "reference"
        self._evaluator = evaluator
        self._conference = evaluator.conference
        self._active = (
            sorted(active_sids)
            if active_sids is not None
            else list(range(self._conference.num_sessions))
        )
        if not self._active:
            raise SolverError("at least one active session is required")
        self._assignment = assignment
        self._noise: NoiseModel = noise if noise is not None else NoNoise()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._costs: dict[int, SessionCost] = {
            sid: evaluator.session_cost(assignment, sid) for sid in self._active
        }
        if self._kernel == "arrays":
            # Struct-of-arrays extras: the hop kernel's flattened session
            # layouts, the phi mirror, and a ledger fed from the costs
            # just computed (``profile.session_usage`` is pinned
            # bit-identical to ``compute_session_usage``).
            self._arrays = arrays_for(evaluator.profile)
            self._phi = PhiArray(
                {sid: cost.phi for sid, cost in self._costs.items()}
            )
            self._ledger = CapacityLedger(self._conference)
            for cost in self._costs.values():
                self._ledger.set_session(cost.usage)
        else:
            self._arrays = None
            self._phi = None
            self._ledger = CapacityLedger.from_assignment(
                self._conference, assignment, self._active
            )

    # ------------------------------------------------------------------ #
    # State access                                                       #
    # ------------------------------------------------------------------ #

    @property
    def conference(self) -> Conference:
        return self._conference

    @property
    def evaluator(self) -> ObjectiveEvaluator:
        return self._evaluator

    @property
    def assignment(self) -> Assignment:
        return self._assignment

    @property
    def ledger(self) -> CapacityLedger:
        return self._ledger

    @property
    def active_sessions(self) -> list[int]:
        return list(self._active)

    @property
    def batched(self) -> bool:
        """Whether candidate evaluation uses a vectorized kernel."""
        return self._batched

    @property
    def kernel(self) -> str:
        """The selected candidate-evaluation kernel (:data:`KERNELS`)."""
        return self._kernel

    def session_cost(self, sid: int) -> SessionCost:
        return self._costs[sid]

    def total_phi(self) -> float:
        if self._phi is not None:
            return self._phi.total()
        return sum(cost.phi for cost in self._costs.values())

    def metrics(self) -> tuple[float, float]:
        """``(inter_agent_mbps, average_delay_ms)`` over active sessions."""
        profile = self._evaluator.profile
        traffic = sum(c.inter_agent_mbps for c in self._costs.values())
        delays: list[float] = []
        for sid in self._active:
            delays.extend(
                profile.session_user_delays(
                    self._assignment.user_agent, self._assignment.task_agent, sid
                ).values()
            )
        return traffic, float(np.mean(delays))

    # ------------------------------------------------------------------ #
    # Candidate evaluation                                               #
    # ------------------------------------------------------------------ #

    def evaluate_move(self, sid: int, move: Move) -> Candidate | None:
        """Apply feasibility rules to one move; None when infeasible.

        One pass computes the session usage (for the capacity check and
        the cost terms) and the flow delays (for constraint (8) and the
        delay cost); the candidate's stored cost is the *observed*
        (possibly noisy) one — exactly what Alg. 1's HOP acts on.
        """
        candidate = move.apply(self._assignment)
        profile = self._evaluator.profile
        usage = profile.session_usage(candidate.user_agent, candidate.task_agent, sid)
        if not self._ledger.fits(usage):
            return None
        delay_cost, max_flow = profile.session_delays(
            candidate.user_agent, candidate.task_agent, sid
        )
        if max_flow > self._conference.dmax_ms + 1e-9:
            return None
        cost = self._evaluator.assemble_session_cost(sid, usage, delay_cost)
        observed_phi = self._noise.perturb(cost.phi, self._rng)
        if observed_phi != cost.phi:
            cost = SessionCost(
                sid=cost.sid,
                phi=observed_phi,
                delay_cost_ms=cost.delay_cost_ms,
                traffic_cost=cost.traffic_cost,
                transcode_cost=cost.transcode_cost,
                usage=cost.usage,
            )
        return Candidate(move=move, assignment=candidate, cost=cost)

    def feasible_candidates(self, sid: int) -> list[Candidate]:
        """All feasible single-decision neighbours of session ``sid``."""
        if self._batched:
            return self.candidate_batch(sid).materialize_all()
        candidates = []
        for move in session_moves(self._conference, self._assignment, sid):
            candidate = self.evaluate_move(sid, move)
            if candidate is not None:
                candidates.append(candidate)
        return candidates

    def candidate_batch(self, sid: int) -> CandidateBatch:
        """Vectorized equivalent of :meth:`feasible_candidates`.

        One :mod:`repro.core.batched` array pass over the session's whole
        move set; noise draws are then applied per *feasible* candidate
        in enumeration order, consuming the generator exactly as the
        reference path does.
        """
        evaluation = self._evaluate_candidates(self._assignment, sid)
        feasible = self._feasibility_mask(sid, evaluation)
        traffic = self._evaluator.traffic_cost_batch(evaluation.inter_in)
        transcode = self._evaluator.transcode_cost_batch(evaluation.transcodes)
        phi = self._evaluator.phi_batch(evaluation.delay_cost_ms, traffic, transcode)
        if not isinstance(self._noise, NoNoise):
            phi = phi.copy()
            for i in np.flatnonzero(feasible):
                phi[i] = self._noise.perturb(float(phi[i]), self._rng)
        return CandidateBatch(
            evaluation=evaluation,
            feasible=feasible,
            phi_observed=phi,
            traffic=traffic,
            transcode=transcode,
            base_assignment=self._assignment,
        )

    def _evaluate_candidates(
        self, assignment: Assignment, sid: int
    ) -> BatchEvaluation:
        """One batch evaluation on the selected vectorized kernel."""
        if self._arrays is not None:
            return self._arrays.evaluate_candidates(assignment, sid)
        return self._evaluator.profile.evaluate_candidates(assignment, sid)

    def _feasibility_mask(self, sid: int, evaluation: BatchEvaluation) -> np.ndarray:
        mask = delay_mask(evaluation, self._conference.dmax_ms)
        if not self._ledger.unconstrained:
            res_down, res_up, res_slots = self._ledger.residuals(excluding_sid=sid)
            mask &= capacity_mask(
                evaluation, res_down, res_up, res_slots, CAPACITY_TOLERANCE
            )
        return mask

    def count_feasible(self, sid: int, assignment: Assignment) -> int:
        """Feasibility degree of ``sid`` at an arbitrary assignment.

        Used for the Hastings correction of the Metropolis hop rule: the
        neighbourhood size at a *proposed* state.  Because no other
        session moves, the residual capacities excluding ``sid`` are the
        same at the current and proposed states, so the current ledger
        answers the question without rebuilding any search state.
        """
        if self._batched:
            evaluation = self._evaluate_candidates(assignment, sid)
            if evaluation.size == 0:
                return 0
            return int(np.count_nonzero(self._feasibility_mask(sid, evaluation)))
        profile = self._evaluator.profile
        count = 0
        for move in session_moves(self._conference, assignment, sid):
            candidate = move.apply(assignment)
            usage = profile.session_usage(
                candidate.user_agent, candidate.task_agent, sid
            )
            if not self._ledger.fits(usage):
                continue
            _, max_flow = profile.session_delays(
                candidate.user_agent, candidate.task_agent, sid
            )
            if max_flow > self._conference.dmax_ms + 1e-9:
                continue
            count += 1
        return count

    def best_candidate(self, sid: int) -> Candidate | None:
        """The feasible neighbour of ``sid`` with the lowest *observed*
        ``phi``, or ``None`` when the session has no feasible move.

        Deterministic on every kernel: ties resolve to the first
        candidate in the reference enumeration order (``np.argmin``
        semantics), and without noise no generator state is consumed —
        this is the service layer's incremental-delta entry point, so it
        must never perturb replay determinism.
        """
        if self._batched:
            batch = self.candidate_batch(sid)
            if batch.num_feasible == 0:
                return None
            return batch.materialize(int(np.argmin(batch.phi)))
        best: Candidate | None = None
        for move in session_moves(self._conference, self._assignment, sid):
            candidate = self.evaluate_move(sid, move)
            if candidate is not None and (best is None or candidate.phi < best.phi):
                best = candidate
        return best

    def greedy_refine(self, sid: int, max_hops: int) -> int:
        """Commit up to ``max_hops`` strictly-improving best moves of
        ``sid`` and return how many were taken.

        Pure greedy descent on the session's own move set against the
        live ledger — the incremental re-solve a long-lived service runs
        after splicing a session in, bounded by a deterministic hop
        count rather than wall time so identical request logs yield
        identical decisions.
        """
        hops = 0
        while hops < max_hops:
            candidate = self.best_candidate(sid)
            if candidate is None or candidate.phi >= self._costs[sid].phi:
                break
            self.commit(sid, candidate)
            hops += 1
        return hops

    # ------------------------------------------------------------------ #
    # Commitment                                                         #
    # ------------------------------------------------------------------ #

    def commit(self, sid: int, candidate: Candidate) -> None:
        """Adopt a candidate: swap the assignment and refresh caches.

        The committed cost is re-evaluated noiselessly so the context's
        view of the current state stays exact (noise applies to
        *observations* of candidates, not to the state itself).  Without
        noise the candidate's stored cost already *is* that exact cost
        (the equivalence suites pin batch values against the reference
        recomputation bit-for-bit), so the arrays kernel skips the
        redundant per-hop recomputation.
        """
        self._assignment = candidate.assignment
        if self._phi is not None and isinstance(self._noise, NoNoise):
            exact_cost = candidate.cost
        else:
            exact_cost = self._evaluator.session_cost(candidate.assignment, sid)
        self._costs[sid] = exact_cost
        self._ledger.set_session(exact_cost.usage)
        if self._phi is not None:
            self._phi.set(sid, exact_cost.phi)

    # ------------------------------------------------------------------ #
    # Session dynamics (arrivals / departures)                           #
    # ------------------------------------------------------------------ #

    def add_session(self, sid: int, assignment: Assignment) -> None:
        """Activate a session bootstrapped in ``assignment`` (which must
        agree with the current assignment on all other sessions)."""
        if sid in self._costs:
            raise ModelError(f"session {sid} is already active")
        merged = self._assignment.merged(assignment, self._conference, sid)
        self._assignment = merged
        cost = self._evaluator.session_cost(merged, sid)
        self._costs[sid] = cost
        self._ledger.set_session(cost.usage)
        self._active = sorted(self._active + [sid])
        if self._phi is not None:
            self._phi.append(sid, cost.phi)

    def remove_session(self, sid: int) -> None:
        """Deactivate a session and release its capacity."""
        if sid not in self._costs:
            raise ModelError(f"session {sid} is not active")
        del self._costs[sid]
        self._ledger.remove_session(sid)
        self._active.remove(sid)
        if self._phi is not None:
            self._phi.remove(sid)
        self._assignment = self._assignment.with_session_cleared(self._conference, sid)
