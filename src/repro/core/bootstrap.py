"""Whole-conference bootstrapping: initial assignments for many sessions.

Sessions are bootstrapped one at a time (the paper's sessions start
independently); each sees the residual capacities left by those already
admitted via a shared :class:`CapacityLedger`.  The Fig. 9 success-rate
experiments call :func:`try_bootstrap` and count scenarios where every
session was admitted and the final assignment is feasible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Literal

from repro.core.agrank import AgRankConfig, agrank_assignment
from repro.core.assignment import Assignment
from repro.core.capacity import CapacityLedger
from repro.core.feasibility import check_assignment
from repro.core.nearest import nearest_assignment
from repro.core.traffic import compute_session_usage
from repro.errors import InfeasibleError, SolverError
from repro.model.conference import Conference

Policy = Literal["nearest", "agrank"]


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of a whole-conference bootstrap attempt."""

    assignment: Assignment
    success: bool
    failed_sid: int | None = None
    reason: str = ""


def bootstrap_assignment(
    conference: Conference,
    policy: Policy = "agrank",
    config: AgRankConfig | None = None,
    sids: Iterable[int] | None = None,
    check_delay: bool = True,
) -> Assignment:
    """Bootstrap the given (default all) sessions, raising on failure.

    ``check_delay=False`` validates capacities only: initial assignments
    may exceed ``Dmax`` on individual flows (AgRank is not delay-aware),
    and Alg. 1 — whose candidate filter enforces constraint (8) — heals
    them on its first hops.
    """
    result = try_bootstrap(conference, policy, config, sids, check_delay)
    if not result.success:
        raise InfeasibleError(
            f"bootstrap policy {policy!r} failed at session {result.failed_sid}: "
            f"{result.reason}"
        )
    return result.assignment


def try_bootstrap(
    conference: Conference,
    policy: Policy = "agrank",
    config: AgRankConfig | None = None,
    sids: Iterable[int] | None = None,
    check_delay: bool = True,
) -> BootstrapResult:
    """Bootstrap sessions one by one, reporting success or the first
    failure (capacity rejection or final infeasibility).

    ``check_delay=False`` restricts the final feasibility check to the
    capacity constraints (5)-(7) — the Fig. 9 notion of a "successfully
    initialized" scenario, which is about subscription capacity only.
    """
    if policy not in ("nearest", "agrank"):
        raise SolverError(f"unknown bootstrap policy {policy!r}")
    sid_list = list(sids) if sids is not None else list(range(conference.num_sessions))
    assignment = Assignment.empty(conference)
    ledger = CapacityLedger(conference)

    for sid in sid_list:
        if policy == "nearest":
            assignment = nearest_assignment(conference, [sid], base=assignment)
        else:
            try:
                assignment = agrank_assignment(
                    conference, sid, ledger=ledger, config=config, base=assignment
                )
            except InfeasibleError as error:
                return BootstrapResult(
                    assignment=assignment,
                    success=False,
                    failed_sid=sid,
                    reason=str(error),
                )
        ledger.set_session(compute_session_usage(conference, assignment, sid))

    report = check_assignment(
        conference,
        assignment,
        sid_list,
        dmax_ms=None if check_delay else math.inf,
    )
    if not report.ok:
        return BootstrapResult(
            assignment=assignment,
            success=False,
            failed_sid=None,
            reason=report.summary(),
        )
    return BootstrapResult(assignment=assignment, success=True)
