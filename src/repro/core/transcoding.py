"""Derived transcoding indicators (paper Sec. III-B).

From the task assignment ``gamma`` the paper derives

* ``nu_lru = max_v gamma_lruv`` — agent ``l`` transcodes ``u``'s stream to
  representation ``r`` for at least one destination, and
* ``nu'_lu = max_r nu_lru`` — agent ``l`` transcodes ``u``'s stream at all.

A transcoding *task* is a distinct ``(agent, source-user, target-rep)``
triple: it occupies one slot of ``t_l`` regardless of how many destinations
consume its output (constraint (7)).  Note that two destinations demanding
the same representation may still be served by tasks on *different* agents
(the assignment space allows it), in which case both tasks count.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.core.assignment import Assignment
from repro.model.conference import Conference
from repro.model.representation import Representation
from repro.types import UNASSIGNED

#: A transcoding task: (agent, source user, target representation).
TranscodeTask = tuple[int, int, Representation]


def active_transcodes(
    conference: Conference,
    assignment: Assignment,
    sids: Iterable[int] | None = None,
) -> set[TranscodeTask]:
    """The set of active tasks ``{(l, u, r) : nu_lru = 1}``.

    Restricted to the sessions in ``sids`` when given (the per-session
    ``nu`` used by ``y_ls``); otherwise global.
    """
    if sids is None:
        pair_indices: Iterable[int] = range(conference.theta_sum)
    else:
        pair_indices = [
            i for sid in sids for i in conference.session_pair_indices(sid)
        ]
    tasks: set[TranscodeTask] = set()
    pairs = conference.transcode_pairs
    for i in pair_indices:
        agent = assignment.task_agent_of(i)
        if agent == UNASSIGNED:
            continue
        source, destination = pairs[i]
        tasks.add((agent, source, conference.demanded_representation(source, destination)))
    return tasks


def transcode_counts(
    conference: Conference,
    assignment: Assignment,
    sids: Iterable[int] | None = None,
) -> np.ndarray:
    """Per-agent counts of active tasks (``y_ls`` summed over ``sids``).

    This is the left-hand side of constraint (7) when ``sids`` covers all
    active sessions.
    """
    counts = np.zeros(conference.num_agents, dtype=np.int64)
    for agent, _source, _rep in active_transcodes(conference, assignment, sids):
        counts[agent] += 1
    return counts


def session_transcode_map(
    conference: Conference, assignment: Assignment, sid: int
) -> dict[int, dict[Representation, set[int]]]:
    """For each source user of session ``sid``: representation -> the set of
    agents transcoding that (user, representation) — the per-source ``nu``.

    The inner sets usually hold one agent; they hold several when different
    destinations demanding the same representation were assigned different
    transcoding agents.
    """
    result: dict[int, dict[Representation, set[int]]] = defaultdict(
        lambda: defaultdict(set)
    )
    pairs = conference.transcode_pairs
    for i in conference.session_pair_indices(sid):
        agent = assignment.task_agent_of(i)
        if agent == UNASSIGNED:
            continue
        source, destination = pairs[i]
        rep = conference.demanded_representation(source, destination)
        result[source][rep].add(agent)
    return {u: dict(reps) for u, reps in result.items()}


def transcoding_agents_of(
    conference: Conference, assignment: Assignment, sid: int, source: int
) -> set[int]:
    """Agents with ``nu'_{l,source} = 1`` within session ``sid``."""
    agents: set[int] = set()
    pairs = conference.transcode_pairs
    for i in conference.session_pair_indices(sid):
        if pairs[i][0] != source:
            continue
        agent = assignment.task_agent_of(i)
        if agent != UNASSIGNED:
            agents.add(agent)
    return agents
