"""Struct-of-arrays conference core — the whole-conference fast kernel.

PR 2's batched kernel (:mod:`repro.core.batched`) vectorized one
session's move set, but it still rebuilds Python-side structure on every
hop: per-decision column dicts, first-occurrence masks from scratch, a
Python loop over ``k * (k - 1)`` flows, and a ``positions`` dict per
call.  At 10-100x ``huge_conference`` scale that per-hop Python work —
plus the :meth:`SearchContext.total_phi` walk over every live
``SessionCost`` object — dominates the wall clock.

This module flattens the *static* structure of every session once into
parallel numpy index arrays (:class:`SessionLayout`).  Every usage
contribution of the reference kernel (a ``+= kappa`` into one per-agent
slot, guarded by set-dedup conditions) becomes one row of a static
instruction table: the decision row whose agent the contribution reads,
the scalar weight, and "not-equal edges" encoding the dedup guards.
A hop then reduces to one gather of the session's current decisions,
one block scatter for the candidate axis, one combined gather of every
instruction row (usage contributions, flow endpoints, dedup edges), a
handful of whole-table comparisons for the masks, and a single
``np.bincount`` accumulating all four usage arrays at once — no Python
loop over streams, groups or flows, and no per-hop allocation beyond
the output arrays.  :class:`PhiArray` is the companion piece for the
conference-level state: per-session ``phi`` lives in one
insertion-ordered float array updated in place on commit, so the global
objective is a single sequential array reduction instead of a Python
walk.

Bit-for-bit equivalence contract
--------------------------------

The arrays kernel inherits the contract of :mod:`repro.core.batched`
(same enumeration order, same masks, same IEEE-754 values — see that
module's docstring for the three ordering rules) and adds four of its
own:

* Usage accumulation uses one ``np.bincount`` over flattened
  ``(usage array, candidate, agent)`` bins.  ``bincount`` adds its
  weights in input order, and the instruction rows are laid out in
  exactly the reference's contribution order (stream-major; per stream
  last-mile, then per-group transcode traffic with the destination loop
  outer and the task loop inner, then raw targets), so every slot
  accumulates the same addends in the same sequence as the reference
  Python loop.  The four usage arrays and the transcode counts occupy
  five disjoint bin blocks (counts ride along with weight ``1.0`` —
  small integers are exact in float64 — and cast back to int), and
  masked-out contributions land in a sink column (agent id ``L``) that
  is sliced away, never skewing real slots.
* Flow delays keep the *same parenthesization* as the reference:
  ``(h[a, src] + h[b, dst]) + d[a, b]`` for direct flows and ``(h[a,
  src] + h[b, dst]) + ((d[a, m] + d[m, b]) + sigma[pair, m])`` for
  transcoded ones.  When the agent matrix is clean (an exactly ``+0.0``
  diagonal and no ``-0.0`` entries — every latency model here) both
  kinds evaluate through one fused instruction block by treating a
  direct flow as a transcoded flow via its own source agent (``d[a, a]
  = +0.0``) with a zero sigma row, which is addend-for-addend exact:
  ``+0.0 + x == x`` bitwise for every ``x`` that is not ``-0.0``.
  Unclean matrices fall back to split direct/transcoded blocks.
* Flows are *statically ordered by destination user* in fused layouts,
  so the per-user worst reduces with ``np.maximum.reduceat`` over
  contiguous segments with no per-hop permutation; per-flow delays are
  mutually independent and ``max`` over floats is exact under any
  reordering, so the reference's per-user and per-session maxima (and
  their 0.0 clamps) are unchanged.
* :meth:`PhiArray.total` reduces the per-session values with
  ``np.add.accumulate`` — a strictly sequential left-to-right
  accumulation — over dict-insertion order, which is bitwise identical
  to the reference ``sum(cost.phi for cost in costs.values())``
  (``0 + x == x`` exactly).

``tests/test_core_arrays.py`` pins all of it against both the reference
and batched paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batched import BatchEvaluation, MoveBatch
from repro.core.neighborhood import KIND_TASK, KIND_USER
from repro.errors import ModelError

__all__ = [
    "SessionLayout",
    "ConferenceArrays",
    "PhiArray",
    "arrays_for",
]


@dataclass(frozen=True)
class SessionLayout:
    """All static per-session structure, flattened to index arrays.

    Decision rows are ordered users-then-pairs, matching the move
    enumeration of :func:`repro.core.batched.build_move_batch`.  The
    heart of the layout is ``all_rows``, the combined instruction table:
    one gather ``cols[all_rows]`` yields, for every candidate at once,
    the agent id behind every usage contribution, flow endpoint and
    dedup edge.  Its row blocks are, in order (``S`` streams, ``P``
    inter-agent contributions, ``G`` transcode instructions, ``F``
    flows, ``E`` / ``TE`` dedup edges)::

        [0, S)            last-mile download (stream sources)
        [S, 2S)           last-mile upload (same rows again)
        [2S, 2S + P)      inter-agent senders  (task / source rows)
        [2S + P, 2S + 2P) inter-agent receivers (dest / symbol rows)
        [2S + 2P, n_u)    transcode-count task rows  (n_u = 2S + 2P + G)
        [n_u, +F)         flow sources
        [.., +F)          flow destinations
        [.., +F or +F2)   flow middles (task rows; fused layouts carry
                          the source row again for direct flows)
        [.., +E), [.., +TE)   guard-edge "a" endpoints (inter, then tc)
        [.., +E), [.., +TE)   guard-edge "b" endpoints (same order)

    The first ``n_u`` rows feed one ``np.bincount`` whose flattened bins
    are ``block * C * (L + 1) + candidate * (L + 1) + agent``
    (``usage_offsets`` pre-computes everything but the agent), with
    ``usage_weights`` carrying the per-contribution scalars (``1.0`` for
    the transcode-count block).  The edge blocks interleave "a" and "b"
    halves so one whole-table comparison evaluates every guard at once:
    the implicit ``receiver != sender`` condition is edge 0 of each
    inter contribution's ``guard_starts`` segment, so a single
    ``np.bitwise_or.reduceat`` yields the ``P`` inter masks followed by
    the transcode duplicate masks (scattered via ``tc_e_rows``).
    """

    sid: int
    uids: np.ndarray
    pairs: np.ndarray
    num_users: int
    #: Static :class:`MoveBatch` columns (kind / moved-decision id).
    kinds: np.ndarray
    indices: np.ndarray
    #: ``(D, 1)`` / ``(D, A)`` fancy indices scattering the move blocks.
    block_rows: np.ndarray
    block_cols: np.ndarray
    #: Combined instruction table (see class docstring) and the block
    #: sizes carving it into slices.
    all_rows: np.ndarray
    num_streams: int
    num_inter: int
    num_flows: int
    num_direct: int
    num_edges: int
    num_tc_edges: int
    num_transcodes: int
    usage_offsets: np.ndarray
    usage_weights: np.ndarray
    #: Guard segments over the combined edge table: the first ``P``
    #: segments are the inter contributions (edge 0 is the implicit
    #: ``receiver != sender``; the rest encode set-dedup first-occurrence
    #: guards and the group rows' ``dest != source agent`` condition),
    #: the remaining segments are transcode duplicate guards scattering
    #: to task rows ``tc_e_rows`` (within-group first occurrence).
    guard_starts: np.ndarray
    tc_e_rows: np.ndarray
    #: Flow metadata: the users bounding each flow (as ``(F, 1)``
    #: columns into ``h``).  ``flows_fused`` selects the fused one-block
    #: formula; ``sig_rows`` then indexes the zero-padded sigma matrix
    #: (direct flows point at the zero row) and flows are pre-sorted by
    #: destination (``perm`` is None).  Split layouts keep direct flows
    #: first and ``perm`` re-sorts by destination at run time.
    flows_fused: bool
    f_src_uids: np.ndarray
    f_dst_uids: np.ndarray
    sig_rows: np.ndarray | None
    t_pair_ids: np.ndarray | None
    perm: np.ndarray | None
    seg_starts: np.ndarray


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def _build_layout(
    plan, num_agents: int, num_pairs: int, demand_out_mbps, fused: bool
) -> SessionLayout:
    users = plan.users
    pair_indices = plan.pair_indices
    num_users = len(users)
    num_decisions = num_users + len(pair_indices)
    alternatives = max(num_agents - 1, 0)
    size = num_decisions * alternatives

    row_of_user = {uid: i for i, uid in enumerate(users)}
    row_of_pair = {p: num_users + j for j, p in enumerate(pair_indices)}

    decision_kinds = np.concatenate(
        [
            np.full(num_users, KIND_USER, dtype=np.uint8),
            np.full(len(pair_indices), KIND_TASK, dtype=np.uint8),
        ]
    )
    decision_indices = np.concatenate(
        [
            np.asarray(users, dtype=np.int64),
            np.asarray(pair_indices, dtype=np.int64),
        ]
    )

    # Instruction tables, accumulated in exact reference order.
    lm_src: list[int] = []
    lm_kappa: list[float] = []
    lm_demand: list[float] = []
    tc_rows: list[int] = []
    tc_e_a: list[int] = []
    tc_e_b: list[int] = []
    tc_e_starts: list[int] = []
    tc_e_rows: list[int] = []
    iv_out: list[int] = []
    iv_in: list[int] = []
    iv_kappa: list[float] = []
    e_a: list[int] = []
    e_b: list[int] = []
    e_starts: list[int] = []

    def edges_for(pairs: list[tuple[int, int]]) -> None:
        # Every inter contribution opens a guard segment (edge 0 is the
        # implicit receiver != sender), so reduceat output row g IS
        # contribution g — no scatter needed.
        e_starts.append(len(e_a))
        for row_a, row_b in pairs:
            e_a.append(row_a)
            e_b.append(row_b)

    for stream in plan.streams:
        src = row_of_user[stream.source]
        lm_src.append(src)
        lm_kappa.append(float(stream.kappa_up))
        lm_demand.append(float(demand_out_mbps[stream.source]))

        raw_symbol_rows: list[int] = []
        for kappa, pair_list, dests in stream.transcode_groups:
            task_rows = [row_of_pair[i] for i in pair_list]
            for ti, task_row in enumerate(task_rows):
                tc_rows.append(task_row)
                if ti:
                    tc_e_starts.append(len(tc_e_a))
                    tc_e_rows.append(len(tc_rows) - 1)
                    for tj in range(ti):
                        tc_e_a.append(task_row)
                        tc_e_b.append(task_rows[tj])
            dest_rows = [row_of_user[v] for v in dests]
            for dv, dest_row in enumerate(dest_rows):
                for ti, task_row in enumerate(task_rows):
                    iv_out.append(task_row)
                    iv_in.append(dest_row)
                    iv_kappa.append(float(kappa))
                    # dest != task agent (implicit), dest != source
                    # agent, dest-first (vs earlier dests of the
                    # group), task-first (vs earlier tasks).
                    edges_for(
                        [(dest_row, task_row), (dest_row, src)]
                        + [(dest_row, dest_rows[dvp]) for dvp in range(dv)]
                        + [(task_row, task_rows[tip]) for tip in range(ti)],
                    )
            raw_symbol_rows.extend(task_rows)
        raw_symbol_rows.extend(row_of_user[v] for v in stream.raw_dest_users)

        for q, symbol_row in enumerate(raw_symbol_rows):
            iv_out.append(src)
            iv_in.append(symbol_row)
            iv_kappa.append(float(stream.kappa_up))
            # symbol != source agent (implicit), then symbol-first vs
            # every earlier raw symbol of the stream.
            edges_for(
                [(symbol_row, src)]
                + [(symbol_row, raw_symbol_rows[qp]) for qp in range(q)]
            )

    # Flow plan.  Fused layouts sort flows by destination user up front
    # (per-flow values are independent, and both downstream reductions
    # are order-exact maxima); split layouts keep direct-then-task order
    # and re-sort at run time.
    direct = [f for f in plan.flows if f[2] < 0]
    tasked = [f for f in plan.flows if f[2] >= 0]
    flows: list[tuple[int, int, int]] = direct + tasked
    if fused:
        flows = sorted(flows, key=lambda f: row_of_user[f[1]])
    dest_positions = np.asarray(
        [row_of_user[f[1]] for f in flows], dtype=np.int64
    )
    if fused:
        ordered = dest_positions
        perm = None
    else:
        perm = np.argsort(dest_positions, kind="stable")
        ordered = dest_positions[perm]
    seg_starts = np.flatnonzero(
        np.concatenate([[True], ordered[1:] != ordered[:-1]])
    )
    if seg_starts.shape[0] != num_users:
        raise ModelError(
            f"session {plan.sid} flow plan does not cover every user"
        )

    f_src_rows = [row_of_user[f[0]] for f in flows]
    if fused:
        # Direct flows route "via" their own source agent: d[a, a] is
        # exactly +0.0 (checked by the caller) and sigma row
        # ``num_pairs`` is the zero padding row.
        f_mid_rows = [
            f_src_rows[i] if f[2] < 0 else row_of_pair[f[2]]
            for i, f in enumerate(flows)
        ]
        sig_rows = [num_pairs if f[2] < 0 else f[2] for f in flows]
        t_pair_ids = None
    else:
        f_mid_rows = [row_of_pair[f[2]] for f in tasked]
        sig_rows = None
        t_pair_ids = [f[2] for f in tasked]

    all_rows = np.asarray(
        lm_src
        + lm_src
        + iv_out
        + iv_in
        + tc_rows
        + f_src_rows
        + [row_of_user[f[1]] for f in flows]
        + f_mid_rows
        + e_a
        + tc_e_a
        + e_b
        + tc_e_b,
        dtype=np.int64,
    )
    # Flattened bin index minus the agent id: usage-array block plus
    # candidate column, both scaled by the (L + 1)-wide agent axis.
    bins_per_block = size * (num_agents + 1)
    num_streams = len(lm_src)
    num_inter = len(iv_out)
    block_of = np.repeat(
        np.arange(5, dtype=np.int64),
        [num_streams, num_streams, num_inter, num_inter, len(tc_rows)],
    )
    usage_offsets = (
        block_of[:, None] * bins_per_block
        + (np.arange(size, dtype=np.int64) * (num_agents + 1))[None, :]
    )
    usage_weights = np.repeat(
        np.asarray(
            lm_kappa + lm_demand + iv_kappa + iv_kappa + [1.0] * len(tc_rows),
            dtype=np.float64,
        ),
        size,
    )
    guard_starts = e_starts + [len(e_a) + start for start in tc_e_starts]

    as_i64 = lambda xs: _frozen(np.asarray(xs, dtype=np.int64))
    column = lambda xs: _frozen(np.asarray(xs, dtype=np.int64)[:, None])
    return SessionLayout(
        sid=plan.sid,
        uids=as_i64(users),
        pairs=as_i64(pair_indices),
        num_users=num_users,
        kinds=_frozen(np.repeat(decision_kinds, alternatives)),
        indices=_frozen(np.repeat(decision_indices, alternatives)),
        block_rows=_frozen(np.arange(num_decisions, dtype=np.int64)[:, None]),
        block_cols=_frozen(
            np.arange(size, dtype=np.int64).reshape(
                num_decisions, alternatives
            )
        ),
        all_rows=_frozen(all_rows),
        num_streams=num_streams,
        num_inter=num_inter,
        num_flows=len(flows),
        num_direct=len(direct),
        num_edges=len(e_a),
        num_tc_edges=len(tc_e_a),
        num_transcodes=len(tc_rows),
        usage_offsets=_frozen(usage_offsets),
        usage_weights=_frozen(usage_weights),
        guard_starts=as_i64(guard_starts),
        tc_e_rows=as_i64(tc_e_rows),
        flows_fused=fused,
        f_src_uids=column([f[0] for f in flows]),
        f_dst_uids=column([f[1] for f in flows]),
        sig_rows=None if sig_rows is None else column(sig_rows),
        t_pair_ids=None if t_pair_ids is None else column(t_pair_ids),
        perm=None if perm is None else _frozen(perm),
        seg_starts=_frozen(seg_starts),
    )


class ConferenceArrays:
    """Flattened per-conference state + the single-pass hop kernel.

    Built lazily on top of a :class:`~repro.core.fastpath.
    ConferenceProfile` (which owns the latency/bitrate matrices); one
    :class:`SessionLayout` per session is constructed on first use and
    reused for the conference's lifetime.  :meth:`warm` prebuilds every
    layout so steady-state timing excludes construction.
    """

    def __init__(self, profile):
        self._profile = profile
        self._num_agents = int(profile.num_agents)
        self._h = profile.h
        self._d = profile.d
        self._sigma = profile.sigma
        self._num_pairs = int(self._sigma.shape[0])
        # The fused flow formula needs d[a, a] == +0.0 exactly and no
        # -0.0 anywhere (see the module contract); every latency model
        # here qualifies, but hand-built matrices fall back safely.
        d = self._d
        diagonal = np.diagonal(d)
        self._flows_fused = bool(
            np.all(diagonal == 0.0)
            and not np.signbit(diagonal).any()
            and not ((d == 0.0) & np.signbit(d)).any()
        )
        self._sigma_pad = _frozen(
            np.concatenate(
                [self._sigma, np.zeros((1, self._sigma.shape[1]))]
            )
            if self._num_pairs
            else np.zeros((1, max(self._num_agents, 1)))
        )
        alternatives = max(self._num_agents - 1, 0)
        self._alt = np.arange(alternatives, dtype=np.int64)[None, :]
        self._layouts: dict[int, SessionLayout] = {}
        #: Reusable per-shape scratch buffers.  Everything handed out in
        #: a :class:`BatchEvaluation` is freshly allocated per call;
        #: only internal intermediates live here.
        self._scratch: dict[tuple, np.ndarray] = {}

    @property
    def profile(self):
        return self._profile

    def layout(self, sid: int) -> SessionLayout:
        layout = self._layouts.get(sid)
        if layout is None:
            layout = _build_layout(
                self._profile.plan(sid),
                self._num_agents,
                self._num_pairs,
                self._profile.demand_out_mbps,
                self._flows_fused,
            )
            self._layouts[sid] = layout
        return layout

    def warm(self, sids) -> None:
        """Prebuild the layouts of ``sids`` (steady-state preparation)."""
        for sid in sids:
            self.layout(sid)

    def _buffer(
        self, tag: str, shape: tuple, dtype=np.int64
    ) -> np.ndarray:
        key = (tag,) + shape
        buffer = self._scratch.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[key] = buffer
        return buffer

    # ------------------------------------------------------------------ #
    # The kernel                                                         #
    # ------------------------------------------------------------------ #

    def evaluate_candidates(self, assignment, sid: int) -> BatchEvaluation:
        """Single-pass equivalent of
        :meth:`ConferenceProfile.evaluate_candidates` on the flattened
        layout — bit-for-bit identical outputs."""
        layout = self.layout(sid)
        num_agents = self._num_agents
        num_uids = layout.uids.shape[0]
        current = self._buffer(
            "cur", (num_uids + layout.pairs.shape[0],)
        )
        np.take(assignment.user_agent, layout.uids, out=current[:num_uids])
        np.take(assignment.task_agent, layout.pairs, out=current[num_uids:])
        if current.size and int(current.min()) < 0:
            raise ModelError(f"session {sid} has unassigned decisions")

        alternatives = num_agents - 1
        size = layout.kinds.shape[0]
        if alternatives <= 0 or size == 0:
            return self._empty_evaluation(sid, layout)
        new_agents = self._alt + (self._alt >= current[:, None])
        moves = MoveBatch(
            sid=sid,
            kinds=layout.kinds,
            indices=layout.indices,
            old_agents=np.repeat(current, alternatives),
            new_agents=new_agents.reshape(-1),
        )

        # (D, C) decision matrix: every decision's agent id per candidate
        # — the base assignment everywhere except each move's own block.
        cols = self._buffer("cols", (current.shape[0], size))
        cols[:] = current[:, None]
        cols[layout.block_rows, layout.block_cols] = new_agents

        # One gather resolves every instruction row, flow endpoint and
        # dedup edge.
        values = self._buffer("vals", (layout.all_rows.shape[0], size))
        np.take(cols, layout.all_rows, axis=0, out=values)
        num_inter = layout.num_inter
        num_tc = layout.num_transcodes
        n_lastmile = 2 * layout.num_streams
        n_usage = n_lastmile + 2 * num_inter + num_tc
        num_mid = (
            layout.num_flows
            if layout.flows_fused
            else layout.num_flows - layout.num_direct
        )
        edges_at = n_usage + 2 * layout.num_flows + num_mid

        # One whole-table comparison + one reduceat evaluates every
        # guard: the first ``num_inter`` segments are the inter-agent
        # dedup masks (edge 0 is the implicit receiver != sender), the
        # rest are transcode duplicate masks.  Failing contributions are
        # redirected to the sink column (agent id L).
        num_guard = layout.num_edges + layout.num_tc_edges
        if num_guard:
            fail = (
                values[edges_at : edges_at + num_guard]
                == values[edges_at + num_guard : edges_at + 2 * num_guard]
            )
            guard = np.bitwise_or.reduceat(
                fail, layout.guard_starts, axis=0
            )
            if num_inter:
                senders = values[n_lastmile : n_lastmile + num_inter]
                receivers = values[
                    n_lastmile + num_inter : n_lastmile + 2 * num_inter
                ]
                mask = guard[:num_inter]
                np.copyto(senders, num_agents, where=mask)
                np.copyto(receivers, num_agents, where=mask)
            if guard.shape[0] > num_inter:
                task_agents = values[n_lastmile + 2 * num_inter : n_usage]
                duplicate = guard[num_inter:]
                task_agents[layout.tc_e_rows] = np.where(
                    duplicate, num_agents, task_agents[layout.tc_e_rows]
                )

        # All four usage arrays plus the transcode counts in one
        # input-ordered bincount over five disjoint bin blocks.
        bins_per_block = size * (num_agents + 1)
        bins = self._buffer("bins", (n_usage, size))
        np.add(values[:n_usage], layout.usage_offsets, out=bins)
        flat = np.bincount(
            bins.ravel(),
            weights=layout.usage_weights,
            minlength=5 * bins_per_block,
        ).reshape(5, size, num_agents + 1)
        lastmile_down, lastmile_up, inter_out, inter_in, tc_counts = flat
        inter_out = inter_out[:, :num_agents]
        inter_in = inter_in[:, :num_agents]
        # Counts rode along as 1.0 weights — small integers are exact in
        # float64 — and cast back losslessly.
        transcodes = tc_counts[:, :num_agents].astype(np.int64)

        delay_cost, max_flow = self._flow_delays(layout, values, n_usage, size)
        return BatchEvaluation(
            moves=moves,
            inter_in=inter_in,
            inter_out=inter_out,
            download=lastmile_down[:, :num_agents] + inter_in,
            upload=lastmile_up[:, :num_agents] + inter_out,
            transcodes=transcodes,
            delay_cost_ms=delay_cost,
            max_flow_ms=max_flow,
        )

    def _flow_delays(
        self,
        layout: SessionLayout,
        values: np.ndarray,
        flows_at: int,
        size: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        h, d = self._h, self._d
        num_flows = layout.num_flows
        num_users = layout.num_users
        if not num_flows or not num_users:
            return np.zeros(size), np.zeros(size)
        a = values[flows_at : flows_at + num_flows]
        b = values[flows_at + num_flows : flows_at + 2 * num_flows]
        delays = self._buffer(
            "delays", (num_flows, size), dtype=np.float64
        )
        np.add(h[a, layout.f_src_uids], h[b, layout.f_dst_uids], out=delays)
        if layout.flows_fused:
            # One fused block: direct flows hop "via" their own source
            # agent (d[a, a] == +0.0, zero sigma row) — addend-exact.
            m = values[flows_at + 2 * num_flows : flows_at + 3 * num_flows]
            hops = self._buffer(
                "hops", (num_flows, size), dtype=np.float64
            )
            np.add(d[a, m], d[m, b], out=hops)
            hops += self._sigma_pad[layout.sig_rows, m]
            delays += hops
            sorted_delays = delays
        else:
            num_direct = layout.num_direct
            num_tasked = num_flows - num_direct
            if num_direct:
                delays[:num_direct] += d[a[:num_direct], b[:num_direct]]
            if num_tasked:
                at = flows_at + 2 * num_flows
                m = values[at : at + num_tasked]
                hops = np.add(d[a[num_direct:], m], d[m, b[num_direct:]])
                hops += self._sigma[layout.t_pair_ids, m]
                delays[num_direct:] += hops
            sorted_delays = delays[layout.perm]

        # Segment-max per destination user; exact under any reduction
        # order, clamped at the reference's 0.0 initial value.
        worst = np.maximum.reduceat(sorted_delays, layout.seg_starts, axis=0)
        np.maximum(worst, 0.0, out=worst)
        max_flow = np.maximum(delays.max(axis=0), 0.0)

        # ``np.add.accumulate`` is a strictly sequential left-to-right
        # reduction, replicating the reference's ``sum(worst.values())``
        # exactly (the implicit leading ``0.0 + x`` is exact); np.sum's
        # pairwise order would not.
        np.add.accumulate(worst, axis=0, out=worst)
        return worst[num_users - 1] / num_users, max_flow

    def _empty_evaluation(
        self, sid: int, layout: SessionLayout
    ) -> BatchEvaluation:
        num_agents = self._num_agents
        empty_i = np.empty(0, dtype=np.int64)
        moves = MoveBatch(
            sid=sid,
            kinds=np.empty(0, dtype=np.uint8),
            indices=empty_i,
            old_agents=empty_i,
            new_agents=empty_i.copy(),
        )
        zeros = lambda: np.zeros((0, num_agents))
        return BatchEvaluation(
            moves=moves,
            inter_in=zeros(),
            inter_out=zeros(),
            download=zeros(),
            upload=zeros(),
            transcodes=np.zeros((0, num_agents), dtype=np.int64),
            delay_cost_ms=np.zeros(0),
            max_flow_ms=np.zeros(0),
        )


class PhiArray:
    """Per-session ``phi`` as one insertion-ordered float array.

    Mirrors the insertion-order semantics of the reference
    ``dict[int, SessionCost]`` exactly: initial sessions in sorted order,
    arrivals appended at the end, departures deleted in place, commits
    updating one slot — so :meth:`total`'s sequential reduction is
    bitwise identical to the reference Python sum over ``.values()``.
    """

    def __init__(self, phis: dict[int, float]):
        self._position = {sid: i for i, sid in enumerate(phis)}
        self._values = np.fromiter(phis.values(), dtype=float, count=len(phis))
        self._scratch = np.empty_like(self._values)

    def set(self, sid: int, phi: float) -> None:
        self._values[self._position[sid]] = phi

    def append(self, sid: int, phi: float) -> None:
        self._position[sid] = self._values.shape[0]
        self._values = np.append(self._values, phi)
        self._scratch = np.empty_like(self._values)

    def remove(self, sid: int) -> None:
        gone = self._position.pop(sid)
        self._values = np.delete(self._values, gone)
        self._scratch = np.empty_like(self._values)
        for other, position in self._position.items():
            if position > gone:
                self._position[other] = position - 1

    def total(self) -> float | int:
        """Exact sequential sum; ``0`` (the int, like ``sum(())``) when
        no session is live."""
        if self._values.shape[0] == 0:
            return 0
        np.add.accumulate(self._values, out=self._scratch)
        return float(self._scratch[-1])


def arrays_for(profile) -> ConferenceArrays:
    """The conference's :class:`ConferenceArrays`, cached on the profile
    (same lifetime, no global registry)."""
    arrays = getattr(profile, "_conference_arrays", None)
    if arrays is None:
        arrays = ConferenceArrays(profile)
        profile._conference_arrays = arrays
    return arrays
