"""Constraint checking: (1)-(8) of problem UAP.

Constraints (1)-(4) are structural (one agent per user, one agent per
transcoding pair) and hold by construction of :class:`Assignment` whenever
every active entry is a valid agent id; the checker verifies that.
Constraints (5)-(7) are the capacity constraints, evaluated on the summed
per-session usage; constraint (8) caps every flow's end-to-end delay at
``Dmax``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.assignment import Assignment
from repro.core.delay import delay_violations
from repro.core.traffic import compute_session_usage
from repro.model.conference import Conference
from repro.types import UNASSIGNED

#: Numerical slack for capacity comparisons.
CAPACITY_TOLERANCE = 1e-9


@dataclass
class FeasibilityReport:
    """The outcome of a full constraint check.

    ``violations`` holds one human-readable line per violated constraint;
    an empty list means the assignment is feasible.
    """

    ok: bool = True
    violations: list[str] = field(default_factory=list)

    def add(self, message: str) -> None:
        self.ok = False
        self.violations.append(message)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return "feasible"
        return f"{len(self.violations)} violation(s):\n  " + "\n  ".join(self.violations)


def agent_capacity_arrays(conference: Conference) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(download, upload, transcode)`` capacity vectors (may contain inf)."""
    download = np.array([a.download_mbps for a in conference.agents], dtype=float)
    upload = np.array([a.upload_mbps for a in conference.agents], dtype=float)
    slots = np.array([a.transcode_slots for a in conference.agents], dtype=float)
    return download, upload, slots


def check_assignment(
    conference: Conference,
    assignment: Assignment,
    sids: Iterable[int] | None = None,
    dmax_ms: float | None = None,
) -> FeasibilityReport:
    """Check constraints (1)-(8) over the given (default all) sessions."""
    report = FeasibilityReport()
    if sids is None:
        sids = range(conference.num_sessions)
    sids = list(sids)
    num_agents = conference.num_agents

    # (1)-(2): every active user attached to exactly one valid agent.
    for sid in sids:
        for uid in conference.session(sid).user_ids:
            agent = assignment.agent_of(uid)
            if agent == UNASSIGNED:
                report.add(f"constraint (1): user {uid} (session {sid}) unassigned")
            elif not 0 <= agent < num_agents:
                report.add(f"constraint (2): user {uid} has invalid agent {agent}")

    # (3)-(4): every active transcoding pair placed on exactly one agent.
    for sid in sids:
        for i in conference.session_pair_indices(sid):
            agent = assignment.task_agent_of(i)
            source, destination = conference.transcode_pairs[i]
            if agent == UNASSIGNED:
                report.add(
                    f"constraint (3): transcoding {source}->{destination} unassigned"
                )
            elif not 0 <= agent < num_agents:
                report.add(
                    f"constraint (4): transcoding {source}->{destination} has "
                    f"invalid agent {agent}"
                )
    if not report.ok:
        return report  # usage/delay formulas require a structurally valid state

    # (5)-(7): capacities against the summed session usage.
    download = np.zeros(num_agents)
    upload = np.zeros(num_agents)
    transcodes = np.zeros(num_agents)
    for sid in sids:
        usage = compute_session_usage(conference, assignment, sid)
        download += usage.download
        upload += usage.upload
        transcodes += usage.transcodes
    cap_down, cap_up, cap_slots = agent_capacity_arrays(conference)
    for l in range(num_agents):
        name = conference.agent(l).name
        if download[l] > cap_down[l] + CAPACITY_TOLERANCE:
            report.add(
                f"constraint (5): agent {name} download {download[l]:.3f} Mbps "
                f"> capacity {cap_down[l]:.3f}"
            )
        if upload[l] > cap_up[l] + CAPACITY_TOLERANCE:
            report.add(
                f"constraint (6): agent {name} upload {upload[l]:.3f} Mbps "
                f"> capacity {cap_up[l]:.3f}"
            )
        if transcodes[l] > cap_slots[l] + CAPACITY_TOLERANCE:
            report.add(
                f"constraint (7): agent {name} runs {transcodes[l]:.0f} transcodes "
                f"> capacity {cap_slots[l]:.0f}"
            )

    # (8): per-flow delay cap.
    for sid in sids:
        for source, destination, delay in delay_violations(
            conference, assignment, sid, dmax_ms
        ):
            report.add(
                f"constraint (8): flow {source}->{destination} delay "
                f"{delay:.1f} ms > Dmax"
            )
    return report


def is_feasible(
    conference: Conference,
    assignment: Assignment,
    sids: Iterable[int] | None = None,
    dmax_ms: float | None = None,
) -> bool:
    """Boolean shortcut for :func:`check_assignment`."""
    return check_assignment(conference, assignment, sids, dmax_ms).ok
