"""Convex cost-function library for ``g_l`` and ``h_l`` (paper Sec. III-D).

The paper requires ``g_l`` (bandwidth) convex increasing and ``h_l``
(transcoding) convex.  Throughout the evaluation it reports raw inter-agent
Mbps and task counts, i.e. the identity cost; dollar-denominated and
superlinear (congestion-averse) variants are provided for completeness and
the ablation benches.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.errors import ModelError


@runtime_checkable
class CostFunction(Protocol):
    """A scalar convex cost ``cost(x)`` with ``x >= 0``."""

    def __call__(self, x: float) -> float:
        ...


@dataclass(frozen=True)
class LinearCost:
    """``cost(x) = rate * x`` (the identity for ``rate=1``, the paper's
    reporting unit)."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ModelError(f"rate must be >= 0, got {self.rate}")

    def __call__(self, x: float) -> float:
        return self.rate * x


@dataclass(frozen=True)
class PowerCost:
    """``cost(x) = coefficient * x ** exponent`` with ``exponent >= 1``
    (convex increasing); models congestion-sensitive egress pricing."""

    coefficient: float = 1.0
    exponent: float = 1.2

    def __post_init__(self) -> None:
        if self.coefficient < 0:
            raise ModelError("coefficient must be >= 0")
        if self.exponent < 1.0:
            raise ModelError(
                f"exponent must be >= 1 for convexity, got {self.exponent}"
            )

    def __call__(self, x: float) -> float:
        if x < 0:
            raise ModelError(f"cost argument must be >= 0, got {x}")
        return self.coefficient * x**self.exponent


@dataclass(frozen=True)
class PiecewiseLinearCost:
    """A convex piecewise-linear cost given by breakpoints and slopes.

    ``slopes`` must be non-decreasing (convexity).  Models tiered bandwidth
    pricing: the first ``breakpoints[0]`` Mbps cost ``slopes[0]`` per unit,
    the next tier ``slopes[1]``, and so on.
    """

    breakpoints: tuple[float, ...]
    slopes: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.slopes) != len(self.breakpoints) + 1:
            raise ModelError(
                "need exactly one more slope than breakpoints "
                f"(got {len(self.slopes)} slopes, {len(self.breakpoints)} breakpoints)"
            )
        if any(b <= 0 for b in self.breakpoints):
            raise ModelError("breakpoints must be positive")
        if list(self.breakpoints) != sorted(self.breakpoints):
            raise ModelError("breakpoints must be increasing")
        if list(self.slopes) != sorted(self.slopes):
            raise ModelError("slopes must be non-decreasing for convexity")
        if any(s < 0 for s in self.slopes):
            raise ModelError("slopes must be non-negative")

    def __call__(self, x: float) -> float:
        if x < 0:
            raise ModelError(f"cost argument must be >= 0, got {x}")
        total = 0.0
        previous = 0.0
        tier = bisect.bisect_left(self.breakpoints, x)
        for i in range(tier):
            total += (self.breakpoints[i] - previous) * self.slopes[i]
            previous = self.breakpoints[i]
        return total + (x - previous) * self.slopes[tier]


def uniform_costs(num_agents: int, cost: CostFunction | None = None) -> list[CostFunction]:
    """The same cost function replicated for every agent (identity default)."""
    return [cost if cost is not None else LinearCost()] * num_agents


def validate_cost_vector(costs: Sequence[CostFunction], num_agents: int) -> None:
    """Raise unless ``costs`` provides one cost function per agent."""
    if len(costs) != num_agents:
        raise ModelError(
            f"need one cost function per agent ({num_agents}), got {len(costs)}"
        )
