"""Core optimization library: the paper's primary contribution.

Layers, bottom-up:

* state — :mod:`assignment` (the decision variables ``lambda`` / ``gamma``
  as dense vectors), :mod:`transcoding` (the derived ``nu`` indicators);
* accounting — :mod:`traffic` (the paper's ``mu_klu`` formula and agent
  usage), :mod:`flows` (an explicit per-edge flow router used as
  cross-check), :mod:`delay` (end-to-end delay ``d_uv``);
* objective — :mod:`costs` (convex cost-function library), :mod:`objective`
  (``Phi = alpha1 F + alpha2 G + alpha3 H``);
* constraints — :mod:`feasibility` (constraints (1)-(8)), :mod:`capacity`
  (multi-session residual ledger);
* search — :mod:`neighborhood` (single-decision moves), :mod:`batched`
  (vectorized whole-move-set evaluation), :mod:`search` (shared
  local-search context), :mod:`markov` (Alg. 1),
  :mod:`agrank` (Alg. 2), :mod:`nearest` (the Nrst baseline),
  :mod:`greedy` / :mod:`annealing` / :mod:`exact` (reference solvers);
* theory — :mod:`theory` (Gibbs distributions, exact chain analysis,
  optimality-gap bounds of Eqs. (10), (12), (13)).
"""

from repro.core.agrank import AgRankConfig, agrank_assignment, rank_agents
from repro.core.annealing import AnnealingConfig, simulated_annealing
from repro.core.assignment import Assignment
from repro.core.batched import (
    BatchEvaluation,
    MoveBatch,
    build_move_batch,
    evaluate_move_batch,
)
from repro.core.capacity import CapacityLedger
from repro.core.delay import average_conferencing_delay, flow_delay, session_user_delays
from repro.core.exact import enumerate_assignments, solve_exact
from repro.core.feasibility import FeasibilityReport, check_assignment, is_feasible
from repro.core.flows import route_session_flows
from repro.core.greedy import greedy_descent
from repro.core.markov import HopResult, MarkovConfig, MarkovAssignmentSolver
from repro.core.nearest import nearest_assignment
from repro.core.neighborhood import Move, session_moves
from repro.core.objective import ObjectiveEvaluator, ObjectiveWeights, SessionCost
from repro.core.traffic import SessionUsage, compute_session_usage
from repro.core.transcoding import active_transcodes, transcode_counts

__all__ = [
    "AgRankConfig",
    "AnnealingConfig",
    "Assignment",
    "BatchEvaluation",
    "CapacityLedger",
    "FeasibilityReport",
    "HopResult",
    "MarkovAssignmentSolver",
    "MarkovConfig",
    "Move",
    "MoveBatch",
    "ObjectiveEvaluator",
    "ObjectiveWeights",
    "SessionCost",
    "SessionUsage",
    "active_transcodes",
    "agrank_assignment",
    "average_conferencing_delay",
    "build_move_batch",
    "check_assignment",
    "compute_session_usage",
    "enumerate_assignments",
    "evaluate_move_batch",
    "flow_delay",
    "greedy_descent",
    "is_feasible",
    "nearest_assignment",
    "rank_agents",
    "route_session_flows",
    "session_moves",
    "session_user_delays",
    "simulated_annealing",
    "solve_exact",
    "transcode_counts",
]
