"""Traffic accounting per the paper's ``mu_klu`` formula (Sec. III-B).

``mu_klu`` is the download traffic at agent ``l`` received from agent ``k``
carrying streams that originate at user ``u``.  Its three terms:

1. ``lambda_ku * nu'_lu * kappa(r^u_u)`` — ``u`` attaches to ``k`` and ``l``
   transcodes ``u``'s stream, so the raw upstream ships ``k -> l``;
2. ``(max_{v in P(u), theta_uv=0} lambda_lv) * lambda_ku * (1 - nu'_lu)
   * kappa(r^u_u)`` — some destination on ``l`` wants the *raw* stream and
   ``l`` is not already receiving it for transcoding;
3. ``sum_{r != r^u_u} (max_{v in P(u), r^d_vu=r} lambda_lv) * (1 - lambda_lu)
   * nu_kru * kappa(r)`` — ``k`` transcodes ``u``'s stream to ``r`` and some
   destination on ``l`` demands ``r``.

The ``(1 - lambda_lu)`` factor in term 3 is a quirk of the published
formula: transcoded traffic flowing back into the *source user's own agent*
is not charged.  We implement the formula verbatim;
:mod:`repro.core.flows` provides the explicit router that does charge that
corner case, and the test suite pins down exactly when the two accountings
diverge.

From ``mu`` this module derives everything the constraints and the
objective consume, bundled per session in :class:`SessionUsage`:

* ``x_ls = sum_{u in U(s)} sum_{k != l} mu_klu`` — inter-agent traffic into
  ``l`` (argument of the bandwidth cost ``g_l``);
* the download usage of constraint (5): last-mile upstreams of attached
  users plus incoming inter-agent traffic;
* the upload usage of constraint (6): last-mile downstreams towards
  attached users plus outgoing inter-agent traffic;
* ``y_ls`` — transcoding tasks per agent (constraint (7)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.transcoding import session_transcode_map, transcoding_agents_of
from repro.errors import ModelError
from repro.model.conference import Conference
from repro.types import UNASSIGNED


@dataclass(frozen=True)
class SessionUsage:
    """Per-agent resource usage attributable to one session.

    All arrays have length L (number of agents).  ``inter_in[l]`` is
    ``x_ls``; ``download`` / ``upload`` are the left-hand sides of
    constraints (5) / (6) restricted to this session; ``transcodes`` is
    ``y_ls``.
    """

    sid: int
    inter_in: np.ndarray
    inter_out: np.ndarray
    download: np.ndarray
    upload: np.ndarray
    transcodes: np.ndarray

    @property
    def total_inter_agent_mbps(self) -> float:
        """Total inter-agent traffic of the session (the paper's metric)."""
        return float(self.inter_in.sum())

    def __post_init__(self) -> None:
        for name in ("inter_in", "inter_out", "download", "upload", "transcodes"):
            getattr(self, name).setflags(write=False)


def stream_mu(
    conference: Conference,
    assignment: Assignment,
    sid: int,
    source: int,
) -> np.ndarray:
    """The L x L matrix ``mu[k, l]`` for one source user's stream.

    ``mu[k, l]`` is the traffic shipped from agent ``k`` into agent ``l``
    that carries ``source``'s stream (raw or transcoded), per the paper's
    three-term formula.
    """
    num_agents = conference.num_agents
    mu = np.zeros((num_agents, num_agents), dtype=float)
    source_agent = assignment.agent_of(source)
    if source_agent == UNASSIGNED:
        raise ModelError(f"user {source} is unassigned")
    kappa_up = conference.user(source).upstream.bitrate_mbps

    # Destination structure of this stream within the session.
    raw_dest_agents: set[int] = set()
    transcoded_dest_agents: dict[object, set[int]] = {}
    upstream = conference.user(source).upstream
    for v in conference.participants(source):
        v_agent = assignment.agent_of(v)
        if v_agent == UNASSIGNED:
            raise ModelError(f"user {v} is unassigned")
        demanded = conference.user(v).downstream_from(source)
        if demanded == upstream:
            raw_dest_agents.add(v_agent)
        else:
            transcoded_dest_agents.setdefault(demanded, set()).add(v_agent)

    transcoders = transcoding_agents_of(conference, assignment, sid, source)
    per_rep = session_transcode_map(conference, assignment, sid).get(source, {})

    for l in range(num_agents):
        if l == source_agent:
            continue  # every term carries lambda_ku or (1 - lambda_lu)
        # Term 1: raw stream shipped to a transcoding agent.
        if l in transcoders:
            mu[source_agent, l] += kappa_up
        # Term 2: raw stream shipped to an agent hosting a raw destination.
        elif l in raw_dest_agents:
            mu[source_agent, l] += kappa_up
    # Term 3: transcoded representations shipped transcoder -> destination.
    for rep, task_agents in per_rep.items():
        dest_agents = transcoded_dest_agents.get(rep, set())
        for l in dest_agents:
            if l == source_agent:
                continue  # the published (1 - lambda_lu) factor
            for k in task_agents:
                if k != l:
                    mu[k, l] += rep.bitrate_mbps
    return mu


def compute_session_usage(
    conference: Conference, assignment: Assignment, sid: int
) -> SessionUsage:
    """All per-agent usage quantities for session ``sid``."""
    num_agents = conference.num_agents
    session = conference.session(sid)
    inter = np.zeros((num_agents, num_agents), dtype=float)
    lastmile_down = np.zeros(num_agents, dtype=float)  # user upstream into agent
    lastmile_up = np.zeros(num_agents, dtype=float)  # streams out to users

    for uid in session.user_ids:
        agent = assignment.agent_of(uid)
        if agent == UNASSIGNED:
            raise ModelError(f"user {uid} is unassigned")
        user = conference.user(uid)
        lastmile_down[agent] += user.upstream.bitrate_mbps
        lastmile_up[agent] += sum(
            user.downstream_from(v).bitrate_mbps for v in session.others(uid)
        )
        inter += stream_mu(conference, assignment, sid, uid)

    incoming = inter.sum(axis=0)  # x_ls: sum over source agents k of mu[k, l]
    outgoing = inter.sum(axis=1)

    transcodes = np.zeros(num_agents, dtype=np.int64)
    for source, reps in session_transcode_map(conference, assignment, sid).items():
        del source
        for agents in reps.values():
            for agent in agents:
                transcodes[agent] += 1

    return SessionUsage(
        sid=sid,
        inter_in=incoming,
        inter_out=outgoing,
        download=lastmile_down + incoming,
        upload=lastmile_up + outgoing,
        transcodes=transcodes,
    )


def total_inter_agent_traffic(
    conference: Conference,
    assignment: Assignment,
    sids: list[int] | None = None,
) -> float:
    """Total inter-agent traffic in Mbps over the given (default all)
    sessions — the operational-cost proxy reported throughout Sec. V."""
    if sids is None:
        sids = list(range(conference.num_sessions))
    return sum(
        compute_session_usage(conference, assignment, sid).total_inter_agent_mbps
        for sid in sids
    )
