"""The UAP objective ``Phi = sum_s alpha1 F(d_s) + alpha2 G(x_s) + alpha3 H(y_s)``.

Design notes (see DESIGN.md):

* The paper runs Alg. 1 with ``beta = 400`` "proportional to the logarithm
  of the problem state space".  With delays in hundreds of ms and traffic
  in tens of Mbps, raw units would saturate ``exp(beta * Phi)``; we
  therefore expose per-term *scales* so that a normalized objective keeps
  the Gibbs weights meaningful, and compute every softmax in the log
  domain regardless.  :meth:`ObjectiveWeights.normalized_for` derives
  scales from the conference (delay by ``Dmax``, traffic by the mean
  per-session source bitrate, transcodes by the mean per-session task
  count); :meth:`ObjectiveWeights.raw` keeps the paper's raw units.
* Alg. 1 only ever needs the *local* objective of one session
  (``Phi_{s,f}``) — that is what makes the parallel implementation
  possible — so the evaluator is session-centric and the global value is
  the sum over active sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.core.assignment import Assignment
from repro.core.costs import CostFunction, LinearCost, uniform_costs, validate_cost_vector
from repro.core.fastpath import profile_for
from repro.core.traffic import SessionUsage
from repro.errors import ModelError
from repro.model.conference import Conference


@dataclass(frozen=True)
class ObjectiveWeights:
    """The design parameters ``alpha1..alpha3`` and the per-term scales.

    ``alpha1`` weighs conferencing delay, ``alpha2`` inter-agent bandwidth
    cost and ``alpha3`` transcoding cost.  Each term is divided by its
    scale before weighing, so scales of 1 reproduce the paper's raw-unit
    objective.
    """

    alpha1: float = 1.0
    alpha2: float = 1.0
    alpha3: float = 1.0
    delay_scale: float = 1.0
    traffic_scale: float = 1.0
    transcode_scale: float = 1.0

    def __post_init__(self) -> None:
        if min(self.alpha1, self.alpha2, self.alpha3) < 0:
            raise ModelError("alpha weights must be non-negative")
        if self.alpha1 == self.alpha2 == self.alpha3 == 0:
            raise ModelError("at least one alpha must be positive")
        if min(self.delay_scale, self.traffic_scale, self.transcode_scale) <= 0:
            raise ModelError("scales must be positive")

    @classmethod
    def raw(
        cls, alpha1: float = 1.0, alpha2: float = 1.0, alpha3: float = 1.0
    ) -> "ObjectiveWeights":
        """Raw paper units: ms + Mbps + task count, unscaled."""
        return cls(alpha1=alpha1, alpha2=alpha2, alpha3=alpha3)

    @classmethod
    def normalized_for(
        cls,
        conference: Conference,
        alpha1: float = 1.0,
        alpha2: float = 1.0,
        alpha3: float = 1.0,
        delay_scale_ms: float | None = None,
    ) -> "ObjectiveWeights":
        """Scales chosen so each term is O(1) per session on ``conference``.

        Delay is normalized by the mean inter-agent delay (one "average
        hop" — the granularity at which assignment decisions move the
        delay cost; ``Dmax`` would flatten the term so much that traffic
        dominates and the delay/cost "win-win" of Table II disappears);
        traffic by the mean total source bitrate of a session (a natural
        upper-bound scale for inter-agent traffic); transcodes by the mean
        per-session task count.
        """
        num_sessions = max(1, conference.num_sessions)
        source_mbps = float(conference.upstream_kappa().sum()) / num_sessions
        tasks = conference.theta_sum / num_sessions
        if delay_scale_ms is None:
            d = conference.topology.inter_agent_ms
            off_diagonal = d[~np.eye(d.shape[0], dtype=bool)]
            delay_scale_ms = (
                float(off_diagonal.mean())
                if off_diagonal.size and off_diagonal.mean() > 0
                else conference.dmax_ms / 4.0
            )
        return cls(
            alpha1=alpha1,
            alpha2=alpha2,
            alpha3=alpha3,
            delay_scale=delay_scale_ms,
            traffic_scale=max(source_mbps, 1.0),
            transcode_scale=max(tasks, 1.0),
        )

    def with_alphas(
        self, alpha1: float, alpha2: float, alpha3: float
    ) -> "ObjectiveWeights":
        """Same scales, different design-parameter mix (Table II sweeps)."""
        return replace(self, alpha1=alpha1, alpha2=alpha2, alpha3=alpha3)


@dataclass(frozen=True)
class SessionCost:
    """The evaluated objective of one session, with its raw components."""

    sid: int
    phi: float
    delay_cost_ms: float
    traffic_cost: float
    transcode_cost: float
    usage: SessionUsage

    @property
    def inter_agent_mbps(self) -> float:
        return self.usage.total_inter_agent_mbps


class ObjectiveEvaluator:
    """Session-centric evaluator of the UAP objective.

    Parameters
    ----------
    conference:
        The model instance.
    weights:
        Alphas and scales.
    bandwidth_costs / transcode_costs:
        Per-agent convex costs ``g_l`` / ``h_l``; identity when omitted, in
        which case ``G`` is inter-agent Mbps and ``H`` the task count —
        the units of every figure in the paper.
    """

    def __init__(
        self,
        conference: Conference,
        weights: ObjectiveWeights,
        bandwidth_costs: Sequence[CostFunction] | None = None,
        transcode_costs: Sequence[CostFunction] | None = None,
    ):
        self._conference = conference
        self._weights = weights
        self._g = (
            list(bandwidth_costs)
            if bandwidth_costs is not None
            else uniform_costs(conference.num_agents)
        )
        self._h = (
            list(transcode_costs)
            if transcode_costs is not None
            else uniform_costs(conference.num_agents)
        )
        validate_cost_vector(self._g, conference.num_agents)
        validate_cost_vector(self._h, conference.num_agents)
        self._profile = profile_for(conference)
        self._identity_g = all(
            isinstance(g, LinearCost) and g.rate == 1.0 for g in self._g
        )
        self._identity_h = all(
            isinstance(h, LinearCost) and h.rate == 1.0 for h in self._h
        )

    @property
    def conference(self) -> Conference:
        return self._conference

    @property
    def profile(self):
        """The cached :class:`~repro.core.fastpath.ConferenceProfile`."""
        return self._profile

    @property
    def weights(self) -> ObjectiveWeights:
        return self._weights

    def with_weights(self, weights: ObjectiveWeights) -> "ObjectiveEvaluator":
        """A new evaluator sharing costs but with different weights."""
        return ObjectiveEvaluator(self._conference, weights, self._g, self._h)

    def with_conference(self, conference: Conference) -> "ObjectiveEvaluator":
        """A new evaluator over a same-shape substrate view.

        Keeps the weights *and* the per-agent cost vectors — a fault-
        injected view must not renormalize the objective mid-run, or the
        phi series would jump for reasons unrelated to the fault.  The
        view must have the same number of agents (the cost vectors are
        revalidated against it).
        """
        return ObjectiveEvaluator(conference, self._weights, self._g, self._h)

    # ------------------------------------------------------------------ #
    # Evaluation                                                         #
    # ------------------------------------------------------------------ #

    def traffic_cost(self, inter_in: np.ndarray) -> float:
        """``G(x_s) = sum_l g_l(x_ls)``."""
        if self._identity_g:
            return float(inter_in.sum())
        return sum(
            self._g[l](float(inter_in[l])) for l in range(self._conference.num_agents)
        )

    def transcode_cost(self, transcodes: np.ndarray) -> float:
        """``H(y_s) = sum_l h_l(y_ls)``."""
        if self._identity_h:
            return float(transcodes.sum())
        return sum(
            self._h[l](float(transcodes[l]))
            for l in range(self._conference.num_agents)
        )

    def traffic_cost_batch(self, inter_in: np.ndarray) -> np.ndarray:
        """``G`` over a ``(C, L)`` candidate batch, one value per row.

        The identity case reduces along the agent axis with the same
        pairwise routine a per-row ``inter_in.sum()`` uses, so each row
        matches the reference :meth:`traffic_cost` bit-for-bit; general
        cost functions fall back to the reference's scalar loop per row.
        """
        if self._identity_g:
            return inter_in.sum(axis=1)
        num_agents = self._conference.num_agents
        return np.array(
            [
                sum(self._g[l](float(row[l])) for l in range(num_agents))
                for row in inter_in
            ]
        )

    def transcode_cost_batch(self, transcodes: np.ndarray) -> np.ndarray:
        """``H`` over a ``(C, L)`` candidate batch (see
        :meth:`traffic_cost_batch`)."""
        if self._identity_h:
            return transcodes.sum(axis=1).astype(float)
        num_agents = self._conference.num_agents
        return np.array(
            [
                sum(self._h[l](float(row[l])) for l in range(num_agents))
                for row in transcodes
            ]
        )

    def phi_batch(
        self, delay_cost_ms: np.ndarray, traffic: np.ndarray, transcode: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``Phi_{s,f}`` assembly, term order identical to
        :meth:`assemble_session_cost`."""
        w = self._weights
        return (
            w.alpha1 * delay_cost_ms / w.delay_scale
            + w.alpha2 * traffic / w.traffic_scale
            + w.alpha3 * transcode / w.transcode_scale
        )

    def assemble_session_cost(
        self, sid: int, usage: SessionUsage, delay_cost_ms: float
    ) -> SessionCost:
        """Build the :class:`SessionCost` from precomputed parts (the hot
        path of candidate evaluation — no recomputation)."""
        traffic = self.traffic_cost(usage.inter_in)
        transcode = self.transcode_cost(usage.transcodes)
        w = self._weights
        phi = (
            w.alpha1 * delay_cost_ms / w.delay_scale
            + w.alpha2 * traffic / w.traffic_scale
            + w.alpha3 * transcode / w.transcode_scale
        )
        return SessionCost(
            sid=sid,
            phi=phi,
            delay_cost_ms=delay_cost_ms,
            traffic_cost=traffic,
            transcode_cost=transcode,
            usage=usage,
        )

    def session_cost(self, assignment: Assignment, sid: int) -> SessionCost:
        """``Phi_{s,f}`` with its components (the HOP procedure's input)."""
        usage = self._profile.session_usage(
            assignment.user_agent, assignment.task_agent, sid
        )
        delay_cost, _max_flow = self._profile.session_delays(
            assignment.user_agent, assignment.task_agent, sid
        )
        return self.assemble_session_cost(sid, usage, delay_cost)

    def session_phi(self, assignment: Assignment, sid: int) -> float:
        """Just the scalar ``Phi_{s,f}``."""
        return self.session_cost(assignment, sid).phi

    def total(
        self, assignment: Assignment, sids: Iterable[int] | None = None
    ) -> "TotalCost":
        """The global objective over the active sessions (default: all)."""
        if sids is None:
            sids = range(self._conference.num_sessions)
        sessions = [self.session_cost(assignment, sid) for sid in sids]
        if not sessions:
            raise ModelError("cannot evaluate an objective over zero sessions")
        delays: list[float] = []
        for cost in sessions:
            delays.extend(
                self._profile.session_user_delays(
                    assignment.user_agent, assignment.task_agent, cost.sid
                ).values()
            )
        return TotalCost(
            phi=sum(c.phi for c in sessions),
            inter_agent_mbps=sum(c.inter_agent_mbps for c in sessions),
            average_delay_ms=float(sum(delays) / len(delays)),
            transcode_tasks=float(sum(c.usage.transcodes.sum() for c in sessions)),
            sessions=tuple(sessions),
        )


@dataclass(frozen=True)
class TotalCost:
    """Aggregated objective and the paper's two reported metrics."""

    phi: float
    inter_agent_mbps: float
    average_delay_ms: float
    transcode_tasks: float
    sessions: tuple[SessionCost, ...]
