"""Single-decision neighbourhood (paper Sec. IV-A.2).

To keep migration overhead low, the Markov chain only links assignments
that differ in *exactly one* decision variable: one user's agent or one
transcoding task's agent.  This module enumerates those moves for a
session; feasibility filtering happens in the search layer, where the
capacity ledger lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

from repro.core.assignment import Assignment
from repro.errors import ModelError
from repro.model.conference import Conference

#: Integer codes for :attr:`Move.kind`, shared with the flat-array move
#: representation of :mod:`repro.core.batched`.
KIND_USER = 0
KIND_TASK = 1


@dataclass(frozen=True)
class Move:
    """One elementary migration.

    ``kind`` selects the decision dimension: ``"user"`` re-attaches user
    ``index`` (a uid), ``"task"`` re-places transcoding pair ``index`` (a
    position in ``Conference.transcode_pairs``).
    """

    kind: Literal["user", "task"]
    index: int
    old_agent: int
    new_agent: int

    def __post_init__(self) -> None:
        if self.kind not in ("user", "task"):
            raise ModelError(f"unknown move kind {self.kind!r}")
        if self.old_agent == self.new_agent:
            raise ModelError("a move must change the agent")

    def apply(self, assignment: Assignment) -> Assignment:
        """The neighbouring assignment this move leads to."""
        if self.kind == "user":
            return assignment.with_user(self.index, self.new_agent)
        return assignment.with_task(self.index, self.new_agent)

    def describe(self, conference: Conference) -> str:
        """Human-readable rendering, e.g. for migration logs."""
        new = conference.agent(self.new_agent).name
        old = conference.agent(self.old_agent).name
        if self.kind == "user":
            return f"user {conference.user(self.index).name}: {old} -> {new}"
        source, destination = conference.transcode_pairs[self.index]
        return (
            f"transcode {conference.user(source).name}->"
            f"{conference.user(destination).name}: {old} -> {new}"
        )


def session_moves(
    conference: Conference, assignment: Assignment, sid: int
) -> Iterator[Move]:
    """All single-decision moves available to session ``sid``.

    Yields ``|U(s)| * (L-1) + |pairs(s)| * (L-1)`` moves; the time
    complexity of materializing and evaluating them matches the paper's
    ``O(|U(s)|^2 L)`` per-iteration bound (each evaluation is
    ``O(|U(s)|)`` for delay terms).
    """
    num_agents = conference.num_agents
    session = conference.session(sid)
    for uid in session.user_ids:
        current = assignment.agent_of(uid)
        for agent in range(num_agents):
            if agent != current:
                yield Move("user", uid, current, agent)
    for i in conference.session_pair_indices(sid):
        current = assignment.task_agent_of(i)
        for agent in range(num_agents):
            if agent != current:
                yield Move("task", i, current, agent)


def count_session_moves(conference: Conference, sid: int) -> int:
    """Size of the move set (before feasibility filtering)."""
    session = conference.session(sid)
    pairs = conference.session_pair_indices(sid)
    return (len(session.user_ids) + len(pairs)) * (conference.num_agents - 1)
