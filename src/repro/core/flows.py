"""Explicit flow routing: the ground-truth traffic accounting.

While :mod:`repro.core.traffic` implements the paper's closed-form
``mu_klu``, this module routes every stream hop by hop and charges each
inter-agent edge once per distinct ``(source-user, representation)`` copy:

* the raw stream ships from the source's agent to every *distinct* agent
  that either transcodes it or hosts a destination demanding it raw;
* each transcoded representation ships from its transcoding agent to every
  distinct agent hosting a destination demanding it.

The two accountings agree everywhere except the published formula's corner
case (transcoded traffic entering the source user's own agent — see
DESIGN.md), which the router does charge because the bytes really cross the
inter-agent link.  The router also produces per-edge matrices, which the
runtime uses for migration bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import Assignment
from repro.core.transcoding import session_transcode_map
from repro.errors import ModelError
from repro.model.conference import Conference
from repro.model.representation import Representation
from repro.types import UNASSIGNED


@dataclass
class FlowCopy:
    """One inter-agent shipment of one stream copy."""

    source_user: int
    representation: Representation
    from_agent: int
    to_agent: int

    @property
    def mbps(self) -> float:
        return self.representation.bitrate_mbps


@dataclass
class SessionFlowPlan:
    """Routed flows of one session.

    Attributes
    ----------
    edge_mbps:
        L x L matrix; entry ``[k, l]`` is the traffic shipped from agent
        ``k`` to agent ``l`` for this session.
    copies:
        The individual shipments (for migration accounting and debugging).
    """

    sid: int
    edge_mbps: np.ndarray
    copies: list[FlowCopy] = field(default_factory=list)

    @property
    def total_inter_agent_mbps(self) -> float:
        return float(self.edge_mbps.sum())

    def incoming(self) -> np.ndarray:
        """Per-agent inter-agent ingress (router analogue of ``x_ls``)."""
        return self.edge_mbps.sum(axis=0)

    def outgoing(self) -> np.ndarray:
        """Per-agent inter-agent egress."""
        return self.edge_mbps.sum(axis=1)


def route_session_flows(
    conference: Conference, assignment: Assignment, sid: int
) -> SessionFlowPlan:
    """Route all streams of session ``sid`` and account every edge copy."""
    session = conference.session(sid)
    num_agents = conference.num_agents
    edges = np.zeros((num_agents, num_agents), dtype=float)
    copies: list[FlowCopy] = []
    transcode_map = session_transcode_map(conference, assignment, sid)

    def ship(source: int, rep: Representation, from_agent: int, to_agent: int) -> None:
        if from_agent == to_agent:
            return
        edges[from_agent, to_agent] += rep.bitrate_mbps
        copies.append(FlowCopy(source, rep, from_agent, to_agent))

    for uid in session.user_ids:
        source_agent = assignment.agent_of(uid)
        if source_agent == UNASSIGNED:
            raise ModelError(f"user {uid} is unassigned")
        upstream = conference.user(uid).upstream

        # Where must the raw stream go?
        raw_targets: set[int] = set()
        for v in session.others(uid):
            v_agent = assignment.agent_of(v)
            if v_agent == UNASSIGNED:
                raise ModelError(f"user {v} is unassigned")
            if conference.user(v).downstream_from(uid) == upstream:
                raw_targets.add(v_agent)
        per_rep = transcode_map.get(uid, {})
        for agents in per_rep.values():
            raw_targets.update(agents)
        for target in sorted(raw_targets):
            ship(uid, upstream, source_agent, target)

        # Transcoded copies: task agent -> destination agents demanding rep.
        for rep, task_agents in per_rep.items():
            dest_agents = {
                assignment.agent_of(v)
                for v in session.others(uid)
                if conference.user(v).downstream_from(uid) == rep
            }
            # Each destination is served by one task agent; when several
            # task agents exist for the same (user, rep), each serves the
            # destinations whose pair was assigned to it.
            if len(task_agents) == 1:
                (task_agent,) = task_agents
                for dest in sorted(dest_agents):
                    ship(uid, rep, task_agent, dest)
            else:
                shipped: set[tuple[int, int]] = set()
                for i in conference.session_pair_indices(sid):
                    src, dst = conference.transcode_pairs[i]
                    if src != uid:
                        continue
                    if conference.demanded_representation(src, dst) != rep:
                        continue
                    task_agent = assignment.task_agent_of(i)
                    dest = assignment.agent_of(dst)
                    if (task_agent, dest) not in shipped:
                        shipped.add((task_agent, dest))
                        ship(uid, rep, task_agent, dest)

    return SessionFlowPlan(sid=sid, edge_mbps=edges, copies=copies)


def total_routed_traffic(
    conference: Conference,
    assignment: Assignment,
    sids: list[int] | None = None,
) -> float:
    """Total routed inter-agent Mbps over the given (default all) sessions."""
    if sids is None:
        sids = list(range(conference.num_sessions))
    return sum(
        route_session_flows(conference, assignment, sid).total_inter_agent_mbps
        for sid in sids
    )
