"""Theory toolkit: exact analysis of the approximation framework.

Everything Sec. IV-A states about Alg. 1 is checkable on enumerable
instances, and this module checks it:

* the log-sum-exp approximation UAP-beta and its optimal value
  (Eq. (9)/(10)): ``min Phi - log|F| / beta <= Phi_hat <= min Phi``;
* the CTMC realized by Alg. 1 — its generator matrix under either hop
  rule, its exact stationary distribution, and the distance to the Gibbs
  target ``p*_f ∝ exp(-beta Phi_f)``;
* the optimality-gap bound of Eq. (12),
  ``0 <= Phi_avg - Phi_min <= (U + theta_sum) log L / beta``;
* Theorem 1's perturbed chain: stationary distribution Eq. (11) and the
  noisy bound Eq. (13) with the ``Delta_max`` term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

import numpy as np
from scipy.special import logsumexp

from repro.core.assignment import Assignment
from repro.core.exact import enumerate_assignments
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.objective import ObjectiveEvaluator
from repro.errors import SolverError
from repro.model.conference import Conference
from repro.netsim.noise import QuantizedPerturbation

HopRule = Literal["paper", "metropolis"]


# --------------------------------------------------------------------- #
# State space                                                           #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StateSpace:
    """The enumerated feasible set F with objective values."""

    assignments: tuple[Assignment, ...]
    phis: np.ndarray
    sids: tuple[int, ...]

    def __post_init__(self) -> None:
        self.phis.setflags(write=False)

    def __len__(self) -> int:
        return len(self.assignments)

    def index_of(self, assignment: Assignment) -> int:
        for i, state in enumerate(self.assignments):
            if state == assignment:
                return i
        raise SolverError("assignment is not a feasible state of this space")

    @property
    def phi_min(self) -> float:
        return float(self.phis.min())


def build_state_space(
    evaluator: ObjectiveEvaluator,
    sids: Iterable[int] | None = None,
    max_states: int = 1_000_000,
) -> StateSpace:
    """Enumerate F and evaluate Phi_f for every feasible state."""
    conference = evaluator.conference
    sid_list = list(sids) if sids is not None else list(range(conference.num_sessions))
    assignments = tuple(
        enumerate_assignments(conference, sid_list, max_states=max_states)
    )
    if not assignments:
        raise SolverError("the instance has no feasible states")
    phis = np.array(
        [evaluator.total(a, sid_list).phi for a in assignments], dtype=float
    )
    return StateSpace(assignments=assignments, phis=phis, sids=tuple(sid_list))


# --------------------------------------------------------------------- #
# Gibbs target and the log-sum-exp approximation                        #
# --------------------------------------------------------------------- #


def gibbs_distribution(phis: np.ndarray, beta: float) -> np.ndarray:
    """Eq. (9): ``p*_f ∝ exp(-beta Phi_f)``, computed in the log domain."""
    log_w = -beta * np.asarray(phis, dtype=float)
    log_w = log_w - log_w.max()
    weights = np.exp(log_w)
    return weights / weights.sum()


def uap_beta_optimum(phis: np.ndarray, beta: float) -> float:
    """The optimal value ``Phi_hat`` of UAP-beta:
    ``-(1/beta) log sum_f exp(-beta Phi_f)``."""
    return float(-logsumexp(-beta * np.asarray(phis, dtype=float)) / beta)


def eq10_bounds(phis: np.ndarray, beta: float) -> tuple[float, float, float]:
    """``(lower, phi_hat, upper)`` of Eq. (10):
    ``min Phi - log|F|/beta <= Phi_hat <= min Phi``."""
    phis = np.asarray(phis, dtype=float)
    phi_min = float(phis.min())
    return (
        phi_min - np.log(len(phis)) / beta,
        uap_beta_optimum(phis, beta),
        phi_min,
    )


def expected_phi(distribution: np.ndarray, phis: np.ndarray) -> float:
    """``Phi_avg = sum_f p_f Phi_f``."""
    return float(np.dot(np.asarray(distribution), np.asarray(phis)))


def optimality_gap_bound(
    conference: Conference, beta: float, sids: Iterable[int] | None = None
) -> float:
    """Eq. (12)'s right-hand side, ``(U + theta_sum) log L / beta``,
    restricted to the active sessions when given."""
    if sids is None:
        users = conference.num_users
        tasks = conference.theta_sum
    else:
        users = 0
        tasks = 0
        for sid in sids:
            users += len(conference.session(sid).user_ids)
            tasks += len(conference.session_pair_indices(sid))
    return (users + tasks) * float(np.log(conference.num_agents)) / beta


# --------------------------------------------------------------------- #
# The exact CTMC of Alg. 1                                              #
# --------------------------------------------------------------------- #


def _owning_session(
    conference: Conference, a: Assignment, b: Assignment
) -> int | None:
    """The session owning the single differing decision, or None if the
    states differ in zero or more than one decision."""
    user_diff = np.nonzero(a.user_agent != b.user_agent)[0]
    task_diff = np.nonzero(a.task_agent != b.task_agent)[0]
    if len(user_diff) + len(task_diff) != 1:
        return None
    if len(user_diff) == 1:
        return conference.session_of(int(user_diff[0]))
    pair = conference.transcode_pairs[int(task_diff[0])]
    return conference.session_of(pair[0])


def generator_matrix(
    conference: Conference,
    space: StateSpace,
    beta: float,
    rule: HopRule = "paper",
    tau: float = 1.0,
) -> np.ndarray:
    """The CTMC generator Q realized by Alg. 1 on the enumerated space.

    Sessions wake independently at rate ``tau``.  Under the ``"paper"``
    rule a woken session jumps to candidate ``f'`` with probability
    ``softmax(0.5 beta (Phi_f - Phi_f'))`` over its candidate set; under
    ``"metropolis"`` it proposes uniformly and applies the Hastings-
    corrected acceptance (rejection keeps the state, contributing no
    off-diagonal rate).
    """
    size = len(space)
    neighbors: dict[int, dict[int, list[int]]] = {
        i: {} for i in range(size)
    }  # state -> session -> candidate state indices
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            sid = _owning_session(conference, space.assignments[i], space.assignments[j])
            if sid is not None:
                neighbors[i].setdefault(sid, []).append(j)

    q = np.zeros((size, size), dtype=float)
    for i in range(size):
        for sid, candidates in neighbors[i].items():
            if not candidates:
                continue
            phi_i = space.phis[i]
            phi_c = space.phis[candidates]
            if rule == "paper":
                log_w = 0.5 * beta * (phi_i - phi_c)
                log_w = log_w - log_w.max()
                weights = np.exp(log_w)
                weights = weights / weights.sum()
                for weight, j in zip(weights, candidates):
                    q[i, j] += tau * float(weight)
            else:
                forward = len(candidates)
                for j in candidates:
                    backward = len(neighbors[j].get(sid, []))
                    if backward == 0:
                        continue
                    log_accept = beta * (phi_i - space.phis[j]) + np.log(
                        forward / backward
                    )
                    accept = float(np.exp(min(0.0, log_accept)))
                    q[i, j] += tau * accept / forward
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


def stationary_distribution(q: np.ndarray) -> np.ndarray:
    """Solve ``pi Q = 0``, ``sum pi = 1`` by least squares."""
    size = q.shape[0]
    a = np.vstack([q.T, np.ones((1, size))])
    b = np.zeros(size + 1)
    b[-1] = 1.0
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0:
        raise SolverError("failed to compute a stationary distribution")
    return solution / total


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions."""
    return float(0.5 * np.abs(np.asarray(p) - np.asarray(q)).sum())


def simulate_occupancy(
    evaluator: ObjectiveEvaluator,
    space: StateSpace,
    initial: Assignment,
    beta: float,
    hops: int,
    rule: HopRule = "paper",
    rng: np.random.Generator | None = None,
    burn_in: int = 0,
) -> np.ndarray:
    """Empirical time-weighted occupancy of Alg. 1 over the state space.

    Sessions wake as a Poisson process with constant total rate, so the
    occupancy estimator weights each inter-wake interval with an
    exponential holding time (rejected Metropolis proposals simply extend
    the current state's holding).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    solver = MarkovAssignmentSolver(
        evaluator,
        initial,
        config=MarkovConfig(beta=beta, hop_rule=rule),
        active_sids=list(space.sids),
        rng=rng,
    )
    occupancy = np.zeros(len(space), dtype=float)
    index_by_key = {a.key(): i for i, a in enumerate(space.assignments)}
    active = solver.context.active_sessions
    for step in range(hops):
        holding = float(rng.exponential(1.0))
        if step >= burn_in:
            occupancy[index_by_key[solver.assignment.key()]] += holding
        sid = active[int(rng.integers(len(active)))]
        solver.session_hop(sid)
    total = occupancy.sum()
    if total <= 0:
        raise SolverError("occupancy simulation recorded no time (hops too small?)")
    return occupancy / total


# --------------------------------------------------------------------- #
# Theorem 1: perturbed chain                                            #
# --------------------------------------------------------------------- #


def perturbed_stationary(
    phis: np.ndarray,
    beta: float,
    perturbations: Sequence[QuantizedPerturbation],
) -> np.ndarray:
    """Eq. (11): ``p_bar_f ∝ delta_f exp(-beta Phi_f)`` with
    ``delta_f = sum_j eta_j exp(beta j Delta_f / n_f)``."""
    phis = np.asarray(phis, dtype=float)
    if len(perturbations) != len(phis):
        raise SolverError("one perturbation model per state is required")
    log_delta = np.array(
        [
            logsumexp(np.log(np.asarray(p.eta)) + beta * p.offsets)
            for p in perturbations
        ]
    )
    log_w = log_delta - beta * phis
    log_w = log_w - log_w.max()
    weights = np.exp(log_w)
    return weights / weights.sum()


def eq13_bound(
    conference: Conference,
    beta: float,
    delta_max: float,
    sids: Iterable[int] | None = None,
) -> float:
    """Eq. (13)'s right-hand side:
    ``(U + theta_sum) log L / beta + Delta_max``."""
    return optimality_gap_bound(conference, beta, sids) + delta_max
