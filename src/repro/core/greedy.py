"""Greedy best-improvement descent: the ``beta -> infinity`` limit of Alg. 1.

Repeatedly applies, across all active sessions, the single-decision move
with the largest objective improvement until a local optimum is reached.
Serves as a deterministic reference point in the ablation benches: Markov
approximation should match or beat it in expectation (it can escape local
optima; greedy cannot).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.search import SearchContext
from repro.netsim.noise import NoiseModel

#: Minimum objective improvement for a move to count (guards float noise).
IMPROVEMENT_EPSILON = 1e-12


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of a greedy descent."""

    assignment: Assignment
    phi: float
    iterations: int
    converged: bool


def greedy_descent(
    evaluator: ObjectiveEvaluator,
    initial_assignment: Assignment,
    active_sids: list[int] | None = None,
    max_iterations: int = 10_000,
    noise: NoiseModel | None = None,
) -> GreedyResult:
    """Best-improvement local search to a local optimum of UAP."""
    context = SearchContext(
        evaluator, initial_assignment, active_sids=active_sids, noise=noise
    )
    iterations = 0
    while iterations < max_iterations:
        best = None
        best_sid = -1
        best_gain = IMPROVEMENT_EPSILON
        for sid in context.active_sessions:
            phi_current = context.session_cost(sid).phi
            for candidate in context.feasible_candidates(sid):
                gain = phi_current - candidate.phi
                if gain > best_gain:
                    best, best_sid, best_gain = candidate, sid, gain
        if best is None:
            return GreedyResult(
                assignment=context.assignment,
                phi=context.total_phi(),
                iterations=iterations,
                converged=True,
            )
        context.commit(best_sid, best)
        iterations += 1
    return GreedyResult(
        assignment=context.assignment,
        phi=context.total_phi(),
        iterations=iterations,
        converged=False,
    )
