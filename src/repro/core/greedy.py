"""Greedy best-improvement descent: the ``beta -> infinity`` limit of Alg. 1.

Repeatedly applies, across all active sessions, the single-decision move
with the largest objective improvement until a local optimum is reached.
Serves as a deterministic reference point in the ablation benches: Markov
approximation should match or beat it in expectation (it can escape local
optima; greedy cannot).

On the vectorized kernels the whole-conference sweep is a per-session
``phi_current - batch.phi`` gain vector and one ``argmax`` per session;
only the iteration's single winning candidate is materialized.  The
selection is identical to the reference scan: ``np.argmax`` returns the
*first* maximal gain (the reference's strict ``>`` keeps the first too),
and cross-session comparison stays strict, so earlier sessions win ties
exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.search import CandidateBatch, SearchContext
from repro.netsim.noise import NoiseModel

#: Minimum objective improvement for a move to count (guards float noise).
IMPROVEMENT_EPSILON = 1e-12


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of a greedy descent."""

    assignment: Assignment
    phi: float
    iterations: int
    converged: bool


def _best_improvement(
    context: SearchContext, best_gain: float
) -> tuple[object, int, float]:
    """The iteration's strictly-best move across every active session."""
    best = None
    best_sid = -1
    if context.kernel == "reference":
        for sid in context.active_sessions:
            phi_current = context.session_cost(sid).phi
            for candidate in context.feasible_candidates(sid):
                gain = phi_current - candidate.phi
                if gain > best_gain:
                    best, best_sid, best_gain = candidate, sid, gain
        return best, best_sid, best_gain
    best_batch: CandidateBatch | None = None
    best_position = -1
    for sid in context.active_sessions:
        phi_current = context.session_cost(sid).phi
        batch = context.candidate_batch(sid)
        if batch.num_feasible == 0:
            continue
        gains = phi_current - batch.phi
        position = int(np.argmax(gains))
        gain = float(gains[position])
        if gain > best_gain:
            best_batch, best_position = batch, position
            best_sid, best_gain = sid, gain
    if best_batch is not None:
        best = best_batch.materialize(best_position)
    return best, best_sid, best_gain


def greedy_descent(
    evaluator: ObjectiveEvaluator,
    initial_assignment: Assignment,
    active_sids: list[int] | None = None,
    max_iterations: int = 10_000,
    noise: NoiseModel | None = None,
    kernel: str | None = None,
) -> GreedyResult:
    """Best-improvement local search to a local optimum of UAP."""
    context = SearchContext(
        evaluator,
        initial_assignment,
        active_sids=active_sids,
        noise=noise,
        kernel=kernel,
    )
    iterations = 0
    while iterations < max_iterations:
        best, best_sid, _gain = _best_improvement(
            context, IMPROVEMENT_EPSILON
        )
        if best is None:
            return GreedyResult(
                assignment=context.assignment,
                phi=context.total_phi(),
                iterations=iterations,
                converged=True,
            )
        context.commit(best_sid, best)
        iterations += 1
    return GreedyResult(
        assignment=context.assignment,
        phi=context.total_phi(),
        iterations=iterations,
        converged=False,
    )
