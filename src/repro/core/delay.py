"""End-to-end delay (paper Sec. III-C).

The delay of a flow ``u -> v`` aggregates

1. the last-mile hop ``H_{a,u}`` from ``u`` to its agent ``a``;
2. the inter-agent path: directly ``D_{a,b}`` when no transcoding is needed,
   or ``D_{a,m} + D_{m,b}`` through the transcoding agent ``m`` plus the
   transcoding latency ``sigma_m(r^u_u, r^d_vu)`` otherwise;
3. the last-mile hop ``H_{b,v}`` into ``v``.

Queueing delay is ignored — the capacity constraints guarantee resources
(the paper makes the same argument).  The per-user conferencing delay is
``d_u = max_{v in P(u)} d_{v -> u}`` (worst incoming stream), and the
session delay cost ``F(d_s)`` averages ``d_u`` over the session (the
paper's example choice of convex increasing F).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.assignment import Assignment
from repro.errors import ModelError
from repro.model.conference import Conference
from repro.types import UNASSIGNED


def flow_delay(
    conference: Conference, assignment: Assignment, source: int, destination: int
) -> float:
    """``d_{source -> destination}`` in milliseconds."""
    if conference.session_of(source) != conference.session_of(destination):
        raise ModelError(
            f"users {source} and {destination} are not in the same session"
        )
    if source == destination:
        raise ModelError("a flow needs distinct endpoints")
    topo = conference.topology
    a = assignment.agent_of(source)
    b = assignment.agent_of(destination)
    if a == UNASSIGNED or b == UNASSIGNED:
        raise ModelError("both endpoints must be assigned")
    lastmile = topo.agent_to_user(a, source) + topo.agent_to_user(b, destination)

    upstream = conference.user(source).upstream
    demanded = conference.user(destination).downstream_from(source)
    if demanded == upstream:
        return lastmile + topo.agent_to_agent(a, b)

    pair_idx = conference.pair_index(source, destination)
    m = assignment.task_agent_of(pair_idx)
    if m == UNASSIGNED:
        raise ModelError(
            f"transcoding pair {source}->{destination} is unassigned"
        )
    transcode = conference.agent(m).transcoding_latency_ms(upstream, demanded)
    return (
        lastmile
        + topo.agent_to_agent(a, m)
        + topo.agent_to_agent(m, b)
        + transcode
    )


def iter_session_flows(conference: Conference, sid: int) -> Iterator[tuple[int, int]]:
    """All ordered ``(source, destination)`` pairs of session ``sid``."""
    session = conference.session(sid)
    for u in session.user_ids:
        for v in session.user_ids:
            if u != v:
                yield (u, v)


def session_user_delays(
    conference: Conference, assignment: Assignment, sid: int
) -> dict[int, float]:
    """``d_u`` for each user of session ``sid``: the worst delay among the
    streams the user receives."""
    session = conference.session(sid)
    worst: dict[int, float] = {uid: 0.0 for uid in session.user_ids}
    for source, destination in iter_session_flows(conference, sid):
        delay = flow_delay(conference, assignment, source, destination)
        if delay > worst[destination]:
            worst[destination] = delay
    return worst


def session_delay_cost(
    conference: Conference, assignment: Assignment, sid: int
) -> float:
    """``F(d_s)`` — the mean of per-user worst delays over the session."""
    delays = session_user_delays(conference, assignment, sid)
    return float(np.mean(list(delays.values())))


def max_session_flow_delay(
    conference: Conference, assignment: Assignment, sid: int
) -> float:
    """The largest single-flow delay in the session (constraint (8) LHS)."""
    return max(
        flow_delay(conference, assignment, source, destination)
        for source, destination in iter_session_flows(conference, sid)
    )


def delay_violations(
    conference: Conference,
    assignment: Assignment,
    sid: int,
    dmax_ms: float | None = None,
) -> list[tuple[int, int, float]]:
    """Flows of session ``sid`` exceeding the delay cap, as
    ``(source, destination, delay_ms)`` triples."""
    cap = conference.dmax_ms if dmax_ms is None else dmax_ms
    return [
        (source, destination, delay)
        for source, destination in iter_session_flows(conference, sid)
        for delay in (flow_delay(conference, assignment, source, destination),)
        if delay > cap + 1e-9
    ]


def average_conferencing_delay(
    conference: Conference,
    assignment: Assignment,
    sids: Iterable[int] | None = None,
) -> float:
    """The paper's reported delay metric: the average over all users of the
    per-user worst incoming-flow delay ``d_u``."""
    if sids is None:
        sids = range(conference.num_sessions)
    values: list[float] = []
    for sid in sids:
        values.extend(session_user_delays(conference, assignment, sid).values())
    if not values:
        raise ModelError("no active sessions to average over")
    return float(np.mean(values))
