"""Batched (vectorized) candidate evaluation — the fast HOP kernel.

Alg. 1 spends essentially all of its time inside ``session_hop``: every
HOP evaluates ``O(|U(s)| * L)`` neighbouring assignments, and the
reference path (:meth:`repro.core.search.SearchContext.evaluate_move`)
pays per candidate for a full :class:`~repro.core.assignment.Assignment`
copy, a Python walk over the session's streams and flows, and a handful
of small-object allocations.  This module removes the per-candidate
Python round trip: the *whole single-decision move set* of a session is
materialized as flat numpy arrays (:class:`MoveBatch`) and evaluated in
one array pass (:func:`evaluate_move_batch`) that produces per-candidate
traffic vectors, transcode counts, flow delays and the delay-cap /
capacity masks.

Bit-for-bit equivalence contract
--------------------------------

The batched kernel is required to agree **bit-for-bit** with the
reference path — same candidate enumeration order, same feasibility
mask, same IEEE-754 ``phi`` values — so the two paths are freely
interchangeable mid-trajectory (``tests/test_core_batched.py`` enforces
this).  Three rules make that possible:

* Additions into a per-agent slot happen in the same *phase order* as
  the reference kernel (last-mile, per-group transcode traffic, raw
  targets), and every add within a phase uses the same single scalar
  value, so per-slot accumulation order inside a phase is immaterial.
* Set-dedup semantics (``task_agents`` / ``dest_agents`` /
  ``raw_targets`` in :meth:`ConferenceProfile.session_usage`) are
  reproduced with first-occurrence masks over the candidate axis.
* Reductions that the reference performs as sequential Python sums
  (per-user worst-delay mean) are performed as explicit sequential
  column adds, never ``np.sum``, whose pairwise algorithm could round
  differently.

The kernel is pure: it takes a profile, a base assignment and a move
batch, and returns arrays.  Feasibility masking against a capacity
ledger and ``phi`` assembly live with the caller (the search layer),
which owns those inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.neighborhood import KIND_TASK, KIND_USER, Move
from repro.errors import ModelError

__all__ = [
    "MoveBatch",
    "BatchEvaluation",
    "build_move_batch",
    "evaluate_move_batch",
    "capacity_mask",
    "delay_mask",
]


@dataclass(frozen=True)
class MoveBatch:
    """The full single-decision move set of one session, as flat arrays.

    Candidates appear in exactly the order :func:`session_moves` yields
    them: users in session order then transcoding pairs, and for each
    decision the ``L - 1`` alternative agents in ascending id order.
    """

    sid: int
    #: ``KIND_USER`` (0) or ``KIND_TASK`` (1) per candidate.
    kinds: np.ndarray
    #: The moved decision: a uid for user moves, a pair index for tasks.
    indices: np.ndarray
    old_agents: np.ndarray
    new_agents: np.ndarray

    @property
    def size(self) -> int:
        return int(self.kinds.shape[0])

    def move(self, i: int) -> Move:
        """Materialize candidate ``i`` as a :class:`Move` object."""
        kind = "user" if self.kinds[i] == KIND_USER else "task"
        return Move(
            kind=kind,
            index=int(self.indices[i]),
            old_agent=int(self.old_agents[i]),
            new_agent=int(self.new_agents[i]),
        )


@dataclass(frozen=True)
class BatchEvaluation:
    """Vectorized per-candidate session metrics (axis 0 = candidate).

    The 2-D arrays are ``(C, L)``; rows are exactly what the reference
    :class:`~repro.core.traffic.SessionUsage` holds for that candidate.
    """

    moves: MoveBatch
    inter_in: np.ndarray
    inter_out: np.ndarray
    download: np.ndarray
    upload: np.ndarray
    transcodes: np.ndarray
    #: ``F(d_s)`` — mean of per-user worst incoming delay, per candidate.
    delay_cost_ms: np.ndarray
    #: Max flow delay per candidate (feeds constraint (8)).
    max_flow_ms: np.ndarray

    @property
    def size(self) -> int:
        return self.moves.size


def build_move_batch(conference, assignment, sid: int) -> MoveBatch:
    """Vectorized equivalent of listing :func:`session_moves`.

    Uses the identity ``new_agent = k + (k >= current)`` for
    ``k in [0, L-2]`` to enumerate "all agents except the current one,
    ascending" without a Python loop over agents.
    """
    num_agents = conference.num_agents
    session = conference.session(sid)
    uids = np.asarray(session.user_ids, dtype=np.int64)
    pairs = np.asarray(conference.session_pair_indices(sid), dtype=np.int64)

    decision_indices = np.concatenate([uids, pairs])
    decision_kinds = np.concatenate(
        [
            np.full(uids.shape[0], KIND_USER, dtype=np.uint8),
            np.full(pairs.shape[0], KIND_TASK, dtype=np.uint8),
        ]
    )
    current = np.concatenate(
        [assignment.user_agent[uids], assignment.task_agent[pairs]]
    )
    if current.size and int(current.min()) < 0:
        raise ModelError(f"session {sid} has unassigned decisions")

    alternatives = num_agents - 1
    k = np.arange(alternatives, dtype=np.int64)
    new_agents = k[None, :] + (k[None, :] >= current[:, None])
    return MoveBatch(
        sid=sid,
        kinds=np.repeat(decision_kinds, alternatives),
        indices=np.repeat(decision_indices, alternatives),
        old_agents=np.repeat(current, alternatives),
        new_agents=new_agents.reshape(-1),
    )


def _agent_columns(
    profile, assignment, moves: MoveBatch
) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
    """Per-decision agent ids along the candidate axis.

    ``user_cols[uid][c]`` is the agent user ``uid`` attaches to in
    candidate ``c`` (the base assignment's value except inside the
    contiguous block of candidates that move ``uid``), and likewise
    ``task_cols[pair_index]``.  Decision-major move ordering makes every
    such block one slice.
    """
    plan = profile.plan(moves.sid)
    num_alternatives = profile.num_agents - 1
    size = moves.size

    user_cols: dict[int, np.ndarray] = {}
    task_cols: dict[int, np.ndarray] = {}
    block = 0
    for uid in plan.users:
        column = np.full(size, int(assignment.user_agent[uid]), dtype=np.int64)
        start = block * num_alternatives
        column[start : start + num_alternatives] = moves.new_agents[
            start : start + num_alternatives
        ]
        user_cols[uid] = column
        block += 1
    for pair_index in plan.pair_indices:
        column = np.full(
            size, int(assignment.task_agent[pair_index]), dtype=np.int64
        )
        start = block * num_alternatives
        column[start : start + num_alternatives] = moves.new_agents[
            start : start + num_alternatives
        ]
        task_cols[pair_index] = column
        block += 1
    return user_cols, task_cols


def _first_occurrence_masks(columns: list[np.ndarray], size: int) -> list[np.ndarray]:
    """Per-column mask marking candidates where the column's value has not
    appeared in any earlier column — the vectorized set-dedup."""
    masks: list[np.ndarray] = []
    for j, column in enumerate(columns):
        mask = np.ones(size, dtype=bool)
        for earlier in columns[:j]:
            mask &= column != earlier
        masks.append(mask)
    return masks


def evaluate_move_batch(profile, assignment, moves: MoveBatch) -> BatchEvaluation:
    """Evaluate every candidate of ``moves`` in one array pass.

    Mirrors :meth:`ConferenceProfile.session_usage` and
    :meth:`ConferenceProfile.session_delays` candidate-by-candidate,
    bit-for-bit (see the module docstring for the ordering argument).
    """
    plan = profile.plan(moves.sid)
    num_agents = profile.num_agents
    size = moves.size
    rows = np.arange(size)
    user_cols, task_cols = _agent_columns(profile, assignment, moves)

    inter_in = np.zeros((size, num_agents))
    inter_out = np.zeros((size, num_agents))
    lastmile_down = np.zeros((size, num_agents))
    lastmile_up = np.zeros((size, num_agents))
    transcodes = np.zeros((size, num_agents), dtype=np.int64)

    for stream in plan.streams:
        a = user_cols[stream.source]
        lastmile_down[rows, a] += stream.kappa_up
        lastmile_up[rows, a] += profile.demand_out_mbps[stream.source]

        # Symbols feeding the stream's raw-target set, in reference order:
        # every group's task agents, then the raw-destination users.
        raw_symbols: list[np.ndarray] = []
        for kappa, pair_list, dests in stream.transcode_groups:
            task_columns = [task_cols[i] for i in pair_list]
            task_first = _first_occurrence_masks(task_columns, size)
            for column, first in zip(task_columns, task_first):
                hit = rows[first]
                transcodes[hit, column[first]] += 1

            dest_columns = [user_cols[v] for v in dests]
            dest_first = _first_occurrence_masks(dest_columns, size)
            for dest_column, dest_mask in zip(dest_columns, dest_first):
                active_dest = dest_mask & (dest_column != a)
                for task_column, task_mask in zip(task_columns, task_first):
                    mask = active_dest & task_mask & (task_column != dest_column)
                    hit = rows[mask]
                    inter_out[hit, task_column[mask]] += kappa
                    inter_in[hit, dest_column[mask]] += kappa
            raw_symbols.extend(task_columns)
        raw_symbols.extend(user_cols[v] for v in stream.raw_dest_users)

        raw_first = _first_occurrence_masks(raw_symbols, size)
        for symbol, first in zip(raw_symbols, raw_first):
            mask = first & (symbol != a)
            hit = rows[mask]
            inter_out[hit, a[mask]] += stream.kappa_up
            inter_in[hit, symbol[mask]] += stream.kappa_up

    h = profile.h
    d = profile.d
    positions = {uid: i for i, uid in enumerate(plan.users)}
    worst = np.zeros((size, len(plan.users)))
    max_flow = np.zeros(size)
    for source, destination, pair_index in plan.flows:
        a = user_cols[source]
        b = user_cols[destination]
        delay = h[a, source] + h[b, destination]
        if pair_index < 0:
            delay = delay + d[a, b]
        else:
            m = task_cols[pair_index]
            delay = delay + ((d[a, m] + d[m, b]) + profile.sigma[pair_index, m])
        column = positions[destination]
        np.maximum(worst[:, column], delay, out=worst[:, column])
        np.maximum(max_flow, delay, out=max_flow)

    # Sequential column adds replicate Python's left-to-right
    # ``sum(worst.values())`` exactly; np.sum's pairwise order would not.
    total = np.zeros(size)
    for column in range(worst.shape[1]):
        total = total + worst[:, column]
    delay_cost = total / worst.shape[1] if worst.shape[1] else total

    return BatchEvaluation(
        moves=moves,
        inter_in=inter_in,
        inter_out=inter_out,
        download=lastmile_down + inter_in,
        upload=lastmile_up + inter_out,
        transcodes=transcodes,
        delay_cost_ms=delay_cost,
        max_flow_ms=max_flow,
    )


def capacity_mask(
    evaluation: BatchEvaluation,
    residual_down: np.ndarray,
    residual_up: np.ndarray,
    residual_slots: np.ndarray,
    tolerance: float,
) -> np.ndarray:
    """Per-candidate capacity feasibility (constraints (5)-(7)).

    ``residual_*`` must already exclude the hopping session's own usage,
    exactly as :meth:`CapacityLedger.fits` computes them.
    """
    return (
        (evaluation.download <= residual_down[None, :] + tolerance).all(axis=1)
        & (evaluation.upload <= residual_up[None, :] + tolerance).all(axis=1)
        & (evaluation.transcodes <= residual_slots[None, :] + tolerance).all(axis=1)
    )


def delay_mask(evaluation: BatchEvaluation, dmax_ms: float) -> np.ndarray:
    """Per-candidate delay-cap feasibility (constraint (8)), with the
    same ``1e-9`` slack the reference path applies."""
    return ~(evaluation.max_flow_ms > dmax_ms + 1e-9)
