"""Multi-session capacity ledger.

Sessions are optimized independently (each runs its own HOP), but the
capacity constraints (5)-(7) couple them: they cap the *summed* usage of
all sessions at each agent.  The ledger keeps per-session usage vectors and
running totals so a session can test a candidate assignment against the
residual capacity left by everyone else in O(L) — the "fetch the updated
list of residual capacities" step of Alg. 1.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.assignment import Assignment
from repro.core.feasibility import CAPACITY_TOLERANCE, agent_capacity_arrays
from repro.core.traffic import SessionUsage, compute_session_usage
from repro.errors import ModelError
from repro.model.conference import Conference


class CapacityLedger:
    """Tracks per-agent usage of download / upload / transcoding resources
    across sessions, supporting cheap candidate tests and migrations."""

    def __init__(self, conference: Conference):
        self._conference = conference
        num_agents = conference.num_agents
        self._cap_down, self._cap_up, self._cap_slots = agent_capacity_arrays(conference)
        self._unconstrained = bool(
            np.all(np.isinf(self._cap_down))
            and np.all(np.isinf(self._cap_up))
            and np.all(np.isinf(self._cap_slots))
        )
        self._down = np.zeros(num_agents)
        self._up = np.zeros(num_agents)
        self._slots = np.zeros(num_agents)
        self._sessions: dict[int, SessionUsage] = {}

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_assignment(
        cls,
        conference: Conference,
        assignment: Assignment,
        sids: Iterable[int] | None = None,
    ) -> "CapacityLedger":
        """A ledger populated with the usage of the given sessions."""
        ledger = cls(conference)
        if sids is None:
            sids = range(conference.num_sessions)
        for sid in sids:
            ledger.set_session(compute_session_usage(conference, assignment, sid))
        return ledger

    # ------------------------------------------------------------------ #
    # Mutation                                                           #
    # ------------------------------------------------------------------ #

    def set_session(self, usage: SessionUsage) -> None:
        """Insert or replace one session's usage."""
        self.remove_session(usage.sid)
        self._sessions[usage.sid] = usage
        self._down += usage.download
        self._up += usage.upload
        self._slots += usage.transcodes

    def remove_session(self, sid: int) -> None:
        """Drop one session's usage (no-op if absent)."""
        usage = self._sessions.pop(sid, None)
        if usage is not None:
            self._down -= usage.download
            self._up -= usage.upload
            self._slots -= usage.transcodes

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def active_sessions(self) -> tuple[int, ...]:
        return tuple(sorted(self._sessions))

    def session_usage(self, sid: int) -> SessionUsage:
        try:
            return self._sessions[sid]
        except KeyError:
            raise ModelError(f"session {sid} is not tracked by the ledger") from None

    def totals(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current ``(download, upload, transcodes)`` totals (copies)."""
        return self._down.copy(), self._up.copy(), self._slots.copy()

    def residuals(self, excluding_sid: int | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Residual capacities, optionally with one session's usage returned
        to the pool (the view that session sees while hopping)."""
        down, up, slots = self._down, self._up, self._slots
        if excluding_sid is not None and excluding_sid in self._sessions:
            usage = self._sessions[excluding_sid]
            down = down - usage.download
            up = up - usage.upload
            slots = slots - usage.transcodes
        return (
            self._cap_down - down,
            self._cap_up - up,
            self._cap_slots - slots,
        )

    @property
    def unconstrained(self) -> bool:
        """True when every capacity is infinite (constraints (5)-(7) moot)."""
        return self._unconstrained

    def fits(self, candidate: SessionUsage) -> bool:
        """Would replacing ``candidate.sid``'s usage with ``candidate``
        respect every capacity constraint?"""
        if self._unconstrained:
            return True
        res_down, res_up, res_slots = self.residuals(excluding_sid=candidate.sid)
        return bool(
            np.all(candidate.download <= res_down + CAPACITY_TOLERANCE)
            and np.all(candidate.upload <= res_up + CAPACITY_TOLERANCE)
            and np.all(candidate.transcodes <= res_slots + CAPACITY_TOLERANCE)
        )

    def utilization(self) -> dict[str, np.ndarray]:
        """Fractional utilization per resource (inf capacity -> 0)."""
        def frac(used: np.ndarray, cap: np.ndarray) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.where(np.isfinite(cap) & (cap > 0), used / cap, 0.0)
            return out

        return {
            "download": frac(self._down, self._cap_down),
            "upload": frac(self._up, self._cap_up),
            "transcodes": frac(self._slots, self._cap_slots),
        }
