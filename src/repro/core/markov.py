"""Alg. 1 — Markov-approximation-based assignment.

The solver simulates the continuous-time Markov chain of Sec. IV-A: the
state is the joint assignment; each session independently waits an
exponential time (mean ``1/tau``) and then HOPs to a feasible neighbour
``f'`` with probability proportional to ``exp(0.5 * beta * (Phi_s,f -
Phi_s,f'))``, computed from the session-local objective only.  The chain's
stationary distribution approximates the Gibbs distribution
``p*_f ∝ exp(-beta * Phi_f)`` of Eq. (9), whose expected objective is within
``(U + theta_sum) log L / beta`` of optimal (Eq. 12).

Two hop rules are provided:

* ``"paper"`` — the pseudocode of Alg. 1 verbatim: sample among all
  feasible neighbours with softmax weights.  Because the softmax
  normalizer is state-dependent, detailed balance holds only
  approximately; this is the rule the paper evaluates.
* ``"metropolis"`` — propose a uniform feasible neighbour and accept with
  ``min(1, (|N(f)| / |N(f')|) * exp(beta * (Phi_f - Phi_f')))``; the
  Hastings factor restores exact detailed balance w.r.t. Eq. (9), at the
  price of a second neighbourhood enumeration per hop (a feasibility
  *count* against the shared capacity ledger — no search state is
  rebuilt).  :mod:`repro.core.theory` quantifies the difference on
  enumerable instances.

Candidate evaluation runs on the struct-of-arrays kernel of
:mod:`repro.core.arrays` by default; ``MarkovConfig(kernel="batched")``
selects PR 2's per-session batch kernel and ``kernel="reference"`` (or
the legacy ``batched=False``) the per-move reference path.  All three
are bit-for-bit equivalent (same candidates, same ``phi``, same rng
consumption), so trajectories are identical under any kernel.

All hop weights are computed in the log domain, so raw-unit objectives with
``beta = 400`` are handled without overflow.

This module implements the *jump chain* (hop decisions); wall-clock timing,
FREEZE/UNFREEZE serialization and session dynamics live in
:mod:`repro.runtime`, which drives this solver one hop at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

import repro.telemetry as tele
from repro.core.assignment import Assignment
from repro.core.neighborhood import Move
from repro.core.objective import ObjectiveEvaluator
from repro.core.search import (
    Candidate,
    CandidateBatch,
    SearchContext,
    resolve_kernel,
)
from repro.errors import SolverError
from repro.model.conference import Conference
from repro.netsim.noise import NoiseModel


def hop_log_weights(phi_current: float, phi_candidates: np.ndarray, beta: float) -> np.ndarray:
    """Log-weights ``0.5 * beta * (Phi_f - Phi_f')`` of the HOP rule."""
    return 0.5 * beta * (phi_current - np.asarray(phi_candidates, dtype=float))


def hop_probabilities(
    phi_current: float, phi_candidates: np.ndarray, beta: float
) -> np.ndarray:
    """Normalized hop probabilities, computed stably in the log domain."""
    log_w = hop_log_weights(phi_current, phi_candidates, beta)
    log_w -= log_w.max()
    weights = np.exp(log_w)
    return weights / weights.sum()


def _sample_index(rng: np.random.Generator, probabilities: np.ndarray) -> int:
    """Draw one index distributed as ``probabilities``.

    Replicates ``rng.choice(n, p=probabilities)`` draw-for-draw — numpy's
    ``Generator.choice`` builds the same renormalized cumulative sum and
    bisects it against a single ``rng.random()`` — while skipping its
    per-call argument validation, which is pure overhead on the hop hot
    path where the probabilities are freshly normalized each time.
    """
    cdf = probabilities.cumsum()
    cdf /= cdf[-1]
    return int(cdf.searchsorted(rng.random(), side="right"))


def metropolis_log_acceptance(
    beta: float,
    phi_current: float,
    phi_proposal: float,
    forward_degree: int,
    backward_degree: int,
) -> float:
    """Log of the Metropolis-Hastings acceptance ratio.

    ``beta * (Phi_f - Phi_f') + log(|N(f)| / |N(f')|)`` — the energy term
    plus the Hastings correction for asymmetric neighbourhood sizes.
    """
    return beta * (phi_current - phi_proposal) + np.log(
        forward_degree / backward_degree
    )


@dataclass(frozen=True)
class MarkovConfig:
    """Tuning parameters of Alg. 1.

    Attributes
    ----------
    beta:
        The approximation sharpness; the paper uses 400 ("proportional to
        the logarithm of the problem state space") and contrasts 200.
    tau:
        The countdown rate: each session hops at rate ``tau`` (mean wait
        ``1/tau`` seconds; the prototype uses a 10 s mean).  Only the
        runtime uses the wall-clock value; the jump chain is insensitive
        to it.
    hop_rule:
        ``"paper"`` or ``"metropolis"`` (see module docstring).
    batched:
        Legacy kernel flag (``True`` -> ``"batched"``, ``False`` ->
        ``"reference"``); superseded by ``kernel`` and normalized to
        match it after construction.
    kernel:
        Candidate-evaluation kernel (:data:`repro.core.search.KERNELS`);
        defaults to ``"arrays"``.  Trajectories are identical under any
        kernel.
    """

    beta: float = 400.0
    tau: float = 0.1
    hop_rule: Literal["paper", "metropolis"] = "paper"
    batched: bool | None = None
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise SolverError(f"beta must be positive, got {self.beta}")
        if self.tau <= 0:
            raise SolverError(f"tau must be positive, got {self.tau}")
        if self.hop_rule not in ("paper", "metropolis"):
            raise SolverError(f"unknown hop rule {self.hop_rule!r}")
        resolved = resolve_kernel(self.kernel, self.batched)
        object.__setattr__(self, "kernel", resolved)
        object.__setattr__(self, "batched", resolved != "reference")


@dataclass(frozen=True)
class HopResult:
    """Outcome of one HOP invocation for one session."""

    sid: int
    moved: bool
    move: Move | None
    phi_before: float
    phi_after: float
    num_candidates: int


class MarkovAssignmentSolver:
    """The per-conference instantiation of Alg. 1.

    One solver spans all active sessions (it is the in-cloud counterpart of
    every session's local algorithm put together); ``session_hop`` performs
    a single session's HOP, and ``run`` simulates the jump chain by waking
    sessions uniformly at random — the correct embedding when every session
    shares the same ``tau``.
    """

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        initial_assignment: Assignment,
        config: MarkovConfig | None = None,
        active_sids: list[int] | None = None,
        noise: NoiseModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._config = config if config is not None else MarkovConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._context = SearchContext(
            evaluator,
            initial_assignment,
            active_sids=active_sids,
            noise=noise,
            rng=self._rng,
            kernel=self._config.kernel,
        )
        self._hops = 0
        self._migrations = 0
        self._best_phi = self._context.total_phi()
        self._best_assignment = self._context.assignment

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> MarkovConfig:
        return self._config

    @property
    def context(self) -> SearchContext:
        return self._context

    @property
    def conference(self) -> Conference:
        return self._context.conference

    @property
    def assignment(self) -> Assignment:
        return self._context.assignment

    @property
    def hops(self) -> int:
        """Number of HOP invocations so far."""
        return self._hops

    @property
    def migrations(self) -> int:
        """Number of hops that actually changed a decision."""
        return self._migrations

    @property
    def best_phi(self) -> float:
        """Lowest global objective observed along the trajectory."""
        return self._best_phi

    @property
    def best_assignment(self) -> Assignment:
        """The assignment achieving :attr:`best_phi`.

        The paper's chain keeps moving even at the optimum (HOP always
        migrates), so one-shot experiments report the best state visited
        rather than the final snapshot.
        """
        return self._best_assignment

    def metrics(self) -> tuple[float, float]:
        """``(inter_agent_mbps, average_delay_ms)`` of the current state."""
        return self._context.metrics()

    def total_phi(self) -> float:
        return self._context.total_phi()

    # ------------------------------------------------------------------ #
    # The HOP procedure                                                  #
    # ------------------------------------------------------------------ #

    def session_hop(self, sid: int) -> HopResult:
        """One HOP of session ``sid`` (lines 9-16 of Alg. 1).

        On the batched path the hop rules act directly on the vectorized
        ``phi`` array; only the chosen neighbour is materialized into a
        full :class:`Candidate`.
        """
        self._hops += 1
        # One collector lookup per hop: with telemetry disabled the whole
        # hop touches no counter dicts and allocates no span (the
        # REPRO_PERF overhead guard depends on this at SoA scale).
        collector = tele.active_collector()
        if collector is not None:
            collector.count("solver.hops_proposed")
        phi_before = self._context.session_cost(sid).phi
        span = (
            collector.span("solver.hop_batch")
            if collector is not None
            else tele.NOOP_SPAN
        )
        with span:
            if self._context.batched:
                batch = self._context.candidate_batch(sid)
                num_candidates = batch.num_feasible
                if num_candidates == 0:
                    return HopResult(sid, False, None, phi_before, phi_before, 0)
                if self._config.hop_rule == "paper":
                    chosen = self._paper_hop_batch(phi_before, batch)
                else:
                    chosen = self._metropolis_hop_batch(sid, phi_before, batch)
            else:
                candidates = self._context.feasible_candidates(sid)
                num_candidates = len(candidates)
                if num_candidates == 0:
                    return HopResult(sid, False, None, phi_before, phi_before, 0)
                if self._config.hop_rule == "paper":
                    chosen = self._paper_hop(phi_before, candidates)
                else:
                    chosen = self._metropolis_hop(sid, phi_before, candidates)

        if collector is not None:
            collector.count("solver.candidates", num_candidates)
        if chosen is None:
            return HopResult(
                sid, False, None, phi_before, phi_before, num_candidates
            )
        self._context.commit(sid, chosen)
        self._migrations += 1
        if collector is not None:
            collector.count("solver.hops_accepted")
        phi_total = self._context.total_phi()
        if phi_total < self._best_phi:
            self._best_phi = phi_total
            self._best_assignment = self._context.assignment
        return HopResult(
            sid=sid,
            moved=True,
            move=chosen.move,
            phi_before=phi_before,
            phi_after=self._context.session_cost(sid).phi,
            num_candidates=num_candidates,
        )

    def _paper_hop(self, phi_before: float, candidates: list[Candidate]) -> Candidate:
        phis = np.array([c.phi for c in candidates])
        probabilities = hop_probabilities(phi_before, phis, self._config.beta)
        return candidates[_sample_index(self._rng, probabilities)]

    def _paper_hop_batch(self, phi_before: float, batch: CandidateBatch) -> Candidate:
        probabilities = hop_probabilities(phi_before, batch.phi, self._config.beta)
        return batch.materialize(_sample_index(self._rng, probabilities))

    def _metropolis_hop(
        self, sid: int, phi_before: float, candidates: list[Candidate]
    ) -> Candidate | None:
        proposal = candidates[int(self._rng.integers(len(candidates)))]
        accepted = self._metropolis_accept(
            sid, phi_before, proposal.phi, len(candidates), proposal.assignment
        )
        return proposal if accepted else None

    def _metropolis_hop_batch(
        self, sid: int, phi_before: float, batch: CandidateBatch
    ) -> Candidate | None:
        position = int(self._rng.integers(batch.num_feasible))
        proposal = batch.materialize(position)
        accepted = self._metropolis_accept(
            sid,
            phi_before,
            proposal.phi,
            batch.num_feasible,
            proposal.assignment,
        )
        return proposal if accepted else None

    def _metropolis_accept(
        self,
        sid: int,
        phi_before: float,
        phi_proposal: float,
        forward: int,
        proposal_assignment: Assignment,
    ) -> bool:
        # Hastings correction: neighbourhood size at the proposed state,
        # counted against the *current* capacity ledger (no other session
        # moves, so the residuals excluding ``sid`` are unchanged) — the
        # former full SearchContext rebuild per proposal is gone.
        backward = self._context.count_feasible(sid, proposal_assignment)
        if backward == 0:
            return False  # the reverse move would be impossible; reject
        log_accept = metropolis_log_acceptance(
            self._config.beta, phi_before, phi_proposal, forward, backward
        )
        return bool(np.log(self._rng.uniform()) < min(0.0, log_accept))

    # ------------------------------------------------------------------ #
    # Jump-chain simulation                                              #
    # ------------------------------------------------------------------ #

    def run(
        self,
        num_hops: int,
        on_hop: Callable[[HopResult], None] | None = None,
    ) -> HopResult | None:
        """Simulate ``num_hops`` wake-ups with uniformly random sessions.

        With equal ``tau`` across sessions this is exactly the jump chain
        of the paper's CTMC.  Returns the last hop result.
        """
        result: HopResult | None = None
        active = self._context.active_sessions
        if not active:
            raise SolverError("no active sessions")
        for _ in range(num_hops):
            sid = active[int(self._rng.integers(len(active)))]
            result = self.session_hop(sid)
            if on_hop is not None:
                on_hop(result)
        return result

    def run_until_stable(
        self,
        min_hops: int = 50,
        max_hops: int = 5000,
        patience: int | None = None,
    ) -> int:
        """Run until :attr:`best_phi` stops improving for ``patience``
        consecutive hops (default: 8x the session count); returns the
        number of hops executed.

        The paper rule keeps migrating forever by construction, so
        "no better state found recently" is the practical convergence
        criterion for the one-shot experiments (Table II); the result of
        interest is then :attr:`best_assignment`.
        """
        patience = patience if patience is not None else 8 * len(
            self._context.active_sessions
        )
        quiet = 0
        executed = 0
        active = self._context.active_sessions
        best = self._best_phi
        while executed < max_hops:
            sid = active[int(self._rng.integers(len(active)))]
            self.session_hop(sid)
            executed += 1
            if self._best_phi < best - 1e-12:
                best = self._best_phi
                quiet = 0
            else:
                quiet += 1
            if executed >= min_hops and quiet >= patience:
                break
        return executed
