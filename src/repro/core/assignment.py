"""Assignment state: the decision variables of problem UAP.

The paper's binary variables are

* ``lambda_lu`` — user ``u`` attaches to agent ``l`` (constraints (1)-(2):
  exactly one agent per user), and
* ``gamma_lruv`` — agent ``l`` transcodes ``u``'s stream to representation
  ``r`` for destination ``v`` (constraints (3)-(4): exactly one agent per
  required transcoding, and ``r`` is pinned to ``r^d_{vu}``).

Because each user picks exactly one agent and each transcoding pair picks
exactly one agent, the whole state compresses into two integer vectors:
``user_agent`` of length U and ``task_agent`` of length ``theta_sum``
(aligned with :attr:`Conference.transcode_pairs`).  The decision-space size
is then ``L ** (U + theta_sum)``, exactly the paper's dimension analysis.

:class:`Assignment` is an immutable value object; "mutation" returns a new
instance sharing no state, so solvers can keep candidate sets cheaply and
states can key dictionaries (see :meth:`Assignment.key`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.model.conference import Conference
from repro.types import UNASSIGNED


class Assignment:
    """Immutable user-to-agent and transcoding-task-to-agent assignment."""

    __slots__ = ("_user_agent", "_task_agent", "_key")

    def __init__(self, user_agent: np.ndarray, task_agent: np.ndarray):
        ua = np.asarray(user_agent, dtype=np.int64).copy()
        ta = np.asarray(task_agent, dtype=np.int64).copy()
        if ua.ndim != 1 or ta.ndim != 1:
            raise ModelError("assignment vectors must be one-dimensional")
        ua.setflags(write=False)
        ta.setflags(write=False)
        self._user_agent = ua
        self._task_agent = ta
        self._key: bytes | None = None

    # ------------------------------------------------------------------ #
    # Construction                                                       #
    # ------------------------------------------------------------------ #

    @classmethod
    def _adopt(cls, user_agent: np.ndarray, task_agent: np.ndarray) -> "Assignment":
        """Internal: wrap already-validated int64 vectors without copying.

        Callers hand over ownership — the arrays are frozen in place, so
        they must be private copies (or already-frozen arrays of another
        instance).  This keeps the copy-on-write updates at one array
        copy instead of three (the public constructor re-copies both
        vectors defensively), which matters on the hop path where every
        accepted migration materializes a neighbouring assignment.
        """
        self = cls.__new__(cls)
        user_agent.setflags(write=False)
        task_agent.setflags(write=False)
        self._user_agent = user_agent
        self._task_agent = task_agent
        self._key = None
        return self

    @classmethod
    def empty(cls, conference: Conference) -> "Assignment":
        """An all-unassigned state sized for ``conference``."""
        return cls(
            np.full(conference.num_users, UNASSIGNED, dtype=np.int64),
            np.full(conference.theta_sum, UNASSIGNED, dtype=np.int64),
        )

    @classmethod
    def uniform(cls, conference: Conference, agent: int) -> "Assignment":
        """Everyone (users and tasks) on a single agent."""
        if not 0 <= agent < conference.num_agents:
            raise ModelError(f"agent {agent} out of range")
        return cls(
            np.full(conference.num_users, agent, dtype=np.int64),
            np.full(conference.theta_sum, agent, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Access                                                             #
    # ------------------------------------------------------------------ #

    @property
    def user_agent(self) -> np.ndarray:
        """Per-user agent ids (read-only; UNASSIGNED = not attached)."""
        return self._user_agent

    @property
    def task_agent(self) -> np.ndarray:
        """Per-transcoding-pair agent ids, aligned with
        ``Conference.transcode_pairs`` (read-only)."""
        return self._task_agent

    def agent_of(self, uid: int) -> int:
        """The agent user ``uid`` is attached to (lambda)."""
        return int(self._user_agent[uid])

    def task_agent_of(self, pair_index: int) -> int:
        """The agent performing transcoding pair ``pair_index`` (gamma)."""
        return int(self._task_agent[pair_index])

    def is_session_assigned(self, conference: Conference, sid: int) -> bool:
        """Whether every user and task of session ``sid`` has an agent."""
        session = conference.session(sid)
        if any(self._user_agent[list(session.user_ids)] == UNASSIGNED):
            return False
        pair_idx = list(conference.session_pair_indices(sid))
        return not pair_idx or bool(np.all(self._task_agent[pair_idx] != UNASSIGNED))

    # ------------------------------------------------------------------ #
    # Updates (copy-on-write)                                            #
    # ------------------------------------------------------------------ #

    def with_user(self, uid: int, agent: int) -> "Assignment":
        """A copy with user ``uid`` attached to ``agent``."""
        ua = self._user_agent.copy()
        ua[uid] = agent
        return Assignment._adopt(ua, self._task_agent)

    def with_task(self, pair_index: int, agent: int) -> "Assignment":
        """A copy with transcoding pair ``pair_index`` placed on ``agent``."""
        ta = self._task_agent.copy()
        ta[pair_index] = agent
        return Assignment._adopt(self._user_agent, ta)

    def with_session_cleared(self, conference: Conference, sid: int) -> "Assignment":
        """A copy with session ``sid`` fully unassigned (used on departure)."""
        ua = self._user_agent.copy()
        ta = self._task_agent.copy()
        session = conference.session(sid)
        ua[list(session.user_ids)] = UNASSIGNED
        idx = list(conference.session_pair_indices(sid))
        if idx:
            ta[idx] = UNASSIGNED
        return Assignment._adopt(ua, ta)

    def merged(self, other: "Assignment", conference: Conference, sid: int) -> "Assignment":
        """A copy taking session ``sid``'s decisions from ``other``."""
        ua = self._user_agent.copy()
        ta = self._task_agent.copy()
        session = conference.session(sid)
        uids = list(session.user_ids)
        ua[uids] = other.user_agent[uids]
        idx = list(conference.session_pair_indices(sid))
        if idx:
            ta[idx] = other.task_agent[idx]
        return Assignment._adopt(ua, ta)

    # ------------------------------------------------------------------ #
    # Identity                                                           #
    # ------------------------------------------------------------------ #

    def key(self) -> bytes:
        """A hashable canonical encoding of the state."""
        if self._key is None:
            self._key = self._user_agent.tobytes() + b"|" + self._task_agent.tobytes()
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        users = ",".join(str(a) for a in self._user_agent)
        tasks = ",".join(str(a) for a in self._task_agent)
        return f"Assignment(users=[{users}], tasks=[{tasks}])"

    def difference(self, other: "Assignment") -> int:
        """Number of decisions on which two assignments differ (the Markov
        chain has a direct transition iff this equals 1)."""
        if self._user_agent.shape != other._user_agent.shape or (
            self._task_agent.shape != other._task_agent.shape
        ):
            raise ModelError("assignments belong to different conferences")
        return int(
            np.count_nonzero(self._user_agent != other._user_agent)
            + np.count_nonzero(self._task_agent != other._task_agent)
        )
