"""Precomputed evaluation fast path.

Candidate evaluation dominates Alg. 1's cost: every HOP evaluates
``O(|U(s)| * L)`` neighbouring assignments, and each evaluation needs the
session's traffic vector, transcode counts and flow delays.  All of the
*structure* behind those quantities (who talks to whom, which pairs need
transcoding into what, per-user bitrate sums, per-(pair, agent) transcoding
latencies) is static per conference — only the agent choices vary.

:class:`ConferenceProfile` precomputes that structure once and provides
allocation-light evaluation primitives.  The reference implementations in
:mod:`repro.core.traffic` and :mod:`repro.core.delay` remain the
ground truth — the test suite asserts bit-for-bit agreement — but the
solvers run on this module.  On top of the per-assignment kernels here,
:mod:`repro.core.batched` evaluates a session's *entire* single-decision
move set in one array pass (:meth:`ConferenceProfile.evaluate_candidates`
is the entry point); the per-move kernels below remain the reference the
batched layer is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.traffic import SessionUsage
from repro.model.conference import Conference


@dataclass(frozen=True)
class _StreamPlan:
    """Static routing structure of one source user's stream."""

    source: int
    kappa_up: float
    #: Users demanding the raw upstream (theta = 0 destinations).
    raw_dest_users: tuple[int, ...]
    #: One entry per demanded transcoded representation:
    #: (kappa, pair_indices, destination_users).
    transcode_groups: tuple[tuple[float, tuple[int, ...], tuple[int, ...]], ...]


@dataclass(frozen=True)
class _SessionPlan:
    """Static structure of one session."""

    sid: int
    users: tuple[int, ...]
    streams: tuple[_StreamPlan, ...]
    #: All ordered flows as (source, destination, pair_index or -1).
    flows: tuple[tuple[int, int, int], ...]
    pair_indices: tuple[int, ...]


class ConferenceProfile:
    """Cached static structure + fast evaluation kernels."""

    def __init__(self, conference: Conference):
        self._conference = conference
        self.num_agents = conference.num_agents
        topo = conference.topology
        self.h = np.asarray(topo.agent_user_ms)
        self.d = np.asarray(topo.inter_agent_ms)
        self.kappa_up = np.asarray(conference.upstream_kappa())

        num_users = conference.num_users
        self.demand_out_mbps = np.zeros(num_users)
        for session in conference.sessions:
            for uid in session.user_ids:
                user = conference.user(uid)
                self.demand_out_mbps[uid] = sum(
                    user.downstream_from(v).bitrate_mbps for v in session.others(uid)
                )

        # sigma[pair, agent]: transcoding latency of the pair's task on the
        # agent; pair_kappa: the transcoded output bitrate.
        pairs = conference.transcode_pairs
        self.sigma = np.zeros((len(pairs), self.num_agents))
        self.pair_kappa = np.zeros(len(pairs))
        for i, (source, destination) in enumerate(pairs):
            upstream = conference.user(source).upstream
            target = conference.demanded_representation(source, destination)
            self.pair_kappa[i] = target.bitrate_mbps
            for l in range(self.num_agents):
                self.sigma[i, l] = conference.agent(l).transcoding_latency_ms(
                    upstream, target
                )

        self._plans: list[_SessionPlan] = [
            self._build_session_plan(sid) for sid in range(conference.num_sessions)
        ]

    # ------------------------------------------------------------------ #
    # Static structure                                                   #
    # ------------------------------------------------------------------ #

    def _build_session_plan(self, sid: int) -> _SessionPlan:
        conference = self._conference
        session = conference.session(sid)
        pair_of_flow = {
            conference.transcode_pairs[i]: i
            for i in conference.session_pair_indices(sid)
        }

        streams: list[_StreamPlan] = []
        flows: list[tuple[int, int, int]] = []
        for source in session.user_ids:
            upstream = conference.user(source).upstream
            raw_dests: list[int] = []
            groups: dict[str, tuple[float, list[int], list[int]]] = {}
            for destination in session.others(source):
                demanded = conference.user(destination).downstream_from(source)
                pair_index = pair_of_flow.get((source, destination), -1)
                flows.append((source, destination, pair_index))
                if demanded == upstream:
                    raw_dests.append(destination)
                else:
                    entry = groups.setdefault(
                        demanded.name, (demanded.bitrate_mbps, [], [])
                    )
                    entry[1].append(pair_index)
                    entry[2].append(destination)
            streams.append(
                _StreamPlan(
                    source=source,
                    kappa_up=float(self.kappa_up[source]),
                    raw_dest_users=tuple(raw_dests),
                    transcode_groups=tuple(
                        (kappa, tuple(pair_list), tuple(dests))
                        for kappa, pair_list, dests in (
                            groups[name] for name in sorted(groups)
                        )
                    ),
                )
            )
        return _SessionPlan(
            sid=sid,
            users=tuple(session.user_ids),
            streams=tuple(streams),
            flows=tuple(flows),
            pair_indices=tuple(conference.session_pair_indices(sid)),
        )

    def plan(self, sid: int) -> _SessionPlan:
        return self._plans[sid]

    # ------------------------------------------------------------------ #
    # Kernels                                                            #
    # ------------------------------------------------------------------ #

    def session_usage(
        self, user_agent: np.ndarray, task_agent: np.ndarray, sid: int
    ) -> SessionUsage:
        """Fast equivalent of :func:`repro.core.traffic.compute_session_usage`."""
        plan = self._plans[sid]
        num_agents = self.num_agents
        inter_in = np.zeros(num_agents)
        inter_out = np.zeros(num_agents)
        lastmile_down = np.zeros(num_agents)
        lastmile_up = np.zeros(num_agents)
        transcodes = np.zeros(num_agents, dtype=np.int64)

        for stream in plan.streams:
            source = stream.source
            a = int(user_agent[source])
            lastmile_down[a] += stream.kappa_up
            lastmile_up[a] += self.demand_out_mbps[source]

            raw_targets: set[int] = set()
            for kappa, pair_list, dests in stream.transcode_groups:
                task_agents = {int(task_agent[i]) for i in pair_list}
                raw_targets.update(task_agents)
                for agent in task_agents:
                    transcodes[agent] += 1
                dest_agents = {int(user_agent[v]) for v in dests}
                for l in dest_agents:
                    if l == a:
                        continue  # the mu formula's (1 - lambda_lu) factor
                    for k in task_agents:
                        if k != l:
                            inter_out[k] += kappa
                            inter_in[l] += kappa
            for v in stream.raw_dest_users:
                raw_targets.add(int(user_agent[v]))
            for l in raw_targets:
                if l != a:
                    inter_out[a] += stream.kappa_up
                    inter_in[l] += stream.kappa_up

        return SessionUsage(
            sid=sid,
            inter_in=inter_in,
            inter_out=inter_out,
            download=lastmile_down + inter_in,
            upload=lastmile_up + inter_out,
            transcodes=transcodes,
        )

    def session_delays(
        self, user_agent: np.ndarray, task_agent: np.ndarray, sid: int
    ) -> tuple[float, float]:
        """``(mean of per-user worst incoming delay, max flow delay)``.

        The first value is ``F(d_s)``; the second feeds constraint (8).
        """
        plan = self._plans[sid]
        h = self.h
        d = self.d
        worst: dict[int, float] = {u: 0.0 for u in plan.users}
        max_flow = 0.0
        for source, destination, pair_index in plan.flows:
            a = int(user_agent[source])
            b = int(user_agent[destination])
            delay = h[a, source] + h[b, destination]
            if pair_index < 0:
                delay += d[a, b]
            else:
                m = int(task_agent[pair_index])
                delay += d[a, m] + d[m, b] + self.sigma[pair_index, m]
            if delay > worst[destination]:
                worst[destination] = delay
            if delay > max_flow:
                max_flow = delay
        mean = sum(worst.values()) / len(worst)
        return mean, max_flow

    def evaluate_candidates(self, assignment, sid: int):
        """Batched evaluation of session ``sid``'s full move set.

        Returns a :class:`repro.core.batched.BatchEvaluation` whose rows
        agree bit-for-bit with :meth:`session_usage` /
        :meth:`session_delays` applied to each move's assignment.
        """
        from repro.core.batched import build_move_batch, evaluate_move_batch

        moves = build_move_batch(self._conference, assignment, sid)
        return evaluate_move_batch(self, assignment, moves)

    def session_user_delays(
        self, user_agent: np.ndarray, task_agent: np.ndarray, sid: int
    ) -> dict[int, float]:
        """Per-user worst incoming delays (fast analogue of
        :func:`repro.core.delay.session_user_delays`)."""
        plan = self._plans[sid]
        h = self.h
        d = self.d
        worst: dict[int, float] = {u: 0.0 for u in plan.users}
        for source, destination, pair_index in plan.flows:
            a = int(user_agent[source])
            b = int(user_agent[destination])
            delay = h[a, source] + h[b, destination]
            if pair_index < 0:
                delay += d[a, b]
            else:
                m = int(task_agent[pair_index])
                delay += d[a, m] + d[m, b] + self.sigma[pair_index, m]
            if delay > worst[destination]:
                worst[destination] = delay
        return worst


_PROFILE_CACHE: dict[int, ConferenceProfile] = {}


def profile_for(conference: Conference) -> ConferenceProfile:
    """A cached profile per conference instance (keyed by identity)."""
    key = id(conference)
    profile = _PROFILE_CACHE.get(key)
    if profile is None or profile._conference is not conference:
        profile = ConferenceProfile(conference)
        _PROFILE_CACHE[key] = profile
        if len(_PROFILE_CACHE) > 64:  # bound the cache; keep newest entries
            oldest = next(iter(_PROFILE_CACHE))
            if oldest != key:
                del _PROFILE_CACHE[oldest]
    return profile
