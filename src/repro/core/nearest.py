"""The Nrst baseline: nearest-agent assignment.

This is the policy of Airlift [11] and vSkyConf [21], which the paper
compares against: every user attaches to the agent with the smallest
user-to-agent delay, oblivious to session structure and to resource
availability; transcoding tasks run at the source user's agent (the
natural choice in those systems, where the source agent fans the stream
out).  Equivalent to AgRank with ``n_ngbr = 1`` (Sec. V-B.3).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.assignment import Assignment
from repro.model.conference import Conference


def nearest_assignment(
    conference: Conference,
    sids: Iterable[int] | None = None,
    base: Assignment | None = None,
) -> Assignment:
    """Assign the given (default all) sessions by the nearest policy.

    ``base`` supplies the decisions of other sessions (useful in dynamic
    scenarios); it defaults to an empty assignment.  The result is
    capacity-oblivious: callers decide whether capacity violations mean
    rejection (the Fig. 9 success-rate experiments) or are tolerated (the
    unlimited-capacity experiments).
    """
    if sids is None:
        sids = range(conference.num_sessions)
    assignment = base if base is not None else Assignment.empty(conference)
    topology = conference.topology
    user_agent = assignment.user_agent.copy()
    task_agent = assignment.task_agent.copy()
    for sid in sids:
        for uid in conference.session(sid).user_ids:
            user_agent[uid] = int(topology.nearest_agents(uid)[0])
        for i in conference.session_pair_indices(sid):
            source, _destination = conference.transcode_pairs[i]
            task_agent[i] = user_agent[source]
    return Assignment(user_agent, task_agent)
