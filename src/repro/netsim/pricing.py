"""Bandwidth and transcoding pricing.

The paper reports inter-agent traffic in Mbps as the operational-cost proxy.
This module converts assignments' traffic into dollars using per-region
egress prices, for users who want G(x) and H(y) in currency; all paper
reproductions keep the Mbps/task-count units so the tables are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Seconds per hour (for Mbps -> GB/hour conversion).
_SECONDS_PER_HOUR = 3600.0
_BITS_PER_GB = 8.0 * 1024.0**3


@dataclass(frozen=True)
class RegionPricing:
    """Prices at one cloud region.

    Attributes
    ----------
    egress_price_per_gb:
        Dollars per GB of traffic leaving the region.
    transcode_price_per_task_hour:
        Dollars per transcoding slot per hour (approximates the share of
        the VM's hourly price a task occupies).
    """

    egress_price_per_gb: float = 0.09
    transcode_price_per_task_hour: float = 0.026

    def __post_init__(self) -> None:
        if self.egress_price_per_gb < 0 or self.transcode_price_per_task_hour < 0:
            raise ModelError("prices must be non-negative")


def egress_cost_per_hour(mbps: float, price_per_gb: float) -> float:
    """Dollar cost of sustaining ``mbps`` of egress for one hour."""
    if mbps < 0:
        raise ModelError(f"traffic must be >= 0, got {mbps}")
    gb_per_hour = mbps * 1e6 * _SECONDS_PER_HOUR / _BITS_PER_GB
    return gb_per_hour * price_per_gb


def transcode_cost_per_hour(tasks: float, pricing: RegionPricing) -> float:
    """Dollar cost of running ``tasks`` concurrent transcodes for one hour."""
    if tasks < 0:
        raise ModelError(f"task count must be >= 0, got {tasks}")
    return tasks * pricing.transcode_price_per_task_hour


def dollar_cost_functions(conference) -> tuple[list, list]:
    """Per-agent ``(g_l, h_l)`` cost vectors denominated in dollars/hour.

    ``g_l`` converts the agent's inter-agent ingress Mbps into $/h using
    its region's egress price (the sender pays; we attribute it to the
    receiving agent's flow, matching ``x_ls``); ``h_l`` prices transcoding
    slots.  Plug the result into :class:`repro.core.objective.
    ObjectiveEvaluator` to optimize real money instead of raw Mbps::

        g, h = dollar_cost_functions(conference)
        evaluator = ObjectiveEvaluator(conference, weights,
                                       bandwidth_costs=g, transcode_costs=h)
    """
    from repro.core.costs import LinearCost

    bandwidth = []
    transcode = []
    for agent in conference.agents:
        per_mbps_hour = egress_cost_per_hour(1.0, agent.egress_price_per_gb)
        bandwidth.append(LinearCost(rate=per_mbps_hour))
        transcode.append(
            LinearCost(rate=RegionPricing().transcode_price_per_task_hour)
        )
    return bandwidth, transcode
