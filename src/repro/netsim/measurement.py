"""Topology-level measurement error (paper Sec. IV-A.4, the mechanism).

The provider *measures* RTTs (the paper pings once per second for five
weeks) and transcoding latencies; Alg. 1 then optimizes against the
measured values while users experience the true ones.  This module builds
the "measured" view of a conference: the same users/sessions/agents with
independently perturbed delay matrices and transcoding-latency models.

Because assignments are pure id vectors, a solution computed on the
measured conference evaluates directly on the true one — which is exactly
how the A8 ablation quantifies the cost of measurement error end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace

import numpy as np

from repro.errors import ModelError
from repro.model.agent import Agent, LinearTranscodingLatency
from repro.model.conference import Conference
from repro.model.topology import Topology


@dataclass(frozen=True)
class MeasurementErrorModel:
    """How far the measured view may drift from the truth.

    Attributes
    ----------
    delay_sigma_ms:
        Std-dev of additive Gaussian error on every D / H entry
        (independent per entry, symmetrized for D, clipped at >= 0.1 ms).
    delay_bias_ms:
        Systematic offset added to every measured delay (e.g. a probe
        stack overhead); may be negative.
    sigma_speed_error:
        Relative log-normal error on each agent's transcoding speed
        estimate (0 = exact).
    """

    delay_sigma_ms: float = 2.0
    delay_bias_ms: float = 0.0
    sigma_speed_error: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_sigma_ms < 0:
            raise ModelError("delay_sigma_ms must be >= 0")
        if self.sigma_speed_error < 0:
            raise ModelError("sigma_speed_error must be >= 0")


class _ScaledLatency:
    """A latency model divided by a constant mis-estimation factor."""

    def __init__(self, inner, factor: float):
        self._inner = inner
        self._factor = factor

    def __call__(self, source, target) -> float:
        return self._inner(source, target) / self._factor


def measured_conference(
    conference: Conference,
    model: MeasurementErrorModel,
    rng: np.random.Generator,
) -> Conference:
    """The provider's noisy view of ``conference``.

    Same ids and structure; D, H and (optionally) transcoding latencies
    perturbed per ``model``.  Deterministic for a given generator state.
    """
    d = conference.topology.inter_agent_ms.copy()
    h = conference.topology.agent_user_ms.copy()
    if model.delay_sigma_ms > 0 or model.delay_bias_ms != 0:
        noise_d = rng.normal(0.0, model.delay_sigma_ms, size=d.shape)
        noise_d = (noise_d + noise_d.T) / 2.0
        d = d + noise_d + model.delay_bias_ms
        np.fill_diagonal(d, 0.0)
        off = ~np.eye(d.shape[0], dtype=bool)
        d[off] = np.clip(d[off], 0.1, None)
        h = np.clip(
            h + rng.normal(0.0, model.delay_sigma_ms, size=h.shape)
            + model.delay_bias_ms,
            0.1,
            None,
        )

    agents: list[Agent] = list(conference.agents)
    if model.sigma_speed_error > 0:
        measured_agents = []
        for agent in agents:
            factor = float(rng.lognormal(0.0, model.sigma_speed_error))
            if isinstance(agent.latency, LinearTranscodingLatency):
                latency = dataclass_replace(
                    agent.latency, speed=agent.latency.speed * factor
                )
            else:  # wrap opaque models with a scalar correction
                latency = _ScaledLatency(agent.latency, factor)
            measured_agents.append(
                Agent(
                    aid=agent.aid,
                    upload_mbps=agent.upload_mbps,
                    download_mbps=agent.download_mbps,
                    transcode_slots=agent.transcode_slots,
                    latency=latency,
                    name=agent.name,
                    region=agent.region,
                    egress_price_per_gb=agent.egress_price_per_gb,
                )
            )
        agents = measured_agents

    return Conference(
        users=conference.users,
        sessions=conference.sessions,
        agents=agents,
        topology=Topology(d, h),
        representations=conference.representations,
        dmax_ms=conference.dmax_ms,
    )
