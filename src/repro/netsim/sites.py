"""Site catalogs: PlanetLab-like user sites and 2015-era EC2 regions.

The paper's Internet-scale experiments pick 200 users from 256 PlanetLab
nodes (heavily concentrated at North-American and European universities,
with a substantial Asian contingent) and lease agents at 7 EC2 regions.
The prototype uses 6 EC2 instances and user machines at 10 locations
(5 North America, 4 Asia, 1 Europe).

This module provides a base catalog of real cities (coordinates are
approximate city centers) plus a deterministic expansion to an arbitrary
number of sites: extra sites are jittered replicas of catalog cities, drawn
with continent weights mirroring PlanetLab's distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.netsim.geo import GeoPoint


@dataclass(frozen=True)
class UserSite:
    """A location users connect from."""

    name: str
    point: GeoPoint
    continent: str


@dataclass(frozen=True)
class CloudRegion:
    """A cloud site where an agent VM can be leased."""

    name: str
    code: str
    point: GeoPoint
    #: Egress bandwidth price in $/GB (2015-era public cloud list prices).
    egress_price_per_gb: float


def _site(name: str, lat: float, lon: float, continent: str) -> UserSite:
    return UserSite(name=name, point=GeoPoint(lat, lon), continent=continent)


#: Base catalog of user sites.  Continent mix approximates PlanetLab:
#: ~45 % North America, ~30 % Europe, ~20 % Asia, ~5 % elsewhere.
USER_SITES: tuple[UserSite, ...] = (
    # North America
    _site("Berkeley, CA", 37.87, -122.27, "NA"),
    _site("Los Angeles, CA", 34.05, -118.24, "NA"),
    _site("Seattle, WA", 47.61, -122.33, "NA"),
    _site("Salt Lake City, UT", 40.76, -111.89, "NA"),
    _site("Boulder, CO", 40.01, -105.27, "NA"),
    _site("Austin, TX", 30.27, -97.74, "NA"),
    _site("Chicago, IL", 41.88, -87.63, "NA"),
    _site("Urbana, IL", 40.11, -88.21, "NA"),
    _site("Ann Arbor, MI", 42.28, -83.74, "NA"),
    _site("Pittsburgh, PA", 40.44, -79.99, "NA"),
    _site("Princeton, NJ", 40.34, -74.66, "NA"),
    _site("Cambridge, MA", 42.37, -71.11, "NA"),
    _site("New York, NY", 40.71, -74.01, "NA"),
    _site("Washington, DC", 38.91, -77.04, "NA"),
    _site("Atlanta, GA", 33.75, -84.39, "NA"),
    _site("Gainesville, FL", 29.65, -82.32, "NA"),
    _site("Toronto, ON", 43.65, -79.38, "NA"),
    _site("Vancouver, BC", 49.28, -123.12, "NA"),
    # Europe
    _site("Cambridge, UK", 52.21, 0.12, "EU"),
    _site("London, UK", 51.51, -0.13, "EU"),
    _site("Paris, FR", 48.86, 2.35, "EU"),
    _site("Amsterdam, NL", 52.37, 4.90, "EU"),
    _site("Berlin, DE", 52.52, 13.40, "EU"),
    _site("Munich, DE", 48.14, 11.58, "EU"),
    _site("Zurich, CH", 47.38, 8.54, "EU"),
    _site("Milan, IT", 45.46, 9.19, "EU"),
    _site("Madrid, ES", 40.42, -3.70, "EU"),
    _site("Stockholm, SE", 59.33, 18.06, "EU"),
    _site("Helsinki, FI", 60.17, 24.94, "EU"),
    _site("Warsaw, PL", 52.23, 21.01, "EU"),
    # Asia
    _site("Tokyo, JP", 35.68, 139.69, "AS"),
    _site("Osaka, JP", 34.69, 135.50, "AS"),
    _site("Seoul, KR", 37.57, 126.98, "AS"),
    _site("Beijing, CN", 39.90, 116.41, "AS"),
    _site("Shanghai, CN", 31.23, 121.47, "AS"),
    _site("Shenzhen, CN", 22.54, 114.06, "AS"),
    _site("Hong Kong, HK", 22.32, 114.17, "AS"),
    _site("Taipei, TW", 25.03, 121.57, "AS"),
    _site("Singapore, SG", 1.35, 103.82, "AS"),
    _site("Bangalore, IN", 12.97, 77.59, "AS"),
    # Elsewhere
    _site("Sao Paulo, BR", -23.55, -46.63, "SA"),
    _site("Rio de Janeiro, BR", -22.91, -43.17, "SA"),
    _site("Sydney, AU", -33.87, 151.21, "OC"),
    _site("Auckland, NZ", -36.85, 174.76, "OC"),
    _site("Tehran, IR", 35.69, 51.39, "AS"),
)

#: Continent weights used when expanding the catalog (PlanetLab-like mix).
CONTINENT_WEIGHTS: dict[str, float] = {"NA": 0.45, "EU": 0.28, "AS": 0.20, "SA": 0.04, "OC": 0.03}

#: 2015-era EC2 regions (the paper's prototype uses 6, the large-scale
#: experiments 7).  Prices are 2015 list egress prices, $/GB.
CLOUD_REGIONS: tuple[CloudRegion, ...] = (
    CloudRegion("Virginia", "us-east-1", GeoPoint(38.95, -77.45), 0.090),
    CloudRegion("Oregon", "us-west-2", GeoPoint(45.92, -119.30), 0.090),
    CloudRegion("N. California", "us-west-1", GeoPoint(37.35, -121.96), 0.090),
    CloudRegion("Ireland", "eu-west-1", GeoPoint(53.35, -6.26), 0.090),
    CloudRegion("Frankfurt", "eu-central-1", GeoPoint(50.11, 8.68), 0.090),
    CloudRegion("Tokyo", "ap-northeast-1", GeoPoint(35.68, 139.69), 0.140),
    CloudRegion("Singapore", "ap-southeast-1", GeoPoint(1.35, 103.82), 0.120),
    CloudRegion("Sydney", "ap-southeast-2", GeoPoint(-33.87, 151.21), 0.140),
    CloudRegion("Sao Paulo", "sa-east-1", GeoPoint(-23.55, -46.63), 0.250),
)

_REGION_BY_NAME = {r.name: r for r in CLOUD_REGIONS}
_REGION_BY_CODE = {r.code: r for r in CLOUD_REGIONS}


def known_region_names() -> tuple[str, ...]:
    """Display names of every cloud region in the catalog (sorted)."""
    return tuple(sorted(_REGION_BY_NAME))


def known_site_names() -> tuple[str, ...]:
    """Names of every base-catalog user site (sorted)."""
    return tuple(sorted(site.name for site in USER_SITES))


def region(name_or_code: str) -> CloudRegion:
    """Look up a cloud region by display name or region code."""
    found = _REGION_BY_NAME.get(name_or_code) or _REGION_BY_CODE.get(name_or_code)
    if found is None:
        raise ModelError(
            f"unknown cloud region {name_or_code!r}; known: "
            f"{sorted(_REGION_BY_NAME)}"
        )
    return found


def sample_user_sites(count: int, rng: np.random.Generator) -> list[UserSite]:
    """Deterministically expand the catalog to ``count`` user sites.

    Sites beyond the catalog are jittered replicas (up to ~120 km away) of
    catalog cities drawn with :data:`CONTINENT_WEIGHTS`, emulating multiple
    PlanetLab nodes hosted around the same metro area.
    """
    if count <= 0:
        raise ModelError(f"count must be positive, got {count}")
    sites: list[UserSite] = list(USER_SITES[: min(count, len(USER_SITES))])
    if count <= len(USER_SITES):
        return sites[:count]

    by_continent: dict[str, list[UserSite]] = {}
    for site in USER_SITES:
        by_continent.setdefault(site.continent, []).append(site)
    continents = sorted(CONTINENT_WEIGHTS)
    weights = np.array([CONTINENT_WEIGHTS[c] for c in continents])
    weights = weights / weights.sum()

    while len(sites) < count:
        continent = continents[int(rng.choice(len(continents), p=weights))]
        base = by_continent[continent][int(rng.integers(len(by_continent[continent])))]
        dlat = float(rng.uniform(-1.0, 1.0))
        dlon = float(rng.uniform(-1.0, 1.0))
        lat = float(np.clip(base.point.latitude + dlat, -89.0, 89.0))
        lon = float(((base.point.longitude + dlon + 180.0) % 360.0) - 180.0)
        sites.append(
            UserSite(
                name=f"{base.name} #{len(sites)}",
                point=GeoPoint(lat, lon),
                continent=continent,
            )
        )
    return sites
