"""Network measurement substrate.

The paper drives its Internet-scale experiments with RTTs measured between
256 PlanetLab nodes and 7 Amazon EC2 instances over five weeks.  Those
traces are not redistributable, so this package synthesizes delay matrices
with the same structural properties (see DESIGN.md, substitution table):

* :mod:`repro.netsim.geo` — great-circle geometry;
* :mod:`repro.netsim.sites` — catalogs of user sites (PlanetLab-like,
  weighted towards North America / Europe / Asia) and cloud regions
  (2015-era EC2);
* :mod:`repro.netsim.latency` — the RTT synthesis model: propagation at
  2/3 c over an inflated great-circle route, plus last-mile penalties and
  jitter, deterministic under a seed;
* :mod:`repro.netsim.noise` — measurement-perturbation models matching the
  quantized error model of Theorem 1;
* :mod:`repro.netsim.measurement` — the provider's *measured* view of a
  conference (perturbed D/H and transcoding speeds), for optimizing
  against measurements while scoring against the truth (ablation A8);
* :mod:`repro.netsim.pricing` — per-region egress pricing, to express the
  bandwidth cost G(x) in dollars.
"""

from repro.netsim.geo import GeoPoint, great_circle_km
from repro.netsim.latency import (
    LatencyModel,
    LatencySample,
    clear_substrate_cache,
    substrate_cache_stats,
    substrate_matrices,
)
from repro.netsim.measurement import MeasurementErrorModel, measured_conference
from repro.netsim.noise import GaussianNoise, NoiseModel, NoNoise, QuantizedPerturbation
from repro.netsim.pricing import RegionPricing, dollar_cost_functions, egress_cost_per_hour
from repro.netsim.sites import (
    CLOUD_REGIONS,
    USER_SITES,
    CloudRegion,
    UserSite,
    known_region_names,
    known_site_names,
)

__all__ = [
    "CLOUD_REGIONS",
    "CloudRegion",
    "GaussianNoise",
    "GeoPoint",
    "LatencyModel",
    "LatencySample",
    "MeasurementErrorModel",
    "NoNoise",
    "NoiseModel",
    "QuantizedPerturbation",
    "RegionPricing",
    "USER_SITES",
    "UserSite",
    "clear_substrate_cache",
    "dollar_cost_functions",
    "egress_cost_per_hour",
    "great_circle_km",
    "known_region_names",
    "known_site_names",
    "measured_conference",
    "substrate_cache_stats",
    "substrate_matrices",
]
