"""Synthetic one-way delay matrices (substitute for PlanetLab/EC2 traces).

The model, per path ``a -> b``:

``delay_ms = distance_km / (2/3 c) * inflation(a, b) + lastmile(a) + lastmile(b)``

* Propagation runs at two-thirds of the speed of light (silica fiber).
* ``inflation`` is a deterministic, pair-specific factor >= 1 drawn
  log-normally around 1.6 — real Internet routes detour around oceans and
  exchange points; trans-continental paths inflate less (they follow
  near-great-circle submarine cables) than short regional paths.
* ``lastmile`` adds a per-endpoint access penalty: small for cloud regions
  (well-peered data centers), larger and more variable for user sites.

The resulting matrices reproduce the properties the algorithms care about:
regional clustering, 10–300 ms magnitudes, symmetric D with zero diagonal,
and user sites that are close to one agent yet far from the session's other
members (the situation that makes nearest-assignment suboptimal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.telemetry as tele
from repro.errors import ModelError
from repro.netsim.geo import GeoPoint, great_circle_km
from repro.netsim.sites import CloudRegion, UserSite

#: Propagation speed in fiber, km per ms (2/3 of c).
FIBER_KM_PER_MS = 199.86


@dataclass(frozen=True)
class LatencySample:
    """One synthesized path delay and its components (for inspection)."""

    distance_km: float
    propagation_ms: float
    inflation: float
    lastmile_ms: float

    @property
    def one_way_ms(self) -> float:
        return self.propagation_ms * self.inflation + self.lastmile_ms


class LatencyModel:
    """Deterministic synthetic latency generator.

    Parameters
    ----------
    seed:
        Seed for the internal generator; the same seed always produces the
        same matrices for the same site lists.
    mean_inflation:
        Median of the log-normal route-inflation factor.
    inflation_sigma:
        Log-space standard deviation of the inflation factor.
    user_lastmile_ms:
        ``(low, high)`` uniform range of the per-user access penalty.
    agent_lastmile_ms:
        ``(low, high)`` uniform range of the per-region access penalty.
    min_floor_ms:
        Lower bound applied to every off-diagonal delay (even co-located
        endpoints traverse a metro network).
    """

    def __init__(
        self,
        seed: int = 0,
        mean_inflation: float = 1.6,
        inflation_sigma: float = 0.18,
        user_lastmile_ms: tuple[float, float] = (2.0, 12.0),
        agent_lastmile_ms: tuple[float, float] = (0.3, 1.5),
        min_floor_ms: float = 0.5,
    ):
        if mean_inflation < 1.0:
            raise ModelError(f"route inflation must be >= 1, got {mean_inflation}")
        if inflation_sigma < 0:
            raise ModelError("inflation_sigma must be >= 0")
        self._seed = seed
        self._mean_inflation = mean_inflation
        self._inflation_sigma = inflation_sigma
        self._user_lastmile = user_lastmile_ms
        self._agent_lastmile = agent_lastmile_ms
        self._min_floor = min_floor_ms

    # ------------------------------------------------------------------ #
    # Internals                                                          #
    # ------------------------------------------------------------------ #

    def _pair_rng(self, tag: int, i: int, j: int) -> np.random.Generator:
        """A generator keyed on the unordered pair, so D is symmetric."""
        lo, hi = (i, j) if i <= j else (j, i)
        return np.random.default_rng((self._seed, tag, lo, hi))

    def _inflation(self, tag: int, i: int, j: int, distance_km: float) -> float:
        rng = self._pair_rng(tag, i, j)
        draw = float(rng.lognormal(mean=np.log(self._mean_inflation), sigma=self._inflation_sigma))
        # Long submarine paths hew closer to great circles; short hops detour more.
        if distance_km > 6000.0:
            draw = 1.0 + (draw - 1.0) * 0.75
        elif distance_km < 500.0:
            draw = 1.0 + (draw - 1.0) * 1.5
        return max(1.0, draw)

    def _lastmile(self, tag: int, index: int, bounds: tuple[float, float]) -> float:
        rng = np.random.default_rng((self._seed, tag, index))
        return float(rng.uniform(*bounds))

    def sample_path(
        self,
        a: GeoPoint,
        b: GeoPoint,
        tag: int,
        i: int,
        j: int,
        lastmile_ms: float,
    ) -> LatencySample:
        """Synthesize one path; exposed for tests and inspection."""
        distance = great_circle_km(a, b)
        propagation = distance / FIBER_KM_PER_MS
        inflation = self._inflation(tag, i, j, distance)
        return LatencySample(
            distance_km=distance,
            propagation_ms=propagation,
            inflation=inflation,
            lastmile_ms=lastmile_ms,
        )

    # ------------------------------------------------------------------ #
    # Matrix synthesis                                                   #
    # ------------------------------------------------------------------ #

    def inter_agent_matrix(self, regions: list[CloudRegion]) -> np.ndarray:
        """The L x L one-way delay matrix D (symmetric, zero diagonal)."""
        count = len(regions)
        matrix = np.zeros((count, count), dtype=float)
        for i in range(count):
            for j in range(i + 1, count):
                lastmile = self._lastmile(10, i, self._agent_lastmile) + self._lastmile(
                    10, j, self._agent_lastmile
                )
                sample = self.sample_path(
                    regions[i].point, regions[j].point, tag=1, i=i, j=j, lastmile_ms=lastmile
                )
                matrix[i, j] = matrix[j, i] = max(self._min_floor, sample.one_way_ms)
        return matrix

    def agent_user_matrix(
        self, regions: list[CloudRegion], sites: list[UserSite]
    ) -> np.ndarray:
        """The L x U one-way delay matrix H."""
        matrix = np.zeros((len(regions), len(sites)), dtype=float)
        for l, reg in enumerate(regions):
            agent_tail = self._lastmile(10, l, self._agent_lastmile)
            for u, site in enumerate(sites):
                user_tail = self._lastmile(11, u, self._user_lastmile)
                sample = self.sample_path(
                    reg.point, site.point, tag=2, i=l, j=len(regions) + u,
                    lastmile_ms=agent_tail + user_tail,
                )
                matrix[l, u] = max(self._min_floor, sample.one_way_ms)
        return matrix

    def matrices(
        self, regions: list[CloudRegion], sites: list[UserSite]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: ``(D, H)`` for the given regions and user sites."""
        return self.inter_agent_matrix(regions), self.agent_user_matrix(regions, sites)

    def cache_key(
        self, regions: list[CloudRegion], sites: list[UserSite]
    ) -> tuple:
        """Identity of the substrate this model would synthesize.

        Two models with equal keys produce bit-identical ``(D, H)``
        matrices: synthesis is a pure function of the model parameters
        (seed included) and the ordered region / site lists.
        """
        return (
            self._seed,
            self._mean_inflation,
            self._inflation_sigma,
            tuple(self._user_lastmile),
            tuple(self._agent_lastmile),
            self._min_floor,
            tuple(regions),
            tuple(sites),
        )


# --------------------------------------------------------------------- #
# Shared-substrate cache (ROADMAP "Shared-substrate caching")            #
# --------------------------------------------------------------------- #
#
# Fleet sweeps re-compile a scenario per grid point; whenever only solver
# or simulation knobs vary, the latency substrate — the expensive part of
# compilation — is identical across points.  This process-local memo
# returns the same (read-only) matrices for the same (model, regions,
# sites) identity, so a sweep synthesizes each distinct substrate once.

_SUBSTRATE_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_SUBSTRATE_CACHE_LIMIT = 32
_SUBSTRATE_STATS = {"builds": 0, "hits": 0}


def substrate_matrices(
    model: LatencyModel, regions: list[CloudRegion], sites: list[UserSite]
) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``(D, H)`` synthesis.

    Cache hits return the *same* array objects, marked read-only so a
    consumer cannot corrupt another run's substrate (the model/topology
    layer copies on ingest anyway).  Keyed by the full model parameter
    set plus the ordered region and site identities, so distinct latency
    seeds or site draws never share.

    Eviction is LRU: a hit re-inserts its entry at the back of the
    (insertion-ordered) dict, so eviction removes the least-recently
    *used* substrate.  Without the promotion this degraded to FIFO, and
    a sweep cycling through just over :data:`_SUBSTRATE_CACHE_LIMIT`
    substrates would evict its hottest entry and rebuild every point.
    """
    key = model.cache_key(regions, sites)
    cached = _SUBSTRATE_CACHE.pop(key, None)
    if cached is not None:
        _SUBSTRATE_CACHE[key] = cached
        _SUBSTRATE_STATS["hits"] += 1
        tele.count("substrate.cache_hits")
        return cached
    inter_agent = model.inter_agent_matrix(regions)
    agent_user = model.agent_user_matrix(regions, sites)
    inter_agent.setflags(write=False)
    agent_user.setflags(write=False)
    _SUBSTRATE_STATS["builds"] += 1
    tele.count("substrate.cache_misses")
    _SUBSTRATE_CACHE[key] = (inter_agent, agent_user)
    if len(_SUBSTRATE_CACHE) > _SUBSTRATE_CACHE_LIMIT:
        # Evict the oldest entry (dicts preserve insertion order).
        del _SUBSTRATE_CACHE[next(iter(_SUBSTRATE_CACHE))]
    return inter_agent, agent_user


def substrate_cache_stats() -> dict[str, int]:
    """``{"builds": ..., "hits": ..., "entries": ...}`` counters of the
    process-local substrate cache (for tests and fleet reporting)."""
    return {**_SUBSTRATE_STATS, "entries": len(_SUBSTRATE_CACHE)}


def clear_substrate_cache() -> None:
    """Drop all cached substrates and reset the counters."""
    _SUBSTRATE_CACHE.clear()
    _SUBSTRATE_STATS["builds"] = 0
    _SUBSTRATE_STATS["hits"] = 0
