"""Measurement-noise models (paper Sec. IV-A.4, Theorem 1).

Alg. 1 evaluates the objective from *measured* delays and transcoding
latencies, so its hop decisions see a perturbed objective.  Theorem 1 bounds
the resulting optimality gap under a quantized error model: the perturbed
objective of configuration ``f`` takes values ``Phi_f + (j/n_f) * Delta_f``
for ``j in [-n_f, n_f]`` with probabilities ``eta_{j,f}``.

This module provides that model (for the theory experiments) plus simple
continuous noise for the runtime simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ModelError


@runtime_checkable
class NoiseModel(Protocol):
    """Perturbs an objective value; must be mean-preserving-ish and bounded
    for the Theorem 1 analysis to apply."""

    def perturb(self, value: float, rng: np.random.Generator) -> float:
        """Return the perturbed observation of ``value``."""
        ...


@dataclass(frozen=True)
class NoNoise:
    """Identity noise (exact measurements)."""

    def perturb(self, value: float, rng: np.random.Generator) -> float:
        return value


@dataclass(frozen=True)
class GaussianNoise:
    """Zero-mean Gaussian observation noise, truncated to ±``bound``.

    A pragmatic stand-in for ping jitter.  ``bound`` makes it compatible
    with the Delta_max term of Eq. (13).
    """

    sigma: float
    bound: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ModelError("sigma must be >= 0")
        bound = self.bound if self.bound > 0 else 3.0 * self.sigma
        object.__setattr__(self, "bound", bound)

    def perturb(self, value: float, rng: np.random.Generator) -> float:
        draw = float(rng.normal(0.0, self.sigma)) if self.sigma > 0 else 0.0
        return value + float(np.clip(draw, -self.bound, self.bound))


@dataclass(frozen=True)
class QuantizedPerturbation:
    """Theorem 1's exact error model.

    The observation of ``Phi_f`` is ``Phi_f + (j / n) * delta`` where ``j``
    is drawn from ``{-n, ..., n}`` with probabilities ``eta`` (uniform by
    default).  ``delta`` is the per-configuration error bound ``Delta_f``.

    Attributes
    ----------
    delta:
        The error bound Delta_f.
    levels:
        The constant ``n_f`` (number of quantization levels per side).
    eta:
        Optional probability vector of length ``2 * levels + 1`` over
        ``j = -n..n``; uniform when omitted.
    """

    delta: float
    levels: int = 4
    eta: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ModelError("delta must be >= 0")
        if self.levels < 1:
            raise ModelError("levels must be >= 1")
        size = 2 * self.levels + 1
        if self.eta:
            if len(self.eta) != size:
                raise ModelError(f"eta must have {size} entries, got {len(self.eta)}")
            total = float(sum(self.eta))
            if not np.isclose(total, 1.0):
                raise ModelError(f"eta must sum to 1, sums to {total}")
            if any(p < 0 for p in self.eta):
                raise ModelError("eta entries must be non-negative")
        else:
            object.__setattr__(self, "eta", tuple([1.0 / size] * size))

    @property
    def offsets(self) -> np.ndarray:
        """The support ``(j / n) * delta`` for ``j = -n..n``."""
        j = np.arange(-self.levels, self.levels + 1, dtype=float)
        return j / self.levels * self.delta

    def perturb(self, value: float, rng: np.random.Generator) -> float:
        offsets = self.offsets
        idx = int(rng.choice(len(offsets), p=np.asarray(self.eta)))
        return value + float(offsets[idx])

    def delta_factor(self, beta: float) -> float:
        """Theorem 1's ``delta_f = sum_j eta_j * exp(beta * j * Delta / n)``.

        Computed in the log domain for numerical safety at large beta.
        """
        log_terms = np.log(np.asarray(self.eta)) + beta * self.offsets
        peak = float(np.max(log_terms))
        return float(np.exp(peak) * np.sum(np.exp(log_terms - peak)))
