"""Great-circle geometry for the latency substrate."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError

#: Mean Earth radius in kilometres.
EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees)."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ModelError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ModelError(f"longitude out of range: {self.longitude}")


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Haversine great-circle distance between two points, in km."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))
