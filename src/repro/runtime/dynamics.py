"""Session arrival/departure schedules (paper Fig. 5).

A :class:`DynamicsSchedule` lists which sessions are active at t=0 and the
timed arrival/departure/resize events.  The Fig. 5 scenario — 6 sessions
at t=0, 4 arriving at t=40 s, 3 departing at t=80 s — has a ready-made
factory; arbitrary churn traces come in through
:mod:`repro.runtime.traces`.

Events sharing a timestamp execute in one canonical order — arrivals,
then resizes, then departures, each group stable by session id — so two
schedules describing the same event *set* are the same schedule, however
their event tuples were assembled.  (Before this rule, ordering at a
shared ``time_s`` silently followed construction order: a departure
listed ahead of an arrival at the same instant validated — or failed —
differently from the reverse listing.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class SessionArrival:
    """Session ``sid`` starts at ``time_s`` and must be bootstrapped."""

    time_s: float
    sid: int


@dataclass(frozen=True)
class SessionDeparture:
    """Session ``sid`` terminates at ``time_s``; its resources free up."""

    time_s: float
    sid: int


@dataclass(frozen=True)
class SessionResize:
    """Session ``sid`` renegotiates its placement at ``time_s``.

    Conference rosters are fixed per sid in this model, so a membership
    change is represented by re-admitting the session against the
    current residual capacities (the runtime re-runs its arrival
    bootstrap); the session stays active throughout.
    """

    time_s: float
    sid: int


DynamicsEvent = SessionArrival | SessionDeparture | SessionResize

#: Canonical execution rank of events sharing a timestamp: arrivals make
#: room semantics unambiguous (a sid may depart and be replaced at the
#: same instant without ever emptying the conference), resizes act on a
#: live roster, departures go last.
_EVENT_RANK: dict[type, int] = {
    SessionArrival: 0,
    SessionResize: 1,
    SessionDeparture: 2,
}


def canonical_event_order(events: Sequence[DynamicsEvent]) -> tuple[DynamicsEvent, ...]:
    """Sort events by ``(time_s, kind rank, sid)`` — the deterministic
    intra-timestamp order every schedule and trace player uses."""
    return tuple(
        sorted(events, key=lambda e: (e.time_s, _EVENT_RANK[type(e)], e.sid))
    )


@dataclass(frozen=True)
class DynamicsSchedule:
    """Initial active set plus timed arrival/departure/resize events."""

    initial_sids: tuple[int, ...]
    events: tuple[DynamicsEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", canonical_event_order(self.events))
        active = set(self.initial_sids)
        if len(active) != len(self.initial_sids):
            raise SimulationError("duplicate initial sessions")
        for event in self.events:
            if event.time_s < 0:
                raise SimulationError(f"negative event time {event.time_s}")
            if isinstance(event, SessionArrival):
                if event.sid in active:
                    raise SimulationError(f"session {event.sid} arrives twice")
                active.add(event.sid)
            elif isinstance(event, SessionResize):
                if event.sid not in active:
                    raise SimulationError(
                        f"session {event.sid} resizes while inactive"
                    )
            else:
                if event.sid not in active:
                    raise SimulationError(
                        f"session {event.sid} departs while inactive"
                    )
                active.remove(event.sid)

    @classmethod
    def static(cls, sids: Sequence[int]) -> "DynamicsSchedule":
        """All sessions active for the whole run (Figs. 4, 6, 7)."""
        return cls(initial_sids=tuple(sids))

    @classmethod
    def churn(
        cls,
        num_sessions: int,
        initial: int,
        waves: Sequence[tuple[float, int, int]],
    ) -> "DynamicsSchedule":
        """General churn plan: ``initial`` sessions start at t=0 and timed
        ``(time_s, arrivals, departures)`` waves mutate the active set.

        Arrivals draw fresh session ids from the reserve pool
        ``[initial, num_sessions)`` in order; departures retire the
        longest-running active session (FIFO), never emptying the
        conference.  Within one wave (and across waves sharing a
        timestamp) arrivals land before departures — the canonical
        intra-timestamp order.  Used by the fleet compiler's churn specs.
        """
        if not 1 <= initial <= num_sessions:
            raise SimulationError(
                f"initial must be in [1, {num_sessions}], got {initial}"
            )
        pending = list(range(initial, num_sessions))
        active = list(range(initial))
        events: list[DynamicsEvent] = []
        for time_s, arrivals, departures in sorted(waves, key=lambda w: w[0]):
            if arrivals < 0 or departures < 0:
                raise SimulationError("wave arrivals/departures must be >= 0")
            for _ in range(arrivals):
                if not pending:
                    raise SimulationError(
                        f"churn plan needs more than {num_sessions} sessions "
                        "to serve all arrivals"
                    )
                sid = pending.pop(0)
                events.append(SessionArrival(time_s, sid))
                active.append(sid)
            for _ in range(departures):
                if len(active) <= 1:
                    raise SimulationError(
                        "churn plan would depart the last active session"
                    )
                events.append(SessionDeparture(time_s, active.pop(0)))
        return cls(initial_sids=tuple(range(initial)), events=tuple(events))

    @classmethod
    def fig5(
        cls,
        initial_sids: Sequence[int],
        arriving_sids: Sequence[int],
        departing_sids: Sequence[int],
        arrival_time_s: float = 40.0,
        departure_time_s: float = 80.0,
    ) -> "DynamicsSchedule":
        """The paper's dynamic scenario: arrivals at t=40 s, departures at
        t=80 s (departing sessions must be active by then)."""
        events: list[DynamicsEvent] = [
            SessionArrival(arrival_time_s, sid) for sid in arriving_sids
        ]
        events.extend(SessionDeparture(departure_time_s, sid) for sid in departing_sids)
        return cls(initial_sids=tuple(initial_sids), events=tuple(events))
