"""Session arrival/departure schedules (paper Fig. 5).

A :class:`DynamicsSchedule` lists which sessions are active at t=0 and the
timed arrival/departure events.  The Fig. 5 scenario — 6 sessions at t=0,
4 arriving at t=40 s, 3 departing at t=80 s — has a ready-made factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class SessionArrival:
    """Session ``sid`` starts at ``time_s`` and must be bootstrapped."""

    time_s: float
    sid: int


@dataclass(frozen=True)
class SessionDeparture:
    """Session ``sid`` terminates at ``time_s``; its resources free up."""

    time_s: float
    sid: int


@dataclass(frozen=True)
class DynamicsSchedule:
    """Initial active set plus timed arrivals/departures."""

    initial_sids: tuple[int, ...]
    events: tuple[SessionArrival | SessionDeparture, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.time_s))
        )
        active = set(self.initial_sids)
        if len(active) != len(self.initial_sids):
            raise SimulationError("duplicate initial sessions")
        for event in self.events:
            if event.time_s < 0:
                raise SimulationError(f"negative event time {event.time_s}")
            if isinstance(event, SessionArrival):
                if event.sid in active:
                    raise SimulationError(f"session {event.sid} arrives twice")
                active.add(event.sid)
            else:
                if event.sid not in active:
                    raise SimulationError(
                        f"session {event.sid} departs while inactive"
                    )
                active.remove(event.sid)

    @classmethod
    def static(cls, sids: Sequence[int]) -> "DynamicsSchedule":
        """All sessions active for the whole run (Figs. 4, 6, 7)."""
        return cls(initial_sids=tuple(sids))

    @classmethod
    def churn(
        cls,
        num_sessions: int,
        initial: int,
        waves: Sequence[tuple[float, int, int]],
    ) -> "DynamicsSchedule":
        """General churn plan: ``initial`` sessions start at t=0 and timed
        ``(time_s, arrivals, departures)`` waves mutate the active set.

        Arrivals draw fresh session ids from the reserve pool
        ``[initial, num_sessions)`` in order; departures retire the
        longest-running active session (FIFO), never emptying the
        conference.  Used by the fleet compiler's churn specs.
        """
        if not 1 <= initial <= num_sessions:
            raise SimulationError(
                f"initial must be in [1, {num_sessions}], got {initial}"
            )
        pending = list(range(initial, num_sessions))
        active = list(range(initial))
        events: list[SessionArrival | SessionDeparture] = []
        for time_s, arrivals, departures in sorted(waves, key=lambda w: w[0]):
            if arrivals < 0 or departures < 0:
                raise SimulationError("wave arrivals/departures must be >= 0")
            for _ in range(arrivals):
                if not pending:
                    raise SimulationError(
                        f"churn plan needs more than {num_sessions} sessions "
                        "to serve all arrivals"
                    )
                sid = pending.pop(0)
                events.append(SessionArrival(time_s, sid))
                active.append(sid)
            for _ in range(departures):
                if len(active) <= 1:
                    raise SimulationError(
                        "churn plan would depart the last active session"
                    )
                events.append(SessionDeparture(time_s, active.pop(0)))
        return cls(initial_sids=tuple(range(initial)), events=tuple(events))

    @classmethod
    def fig5(
        cls,
        initial_sids: Sequence[int],
        arriving_sids: Sequence[int],
        departing_sids: Sequence[int],
        arrival_time_s: float = 40.0,
        departure_time_s: float = 80.0,
    ) -> "DynamicsSchedule":
        """The paper's dynamic scenario: arrivals at t=40 s, departures at
        t=80 s (departing sessions must be active by then)."""
        events: list[SessionArrival | SessionDeparture] = [
            SessionArrival(arrival_time_s, sid) for sid in arriving_sids
        ]
        events.extend(SessionDeparture(departure_time_s, sid) for sid in departing_sids)
        return cls(initial_sids=tuple(initial_sids), events=tuple(events))
