"""Migration overhead model (paper Sec. V-A.1).

When Alg. 1 migrates a user to a new agent, tearing the old path down
instantly would freeze 2-3 frames at 30 fps for the other participants.
The prototype avoids that by *dual-feeding*: the migrated client streams to
both the old and the new agent for a short overlap (under 30 ms on
average), at the price of redundant upstream traffic — about 13.2 kb for a
240p stream, "negligible compared to the traffic reduction after
migration".  Transcoding-task migrations use segment boundaries
(segmentation-based transcoding) and carry no user-visible interruption.

This module prices each migration so the runtime can report cumulative
overhead next to the savings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import Assignment
from repro.core.neighborhood import Move
from repro.errors import ModelError
from repro.model.conference import Conference


@dataclass(frozen=True)
class MigrationRecord:
    """One executed migration with its overhead accounting."""

    time_s: float
    sid: int
    description: str
    kind: str
    overhead_kb: float
    interrupted: bool


class MigrationModel:
    """Prices migrations under the dual-feed scheme.

    Parameters
    ----------
    overlap_ms:
        Dual-feed duration; the paper reports < 30 ms on average.
    dual_feed:
        When False, migrations tear down the old path immediately —
        no overhead, but the migration is marked as interrupting (the
        frozen-frames case the paper describes and avoids).
    """

    def __init__(self, overlap_ms: float = 30.0, dual_feed: bool = True):
        if overlap_ms < 0:
            raise ModelError(f"overlap must be >= 0 ms, got {overlap_ms}")
        self._overlap_ms = overlap_ms
        self._dual_feed = dual_feed

    @property
    def overlap_ms(self) -> float:
        return self._overlap_ms

    def price(
        self,
        conference: Conference,
        assignment: Assignment,
        move: Move,
        sid: int,
        time_s: float,
    ) -> MigrationRecord:
        """The overhead record for applying ``move`` at ``time_s``.

        User moves dual-feed the user's upstream; task moves overlap the
        transcoded output for one segment boundary.
        """
        if move.kind == "user":
            bitrate = conference.user(move.index).upstream.bitrate_mbps
        else:
            source, destination = conference.transcode_pairs[move.index]
            bitrate = conference.demanded_representation(
                source, destination
            ).bitrate_mbps
        overhead_kb = (
            bitrate * 1000.0 * (self._overlap_ms / 1000.0) if self._dual_feed else 0.0
        )
        return MigrationRecord(
            time_s=time_s,
            sid=sid,
            description=move.describe(conference),
            kind=move.kind,
            overhead_kb=overhead_kb,
            interrupted=not self._dual_feed and move.kind == "user",
        )
