"""The live-conference placement engine (one code path, two frontends).

:class:`LiveConference` owns what used to live inline in the
simulator's event handlers: a :class:`~repro.core.markov.
MarkovAssignmentSolver` wrapped around the mutable
:class:`~repro.core.search.SearchContext` (assignment, capacity ledger,
per-session cost cache, ``PhiArray``), plus the arrival-placement
policy.  Session dynamics — ``arrive`` / ``depart`` / ``resize`` — are
*incremental*: they splice one session in or out of the live search
state and never rebuild it from scratch, so the same engine backs both
the event-driven :class:`~repro.runtime.simulation.
ConferencingSimulator` and the long-lived ``repro.service`` placement
service.  A trace played through either frontend must land on
bit-identical search state (``tests/test_runtime_live.py`` and
``tests/test_service.py`` pin this).

Division of labour: the engine decides *where sessions go*; frontends
own time (wake scheduling, freezes, migration pricing, sampling, fault
windows are simulator concerns; latency budgets and request validation
are service concerns).  Fault boundaries funnel through
:meth:`LiveConference.swap_evaluator`, which re-seats the solver on a
substrate view while carrying hop counters and the rng object across
the swap.
"""

from __future__ import annotations

import numpy as np

from repro.core.agrank import AgRankConfig, agrank_assignment
from repro.core.assignment import Assignment
from repro.core.bootstrap import bootstrap_assignment
from repro.core.markov import MarkovAssignmentSolver, MarkovConfig
from repro.core.nearest import nearest_assignment
from repro.core.objective import ObjectiveEvaluator
from repro.core.search import SearchContext
from repro.errors import InfeasibleError
from repro.model.conference import Conference
from repro.netsim.noise import NoiseModel


class LiveConference:
    """A live placement: incremental session dynamics over warm state.

    Parameters
    ----------
    evaluator:
        Objective evaluator fixing the conference and cost scales.
    initial_assignment:
        Feasible assignment covering ``active_sids``.
    active_sids:
        The initially active sessions.
    markov:
        HOP configuration (beta, hop rule, kernel) for the wrapped
        solver.
    initial_policy / agrank:
        The arrival-placement policy: ``"nearest"`` or ``"agrank"``
        (with its config), evaluated against the *live* residual
        capacities.
    noise / rng:
        Observation noise and the generator shared with the frontend —
        the engine never creates its own stream, so simulator wake
        draws and solver hop draws stay interleaved exactly as before
        the extraction.
    """

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        initial_assignment: Assignment,
        active_sids: list[int],
        markov: MarkovConfig | None = None,
        initial_policy: str = "nearest",
        agrank: AgRankConfig | None = None,
        noise: NoiseModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self._markov = markov if markov is not None else MarkovConfig()
        self._policy = initial_policy
        self._agrank = agrank
        self._noise = noise
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._evaluator = evaluator
        self._conference: Conference = evaluator.conference
        self._carried_hops = 0
        self._solver = MarkovAssignmentSolver(
            evaluator,
            initial_assignment,
            config=self._markov,
            active_sids=active_sids,
            noise=noise,
            rng=self._rng,
        )

    @classmethod
    def bootstrap(
        cls,
        evaluator: ObjectiveEvaluator,
        sids: list[int],
        markov: MarkovConfig | None = None,
        initial_policy: str = "nearest",
        agrank: AgRankConfig | None = None,
        noise: NoiseModel | None = None,
        rng: np.random.Generator | None = None,
        initial_assignment: Assignment | None = None,
    ) -> "LiveConference":
        """Build the engine from a cold start.

        Admission checks capacities only (``check_delay=False``): the
        hop filter enforces the delay cap from the first migration
        onwards — the exact contract of the simulator's initial
        bootstrap, so both frontends start from the same assignment.
        """
        if initial_assignment is None:
            initial_assignment = bootstrap_assignment(
                evaluator.conference,
                policy=initial_policy,
                config=agrank,
                sids=list(sids),
                check_delay=False,
            )
        return cls(
            evaluator,
            initial_assignment,
            active_sids=list(sids),
            markov=markov,
            initial_policy=initial_policy,
            agrank=agrank,
            noise=noise,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # State access                                                       #
    # ------------------------------------------------------------------ #

    @property
    def solver(self) -> MarkovAssignmentSolver:
        return self._solver

    @property
    def context(self) -> SearchContext:
        return self._solver.context

    @property
    def assignment(self) -> Assignment:
        return self._solver.assignment

    @property
    def conference(self) -> Conference:
        """The conference currently placed against (a substrate view
        while faults are active)."""
        return self._conference

    @property
    def evaluator(self) -> ObjectiveEvaluator:
        return self._evaluator

    @property
    def active_sessions(self) -> list[int]:
        return self._solver.context.active_sessions

    @property
    def hops(self) -> int:
        """Executed HOP transitions, accumulated across evaluator swaps."""
        return self._carried_hops + self._solver.hops

    def total_phi(self) -> float:
        return self._solver.total_phi()

    # ------------------------------------------------------------------ #
    # Incremental session dynamics                                       #
    # ------------------------------------------------------------------ #

    def placement_for(self, sid: int) -> Assignment:
        """Place one session against the live residual capacities.

        Raises :class:`~repro.errors.InfeasibleError` when no placement
        fits — the caller decides whether that is fatal (simulator) or
        a structured rejection / from-scratch fallback (service).
        """
        base = self._solver.assignment
        if self._policy == "nearest":
            return nearest_assignment(self._conference, [sid], base=base)
        return agrank_assignment(
            self._conference,
            sid,
            ledger=self._solver.context.ledger,
            config=self._agrank,
            base=base,
        )

    def arrive(self, sid: int) -> Assignment:
        """Admit a session: place it incrementally and splice it into
        the live search state.  Returns the merged assignment."""
        self._solver.context.add_session(sid, self.placement_for(sid))
        return self._solver.assignment

    def depart(self, sid: int) -> None:
        """Remove a session and release its capacity."""
        self._solver.context.remove_session(sid)

    def resize(self, sid: int) -> Assignment:
        """Re-admit a live session against the current residuals (a
        placement renegotiation).  On an infeasible re-placement the
        session's previous placement is restored before the error
        propagates, so the live state is never left torn.
        """
        context = self._solver.context
        before = self._solver.assignment
        context.remove_session(sid)
        try:
            context.add_session(sid, self.placement_for(sid))
        except InfeasibleError:
            context.add_session(sid, before)
            raise
        return self._solver.assignment

    def hop(self, sid: int):
        """One Alg. 1 HOP attempt for ``sid`` (simulator wake path)."""
        return self._solver.session_hop(sid)

    def refine(self, sid: int, max_hops: int) -> int:
        """Greedy incremental re-solve of one session's move set: commit
        up to ``max_hops`` strictly-improving best moves (deterministic,
        rng-free — the service's post-splice polish)."""
        if max_hops <= 0:
            return 0
        hops = self._solver.context.greedy_refine(sid, max_hops)
        return hops

    # ------------------------------------------------------------------ #
    # Whole-placement operations                                         #
    # ------------------------------------------------------------------ #

    def resolve_from_scratch(self, extra_sid: int | None = None) -> Assignment:
        """Re-place every active session from a cold ledger (optionally
        admitting ``extra_sid`` as part of the solve).

        The from-scratch assignment is computed *before* any live state
        is touched, so an :class:`~repro.errors.InfeasibleError` leaves
        the engine exactly as it was — the service's fallback can fail
        into a structured rejection without corrupting the placement.
        """
        sids = self._solver.context.active_sessions
        if extra_sid is not None:
            sids = sorted(sids + [extra_sid])
        assignment = bootstrap_assignment(
            self._conference,
            policy=self._policy,
            config=self._agrank,
            sids=sids,
            check_delay=False,
        )
        self._carried_hops += self._solver.hops
        self._solver = MarkovAssignmentSolver(
            self._evaluator,
            assignment,
            config=self._markov,
            active_sids=sids,
            noise=self._noise,
            rng=self._rng,
        )
        return assignment

    def swap_evaluator(self, evaluator: ObjectiveEvaluator) -> None:
        """Re-seat the solver on a new evaluator (fault boundaries).

        The assignment and active set carry over unchanged, hop
        counters accumulate across the swap, and the rng object is
        reused so the frontend's draw sequence is untouched.
        """
        self._carried_hops += self._solver.hops
        active = self._solver.context.active_sessions
        assignment = self._solver.assignment
        self._evaluator = evaluator
        self._conference = evaluator.conference
        self._solver = MarkovAssignmentSolver(
            evaluator,
            assignment,
            config=self._markov,
            active_sids=active,
            noise=self._noise,
            rng=self._rng,
        )
