"""Timed-window fault injection (the resilience layer).

The paper's dynamics (Sec. V, Fig. 5) cover *session* churn only; this
module adds *infrastructure* churn: site outages, capacity degradation
and latency spikes, each active over a ``[start_s, end_s)`` window.
Faults are declared explicitly (:class:`Fault` windows) or drawn from a
seeded random chaos generator (:meth:`FaultSchedule.chaos`), and the
simulator injects them through the shared :class:`~repro.runtime.events.
EventQueue` with a pinned tie order — fault transitions carry priority
``-1``, so at a shared instant they apply before session dynamics
(priority 0) and before samples/wakes (priority 1).

A fault never mutates the pristine conference: :func:`apply_faults`
builds a *substrate view* — copied ``(D, H)`` matrices and replaced
agents — so the read-only arrays served by
:func:`repro.netsim.latency.substrate_matrices` are never written (an
accidental in-place mutation would raise on the write-protected cache
arrays).  An outaged site keeps its dense agent id (the model requires
``0..L-1``) and is masked instead: every path through it costs
:data:`OUTAGE_DELAY_MS`, which the delay cap of constraint (8) turns
into infeasibility for every candidate placement.

Determinism: the chaos generator draws from a stream-tagged generator
(``default_rng([seed, _FAULT_STREAM_TAG])``), so fault times never
alias the simulator's wake draws or the trace generator's arrival
draws; schedules are canonically ordered, so declaration order never
changes a trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.model.conference import Conference
from repro.model.topology import Topology

__all__ = [
    "FAULT_KINDS",
    "FAULT_POLICIES",
    "OUTAGE_DELAY_MS",
    "Fault",
    "FaultSchedule",
    "all_sites_outaged_window",
    "apply_faults",
    "outaged_sites",
    "stranded_sessions",
]

#: Fault kinds, in canonical ordering rank (outage dominates).
FAULT_KINDS: tuple[str, ...] = ("outage", "capacity", "latency")

#: Recovery policies for sessions stranded on a dead/degraded site:
#: ``migrate`` re-places them immediately, ``drop`` removes them from
#: the run, ``none`` leaves recovery to the hop chain (the delay mask
#: already excludes dead sites from every candidate placement).
FAULT_POLICIES: tuple[str, ...] = ("migrate", "drop", "none")

#: One-way delay assigned to every path touching an outaged site.  Far
#: above any ``dmax_ms``, so the delay cap masks the site out of every
#: feasible candidate set, while the matrices stay finite (the topology
#: layer rejects inf/NaN).
OUTAGE_DELAY_MS = 1.0e6

#: Chaos generator rng stream tag (ASCII "faul"), distinct from the
#: trace layer's stream tag so fault draws never alias trace draws.
_FAULT_STREAM_TAG = 0x6661756C

_KIND_RANK = {kind: rank for rank, kind in enumerate(FAULT_KINDS)}


@dataclass(frozen=True)
class Fault:
    """One timed fault window on one site.

    ``severity`` is the fraction of capacity lost (``capacity``, in
    ``(0, 1]``) or the relative delay inflation (``latency``: every
    delay through the site scales by ``1 + severity``); outages ignore
    it — a dead site is fully dead.
    """

    kind: str
    site: int
    start_s: float
    end_s: float
    severity: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"fault kind {self.kind!r} is unknown; choose from {FAULT_KINDS}"
            )
        if self.site < 0:
            raise SimulationError(
                f"fault site must be >= 0, got {self.site}"
            )
        if self.start_s < 0:
            raise SimulationError(
                f"fault start must be >= 0, got {self.start_s}"
            )
        if not self.end_s > self.start_s:
            raise SimulationError(
                f"fault window must have end > start, got "
                f"[{self.start_s}, {self.end_s}]"
            )
        if self.kind == "capacity" and not 0.0 < self.severity <= 1.0:
            raise SimulationError(
                f"capacity fault severity must be in (0, 1], got {self.severity}"
            )
        if self.kind == "latency" and self.severity <= 0.0:
            raise SimulationError(
                f"latency fault severity must be > 0, got {self.severity}"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _canonical_key(fault: Fault) -> tuple:
    return (
        fault.start_s,
        fault.end_s,
        _KIND_RANK[fault.kind],
        fault.site,
        fault.severity,
    )


@dataclass(frozen=True)
class FaultSchedule:
    """A canonically ordered set of fault windows plus a recovery policy.

    Faults are sorted on construction, so two schedules declaring the
    same windows in different orders compare equal and replay
    identically (batch-order independence).
    """

    faults: tuple[Fault, ...] = ()
    policy: str = "migrate"

    def __post_init__(self) -> None:
        if self.policy not in FAULT_POLICIES:
            raise SimulationError(
                f"fault policy {self.policy!r} is unknown; "
                f"choose from {FAULT_POLICIES}"
            )
        object.__setattr__(
            self, "faults", tuple(sorted(self.faults, key=_canonical_key))
        )

    def __len__(self) -> int:
        return len(self.faults)

    def transitions(self) -> list[tuple[float, str, Fault]]:
        """``(time_s, phase, fault)`` boundary events, canonically sorted.

        At a shared instant recoveries (``"end"``) apply before new
        faults (``"start"``), so back-to-back windows on one site never
        overlap at the boundary; within a phase the order is the
        canonical fault order.  The sort is total, so the simulator's
        event insertion order — and therefore the trajectory — never
        depends on declaration order.
        """
        events: list[tuple[float, str, Fault]] = []
        for fault in self.faults:
            events.append((fault.start_s, "start", fault))
            events.append((fault.end_s, "end", fault))
        events.sort(
            key=lambda item: (
                item[0],
                0 if item[1] == "end" else 1,
                _canonical_key(item[2]),
            )
        )
        return events

    @classmethod
    def chaos(
        cls,
        num_sites: int,
        duration_s: float,
        rate_per_s: float,
        mean_duration_s: float = 20.0,
        severity: float = 0.5,
        kinds: Sequence[str] = FAULT_KINDS,
        policy: str = "migrate",
        seed: int = 0,
    ) -> "FaultSchedule":
        """Seeded random chaos: Poisson fault arrivals over the horizon.

        Inter-arrival times and durations are exponential; the faulted
        site and kind are uniform.  An outage that would put every site
        down simultaneously is skipped (deterministically — the draw is
        still consumed), so a generated schedule never compiles into
        the all-sites-dead :class:`~repro.errors.SpecError`.
        """
        if num_sites < 1:
            raise SimulationError(f"num_sites must be >= 1, got {num_sites}")
        if rate_per_s < 0:
            raise SimulationError(
                f"chaos rate must be >= 0, got {rate_per_s}"
            )
        if mean_duration_s <= 0:
            raise SimulationError(
                f"chaos mean duration must be positive, got {mean_duration_s}"
            )
        kinds = tuple(kinds)
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise SimulationError(
                    f"chaos kind {kind!r} is unknown; choose from {FAULT_KINDS}"
                )
        if not kinds:
            raise SimulationError("chaos needs at least one fault kind")
        rng = np.random.default_rng([seed, _FAULT_STREAM_TAG])
        faults: list[Fault] = []
        now = 0.0
        while rate_per_s > 0:
            now += float(rng.exponential(1.0 / rate_per_s))
            if now >= duration_s:
                break
            kind = kinds[int(rng.integers(len(kinds)))]
            site = int(rng.integers(num_sites))
            length = float(rng.exponential(mean_duration_s))
            fault = Fault(
                kind=kind,
                site=site,
                start_s=now,
                end_s=now + max(length, 1e-6),
                severity=severity,
            )
            if kind == "outage" and all_sites_outaged_window(
                [*faults, fault], num_sites
            ):
                continue
            faults.append(fault)
        return cls(faults=tuple(faults), policy=policy)


def all_sites_outaged_window(
    faults: Iterable[Fault], num_sites: int
) -> tuple[float, float] | None:
    """The first interval during which *every* site is outaged, or None.

    Such a schedule leaves no feasible placement for any session, so
    the fleet compiler rejects it with a :class:`~repro.errors.
    SpecError` naming exactly this window.
    """
    by_site: dict[int, list[tuple[float, float]]] = {}
    for fault in faults:
        if fault.kind == "outage":
            by_site.setdefault(fault.site, []).append(
                (fault.start_s, fault.end_s)
            )
    if set(by_site) < set(range(num_sites)):
        return None
    # An all-dead interval must begin at some outage's start.
    starts = sorted({start for windows in by_site.values() for start, _ in windows})
    for t in starts:
        ends: list[float] = []
        for site in range(num_sites):
            covering = [
                end for start, end in by_site[site] if start <= t < end
            ]
            if not covering:
                break
            ends.append(max(covering))
        else:
            return (t, min(ends))
    return None


def _scale_capacity(value: float, keep: float) -> float:
    # keep == 0 must yield exactly 0 even for inf capacities (inf * 0
    # is NaN, which the agent model rightly rejects).
    return 0.0 if keep == 0.0 else value * keep


def apply_faults(
    conference: Conference, faults: Iterable[Fault]
) -> Conference:
    """A substrate *view* of ``conference`` under the active faults.

    Copies ``(D, H)`` before touching them (the pristine topology and
    any cached substrate arrays are never written), scales latency rows
    and columns symmetrically, replaces degraded agents with reduced
    capacities, and masks outaged sites with :data:`OUTAGE_DELAY_MS`
    on every off-diagonal path (``D`` keeps its zero diagonal — the
    model requires it, and a dead site's self-path is never priced).
    Outages are applied last, so they dominate any scaling on the same
    site.  The returned view shares users/sessions/representations with
    the pristine conference, so existing :class:`~repro.core.assignment.
    Assignment` vectors stay valid against it.
    """
    faults = sorted(faults, key=_canonical_key)
    if not faults:
        return conference
    d = conference.topology.inter_agent_ms.copy()
    h = conference.topology.agent_user_ms.copy()
    agents = list(conference.agents)
    num_sites = len(agents)
    for fault in faults:
        if fault.site >= num_sites:
            raise SimulationError(
                f"fault site {fault.site} does not exist "
                f"(conference has {num_sites} agents)"
            )
        if fault.kind == "latency":
            factor = 1.0 + fault.severity
            d[fault.site, :] *= factor
            d[:, fault.site] *= factor
            d[fault.site, fault.site] = 0.0
            h[fault.site, :] *= factor
        elif fault.kind == "capacity":
            keep = 1.0 - fault.severity
            agent = agents[fault.site]
            agents[fault.site] = replace(
                agent,
                upload_mbps=_scale_capacity(agent.upload_mbps, keep),
                download_mbps=_scale_capacity(agent.download_mbps, keep),
                transcode_slots=_scale_capacity(agent.transcode_slots, keep),
            )
    for fault in faults:
        if fault.kind == "outage":
            d[fault.site, :] = OUTAGE_DELAY_MS
            d[:, fault.site] = OUTAGE_DELAY_MS
            d[fault.site, fault.site] = 0.0
            h[fault.site, :] = OUTAGE_DELAY_MS
    return Conference(
        conference.users,
        conference.sessions,
        tuple(agents),
        Topology(d, h),
        conference.representations,
        dmax_ms=conference.dmax_ms,
    )


def outaged_sites(faults: Iterable[Fault]) -> frozenset[int]:
    """Sites currently dead under the given active faults."""
    return frozenset(
        fault.site for fault in faults if fault.kind == "outage"
    )


def stranded_sessions(
    conference: Conference,
    assignment,
    sids: Iterable[int],
    sites: frozenset[int] | set[int],
) -> list[int]:
    """Active sessions with any user or transcoding task on a dead site."""
    if not sites:
        return []
    stranded: list[int] = []
    for sid in sids:
        session = conference.sessions[sid]
        if any(
            int(assignment.user_agent[uid]) in sites
            for uid in session.user_ids
        ) or any(
            int(assignment.task_agent[index]) in sites
            for index in conference.session_pair_indices(sid)
        ):
            stranded.append(sid)
    return stranded
