"""Open-loop trace player + stochastic session processes.

The paper's dynamic evaluation (Fig. 5) drives the runtime with one
hand-written wave schedule.  This module opens the churn axis to
arbitrary inputs:

* **Trace files** — CSV or JSONL rows of timestamped session
  ``arrive`` / ``depart`` / ``resize`` events (:func:`parse_trace`,
  :func:`load_trace`), exported back out losslessly
  (:func:`format_trace`, :func:`dump_trace`).  Arrivals at exactly
  ``t=0`` define the initially active set, so a trace is
  self-contained: ``export -> play`` round-trips the schedule.
* **Session processes** — :class:`SessionProcess`, a seeded generator
  of Poisson arrivals with exponential or lognormal holding times,
  plus bursty (two-state MMPP) and diurnal (sinusoidally modulated
  rate) variants.  Generation is bit-for-bit deterministic per seed
  and streams lazily (:meth:`SessionProcess.stream` never
  materializes an unbounded trace).
* **The player** — :class:`TracePlayer`, the open-loop bridge into
  :class:`~repro.runtime.simulation.ConferencingSimulator`: it feeds
  events incrementally (one timestamp batch at a time), validating the
  stream as it goes, instead of requiring a fully materialized
  :class:`~repro.runtime.dynamics.DynamicsSchedule`.

Invariants enforced on every trace (parse errors name the offending
line, semantic errors the offending event): timestamps are
non-negative and non-decreasing, no session arrives twice while
active, departures and resizes reference active sessions only, and the
conference is never emptied — at a shared timestamp arrivals execute
before resizes before departures (stable by sid), the canonical order
of :mod:`repro.runtime.dynamics`.
"""

from __future__ import annotations

import heapq
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SimulationError, SpecError
from repro.runtime.dynamics import (
    _EVENT_RANK,
    DynamicsEvent,
    DynamicsSchedule,
    SessionArrival,
    SessionDeparture,
    SessionResize,
    canonical_event_order,
)

#: Event verbs a trace row may carry, in canonical intra-timestamp order.
TRACE_EVENT_KINDS: tuple[str, ...] = ("arrive", "depart", "resize")

#: Holding-time distributions a session process can draw from.
HOLDING_KINDS: tuple[str, ...] = ("exponential", "lognormal")

#: Session-process families (constant-rate, bursty, day-cycle).
PROCESS_KINDS: tuple[str, ...] = ("poisson", "mmpp", "diurnal")

#: Header line of the CSV trace format.
TRACE_CSV_HEADER = "time_s,event,sid"

#: Entropy tag mixed into every SessionProcess seed ("trac" in hex) so
#: generator streams never alias the simulator stream of the same seed.
_TRACE_STREAM_TAG = 0x74726163

_DYNAMICS_BY_KIND = {
    "arrive": SessionArrival,
    "depart": SessionDeparture,
    "resize": SessionResize,
}
_KIND_BY_DYNAMICS = {cls: kind for kind, cls in _DYNAMICS_BY_KIND.items()}

# Derived from the dynamics rank table so the trace codecs can never
# drift from the canonical execution order.
_KIND_RANK = {kind: _EVENT_RANK[cls] for kind, cls in _DYNAMICS_BY_KIND.items()}


@dataclass(frozen=True)
class TraceEvent:
    """One trace row: session ``sid`` does ``kind`` at ``time_s``.

    ``line`` remembers the 1-based source line of a parsed file purely
    for diagnostics; it never participates in equality, so a parsed
    trace compares equal to the generated trace it was exported from.
    """

    time_s: float
    kind: str
    sid: int
    line: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in TRACE_EVENT_KINDS:
            raise SimulationError(
                f"{_at(self)}: unknown event kind {self.kind!r}; "
                f"choose from {TRACE_EVENT_KINDS}"
            )
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise SimulationError(
                f"{_at(self)}: time_s must be finite and >= 0, "
                f"got {self.time_s}"
            )
        if self.sid < 0:
            raise SimulationError(f"{_at(self)}: sid must be >= 0, got {self.sid}")


def _at(event: TraceEvent) -> str:
    """Diagnostic label naming the offending event (and source line)."""
    where = f"line {event.line}: " if event.line else ""
    return f"trace event {where}{event.kind} sid={event.sid} t={event.time_s:g}"


def sort_trace(events: Iterable[TraceEvent]) -> tuple[TraceEvent, ...]:
    """Events in canonical order: time, then arrive < resize < depart,
    then sid (the same tie-break :mod:`repro.runtime.dynamics` uses)."""
    return tuple(
        sorted(events, key=lambda e: (e.time_s, _KIND_RANK[e.kind], e.sid))
    )


# --------------------------------------------------------------------- #
# File formats                                                          #
# --------------------------------------------------------------------- #


def _parse_csv_line(line: str, lineno: int, origin: str) -> TraceEvent:
    parts = [part.strip() for part in line.split(",")]
    if len(parts) != 3:
        raise SpecError(
            f"{origin}:{lineno}: expected 'time_s,event,sid', got {line!r}"
        )
    raw_time, kind, raw_sid = parts
    try:
        time_s = float(raw_time)
    except ValueError:
        raise SpecError(
            f"{origin}:{lineno}: time_s {raw_time!r} is not a number"
        ) from None
    try:
        sid = int(raw_sid)
    except ValueError:
        raise SpecError(
            f"{origin}:{lineno}: sid {raw_sid!r} is not an integer"
        ) from None
    try:
        return TraceEvent(time_s=time_s, kind=kind, sid=sid, line=lineno)
    except SimulationError as error:
        raise SpecError(f"{origin}:{lineno}: {error}") from None


def _parse_jsonl_line(line: str, lineno: int, origin: str) -> TraceEvent:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise SpecError(f"{origin}:{lineno}: not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise SpecError(f"{origin}:{lineno}: expected an object, got {data!r}")
    unknown = sorted(set(data) - {"time_s", "event", "sid"})
    if unknown:
        raise SpecError(
            f"{origin}:{lineno}: unknown key(s) {unknown}; "
            "expected time_s, event, sid"
        )
    missing = [key for key in ("time_s", "event", "sid") if key not in data]
    if missing:
        raise SpecError(f"{origin}:{lineno}: missing key(s) {missing}")
    time_s, kind, sid = data["time_s"], data["event"], data["sid"]
    if isinstance(time_s, bool) or not isinstance(time_s, (int, float)):
        raise SpecError(f"{origin}:{lineno}: time_s must be a number, got {time_s!r}")
    if not isinstance(kind, str):
        raise SpecError(f"{origin}:{lineno}: event must be a string, got {kind!r}")
    if isinstance(sid, bool) or not isinstance(sid, int):
        raise SpecError(f"{origin}:{lineno}: sid must be an integer, got {sid!r}")
    try:
        return TraceEvent(time_s=float(time_s), kind=kind, sid=sid, line=lineno)
    except SimulationError as error:
        raise SpecError(f"{origin}:{lineno}: {error}") from None


def parse_trace(
    text: str, fmt: str = "csv", origin: str = "trace"
) -> tuple[TraceEvent, ...]:
    """Parse trace text (``csv`` or ``jsonl``) into canonical event order.

    Blank lines and ``#`` comments are skipped; every malformed row
    raises :class:`~repro.errors.SpecError` naming ``origin:line``.
    """
    if fmt not in ("csv", "jsonl"):
        raise SpecError(f"unknown trace format {fmt!r}; choose csv or jsonl")
    events: list[TraceEvent] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if fmt == "csv":
            if line.replace(" ", "") == TRACE_CSV_HEADER:
                continue
            events.append(_parse_csv_line(line, lineno, origin))
        else:
            events.append(_parse_jsonl_line(line, lineno, origin))
    return sort_trace(events)


def format_trace(events: Sequence[TraceEvent], fmt: str = "csv") -> str:
    """Render events as CSV (with header) or JSONL text."""
    if fmt not in ("csv", "jsonl"):
        raise SpecError(f"unknown trace format {fmt!r}; choose csv or jsonl")
    ordered = sort_trace(events)
    if fmt == "csv":
        rows = [TRACE_CSV_HEADER]
        # repr() is the shortest representation that round-trips the
        # float exactly — export -> play must reproduce the schedule.
        rows.extend(f"{event.time_s!r},{event.kind},{event.sid}" for event in ordered)
    else:
        rows = [
            json.dumps(
                {"time_s": event.time_s, "event": event.kind, "sid": event.sid}
            )
            for event in ordered
        ]
    return "\n".join(rows) + "\n"


def trace_format_for_path(path: str | Path) -> str:
    """``csv`` or ``jsonl``, chosen by the file suffix (default csv)."""
    return "jsonl" if Path(path).suffix.lower() in (".jsonl", ".json") else "csv"


def load_trace(path: str | Path, fmt: str = "") -> tuple[TraceEvent, ...]:
    """Read and parse a trace file; ``fmt`` overrides suffix dispatch."""
    path = Path(path)
    if not path.is_file():
        raise SpecError(f"trace file {path} does not exist")
    return parse_trace(
        path.read_text(encoding="utf-8"),
        fmt=fmt or trace_format_for_path(path),
        origin=str(path),
    )


def dump_trace(events: Sequence[TraceEvent], path: str | Path) -> None:
    """Write a trace file, format chosen by the path suffix."""
    path = Path(path)
    path.write_text(format_trace(events, fmt=trace_format_for_path(path)), encoding="utf-8")


# --------------------------------------------------------------------- #
# Trace <-> schedule                                                    #
# --------------------------------------------------------------------- #


def validate_trace(
    events: Sequence[TraceEvent], max_sessions: int | None = None
) -> tuple[int, ...]:
    """Check a trace's invariants; return the initial sid tuple.

    Rejects (naming the offending event, and its source line when the
    trace was parsed from a file): arrivals of already-active sids,
    departures/resizes of inactive sids, departures that would empty the
    conference, an empty active set at t=0, and — when ``max_sessions``
    is given — any sid outside the workload's session pool.
    """
    return _validate_sorted(sort_trace(events), max_sessions)


def _validate_sorted(
    ordered: tuple[TraceEvent, ...], max_sessions: int | None
) -> tuple[int, ...]:
    active: set[int] = set()
    for event in ordered:
        if max_sessions is not None and event.sid >= max_sessions:
            raise SimulationError(
                f"{_at(event)}: sid exceeds the workload's session pool "
                f"[0, {max_sessions})"
            )
        if event.kind == "arrive":
            if event.sid in active:
                raise SimulationError(
                    f"{_at(event)}: session arrives while already active"
                )
            active.add(event.sid)
        elif event.kind == "resize":
            if event.sid not in active:
                raise SimulationError(
                    f"{_at(event)}: session resizes while inactive"
                )
        else:
            if event.sid not in active:
                raise SimulationError(
                    f"{_at(event)}: session departs while inactive"
                )
            if len(active) == 1:
                raise SimulationError(
                    f"{_at(event)}: departure would empty the conference"
                )
            active.remove(event.sid)
    initial = tuple(
        sorted(e.sid for e in ordered if e.kind == "arrive" and e.time_s == 0.0)
    )
    if not initial:
        raise SimulationError(
            "trace has no arrivals at t=0: at least one session must be "
            "active when the run starts"
        )
    return initial


def schedule_from_trace(
    events: Sequence[TraceEvent], max_sessions: int | None = None
) -> DynamicsSchedule:
    """Lower a trace into a validated :class:`DynamicsSchedule`.

    Arrivals at exactly ``t=0`` become the initially active set; every
    other event maps one-to-one onto the dynamics event types.
    """
    ordered = sort_trace(events)
    initial = _validate_sorted(ordered, max_sessions)
    dynamics = tuple(
        _DYNAMICS_BY_KIND[event.kind](event.time_s, event.sid)
        for event in ordered
        if not (event.kind == "arrive" and event.time_s == 0.0)
    )
    return DynamicsSchedule(initial_sids=initial, events=dynamics)


def trace_from_schedule(schedule: DynamicsSchedule) -> tuple[TraceEvent, ...]:
    """Export a schedule as a self-contained trace (initial sessions
    become arrivals at ``t=0``), the inverse of :func:`schedule_from_trace`."""
    events = [TraceEvent(0.0, "arrive", sid) for sid in schedule.initial_sids]
    events.extend(
        TraceEvent(event.time_s, _KIND_BY_DYNAMICS[type(event)], event.sid)
        for event in schedule.events
    )
    return sort_trace(events)


# --------------------------------------------------------------------- #
# Stochastic session processes                                          #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SessionProcess:
    """A seeded stochastic arrival/departure process over a finite pool.

    Arrivals form a Poisson process at ``rate_per_s`` — constant
    (``poisson``), two-state Markov-modulated (``mmpp``: the rate
    switches to ``burst_rate_per_s`` for exponential bursts of mean
    ``mean_burst_s``, back after calms of mean ``mean_calm_s``), or
    sinusoidally modulated with period ``diurnal_period_s`` and relative
    amplitude ``diurnal_amplitude`` (``diurnal``).  Each admitted
    session holds for an exponential or lognormal time with mean
    ``mean_holding_s`` and then departs.

    Sessions draw the lowest free sid from the pool ``[0,
    max_sessions)``; an arrival finding the pool exhausted is blocked
    (dropped — Erlang-loss behaviour), and a departure that would empty
    the conference is deferred to the next admitted arrival's timestamp
    (where canonical ordering lets the arrival land first).  ``initial``
    sessions are active from ``t=0`` (emitted as arrivals at ``t=0``).

    All randomness flows from one :func:`numpy.random.default_rng`
    seeded with ``(seed, stream tag)``: traces are bit-for-bit
    reproducible, and the tag keeps the generator's stream disjoint
    from a simulator seeded with the same integer (identical streams
    make generated event times collide exactly with wake countdowns
    whenever the draw scales match, manufacturing timestamp ties).
    """

    kind: str = "poisson"
    rate_per_s: float = 0.05
    mean_holding_s: float = 60.0
    holding: str = "exponential"
    holding_sigma: float = 0.5
    burst_rate_per_s: float = 0.0
    mean_burst_s: float = 20.0
    mean_calm_s: float = 60.0
    diurnal_period_s: float = 240.0
    diurnal_amplitude: float = 0.5
    initial: int = 1
    max_sessions: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_KINDS:
            raise SpecError(
                f"process kind {self.kind!r} is unknown; "
                f"choose from {PROCESS_KINDS}"
            )
        if self.holding not in HOLDING_KINDS:
            raise SpecError(
                f"holding {self.holding!r} is unknown; "
                f"choose from {HOLDING_KINDS}"
            )
        if not self.rate_per_s > 0:
            raise SpecError(f"rate_per_s must be > 0, got {self.rate_per_s}")
        if not self.mean_holding_s > 0:
            raise SpecError(
                f"mean_holding_s must be > 0, got {self.mean_holding_s}"
            )
        if self.holding == "lognormal" and not self.holding_sigma > 0:
            raise SpecError(
                f"holding_sigma must be > 0, got {self.holding_sigma}"
            )
        if self.kind == "mmpp":
            if self.burst_rate_per_s < self.rate_per_s:
                raise SpecError(
                    "mmpp burst_rate_per_s must be >= rate_per_s, got "
                    f"{self.burst_rate_per_s} < {self.rate_per_s}"
                )
            if not self.mean_burst_s > 0 or not self.mean_calm_s > 0:
                raise SpecError("mmpp dwell means must be > 0")
        if self.kind == "diurnal":
            if not 0.0 <= self.diurnal_amplitude < 1.0:
                raise SpecError(
                    f"diurnal_amplitude must be in [0, 1), "
                    f"got {self.diurnal_amplitude}"
                )
            if not self.diurnal_period_s > 0:
                raise SpecError(
                    f"diurnal_period_s must be > 0, got {self.diurnal_period_s}"
                )
        if self.initial < 1:
            raise SpecError(f"initial must be >= 1, got {self.initial}")
        if self.max_sessions < max(2, self.initial):
            raise SpecError(
                f"max_sessions must be >= max(2, initial), "
                f"got {self.max_sessions} (initial={self.initial})"
            )

    # -- draw helpers -------------------------------------------------- #

    def _holding_time(self, rng: np.random.Generator) -> float:
        if self.holding == "exponential":
            return float(rng.exponential(self.mean_holding_s))
        sigma = self.holding_sigma
        mu = math.log(self.mean_holding_s) - 0.5 * sigma * sigma
        return float(rng.lognormal(mu, sigma))

    def _peak_rate(self) -> float:
        if self.kind == "mmpp":
            return self.burst_rate_per_s
        if self.kind == "diurnal":
            return self.rate_per_s * (1.0 + self.diurnal_amplitude)
        return self.rate_per_s

    def stream(self, horizon_s: float = math.inf) -> Iterator[TraceEvent]:
        """Lazily yield the process's events in canonical time order.

        Without a horizon the iterator is unbounded — consumers cut it
        where they need to — and it never materializes more than the
        active-session heap.  Pass ``horizon_s`` to make the generator
        itself stop once every remaining event lies beyond it: that
        bound also covers the saturated-pool regime, where blocked
        arrivals yield nothing and a consumer waiting for the next
        event to cross its cutoff would otherwise spin through
        ~``rate * holding`` rejected candidates first.
        """
        rng = np.random.default_rng([self.seed, _TRACE_STREAM_TAG])
        peak = self._peak_rate()
        # Two-state MMPP trajectory, advanced lazily alongside thinning.
        bursting = False
        next_switch = (
            float(rng.exponential(self.mean_calm_s))
            if self.kind == "mmpp"
            else math.inf
        )

        def rate_at(t: float) -> float:
            nonlocal bursting, next_switch
            if self.kind == "mmpp":
                while t >= next_switch:
                    bursting = not bursting
                    dwell = self.mean_burst_s if bursting else self.mean_calm_s
                    next_switch += float(rng.exponential(dwell))
                return self.burst_rate_per_s if bursting else self.rate_per_s
            if self.kind == "diurnal":
                phase = math.sin(2.0 * math.pi * t / self.diurnal_period_s)
                return self.rate_per_s * (1.0 + self.diurnal_amplitude * phase)
            return self.rate_per_s

        def next_arrival_after(t: float) -> float:
            # Thinning (Lewis-Shedler): exact for every rate shape here.
            while True:
                t += float(rng.exponential(1.0 / peak))
                if rng.random() * peak <= rate_at(t):
                    return t

        free = list(range(self.initial, self.max_sessions))
        heapq.heapify(free)
        departures: list[tuple[float, int]] = []
        active = 0
        pending: list[TraceEvent] = []
        for sid in range(self.initial):
            pending.append(TraceEvent(0.0, "arrive", sid))
            heapq.heappush(departures, (self._holding_time(rng), sid))
            active += 1
        yield from sort_trace(pending)

        next_arrival = next_arrival_after(0.0)
        while True:
            if next_arrival > horizon_s and (
                not departures or departures[0][0] > horizon_s
            ):
                return
            if departures and departures[0][0] < next_arrival:
                depart_at, sid = heapq.heappop(departures)
                if active == 1:
                    # Deferring to the next arrival's own timestamp keeps
                    # the conference occupied: arrivals sort first.
                    heapq.heappush(departures, (next_arrival, sid))
                    continue
                active -= 1
                heapq.heappush(free, sid)
                yield TraceEvent(depart_at, "depart", sid)
                continue
            arrive_at = next_arrival
            next_arrival = next_arrival_after(arrive_at)
            if not free:
                continue  # pool exhausted: the arrival is blocked
            sid = heapq.heappop(free)
            active += 1
            heapq.heappush(
                departures, (arrive_at + self._holding_time(rng), sid)
            )
            yield TraceEvent(arrive_at, "arrive", sid)

    def trace(self, duration_s: float) -> tuple[TraceEvent, ...]:
        """Materialize the stream up to ``duration_s`` (inclusive)."""
        if not duration_s > 0:
            raise SpecError(f"duration_s must be > 0, got {duration_s}")
        events: list[TraceEvent] = []
        for event in self.stream(horizon_s=duration_s):
            if event.time_s > duration_s:
                break
            events.append(event)
        return sort_trace(events)

    def schedule(self, duration_s: float) -> DynamicsSchedule:
        """Generate and lower a trace in one step."""
        return schedule_from_trace(self.trace(duration_s))


# --------------------------------------------------------------------- #
# The open-loop player                                                  #
# --------------------------------------------------------------------- #


class TracePlayer:
    """Open-loop event feed for the simulator.

    Wraps an initially active sid set plus a (possibly unbounded,
    lazily produced) time-ordered event iterator, and hands the
    simulator one *timestamp batch* at a time — all events sharing the
    next ``time_s``, in canonical order — so the run never materializes
    the full schedule.  Streamed events are validated incrementally
    against the live active set; a violation raises
    :class:`~repro.errors.SimulationError` naming the offending event.
    """

    def __init__(
        self,
        initial_sids: Sequence[int],
        events: Iterable[DynamicsEvent],
        validate: bool = True,
    ) -> None:
        self._initial = tuple(initial_sids)
        if len(set(self._initial)) != len(self._initial):
            raise SimulationError("duplicate initial sessions")
        self._events = iter(events)
        self._validate = validate
        self._active = set(self._initial)
        self._last_time = 0.0
        self._lookahead: DynamicsEvent | None = None
        self._exhausted = False
        self._streamed = 0

    @classmethod
    def from_schedule(cls, schedule: DynamicsSchedule) -> "TracePlayer":
        """Play a pre-validated schedule (no per-event re-validation)."""
        return cls(schedule.initial_sids, iter(schedule.events), validate=False)

    @classmethod
    def from_trace(
        cls, events: Iterable[TraceEvent], initial: int = 0
    ) -> "TracePlayer":
        """Play a trace-event stream open-loop.

        The initial set is the union of sids ``[0, initial)`` and the
        stream's leading arrivals at exactly ``t=0``; an explicit t=0
        arrival of a sid already covered by ``initial`` is a double
        arrival and raises.  The stream is consumed lazily, so
        unbounded generators are fine — but it must already be
        time-ordered (generated streams are).
        """
        iterator = iter(events)
        initial_sids = set(range(initial))
        lookahead: TraceEvent | None = None
        for event in iterator:
            if event.time_s == 0.0 and event.kind == "arrive":
                if event.sid in initial_sids:
                    raise SimulationError(
                        f"{_at(event)}: session arrives while already active"
                    )
                initial_sids.add(event.sid)
            else:
                lookahead = event
                break
        if not initial_sids:
            raise SimulationError(
                "trace has no arrivals at t=0: at least one session must "
                "be active when the run starts"
            )

        def dynamics() -> Iterator[DynamicsEvent]:
            if lookahead is not None:
                yield _DYNAMICS_BY_KIND[lookahead.kind](
                    lookahead.time_s, lookahead.sid
                )
            for event in iterator:
                yield _DYNAMICS_BY_KIND[event.kind](event.time_s, event.sid)

        return cls(sorted(initial_sids), dynamics(), validate=True)

    @property
    def initial_sids(self) -> tuple[int, ...]:
        """Sessions active at ``t=0``."""
        return self._initial

    @property
    def events_streamed(self) -> int:
        """Events handed out so far (the open-loop progress counter)."""
        return self._streamed

    def _check(self, event: DynamicsEvent) -> None:
        if event.time_s < self._last_time:
            raise SimulationError(
                f"trace events out of order: {type(event).__name__} of "
                f"session {event.sid} at t={event.time_s:g} after "
                f"t={self._last_time:g}"
            )
        if not self._validate:
            return
        if event.time_s < 0:
            raise SimulationError(f"negative event time {event.time_s}")
        if isinstance(event, SessionArrival):
            if event.sid in self._active:
                raise SimulationError(f"session {event.sid} arrives twice")
            self._active.add(event.sid)
        elif isinstance(event, SessionResize):
            if event.sid not in self._active:
                raise SimulationError(
                    f"session {event.sid} resizes while inactive"
                )
        else:
            if event.sid not in self._active:
                raise SimulationError(
                    f"session {event.sid} departs while inactive"
                )
            if len(self._active) == 1:
                raise SimulationError(
                    f"session {event.sid} departing at t={event.time_s:g} "
                    "would empty the conference"
                )
            self._active.remove(event.sid)

    def _pull(self) -> DynamicsEvent | None:
        if self._lookahead is not None:
            event, self._lookahead = self._lookahead, None
            return event
        if self._exhausted:
            return None
        event = next(self._events, None)
        if event is None:
            self._exhausted = True
        return event

    def next_batch(self, limit_s: float = math.inf) -> list[DynamicsEvent]:
        """All events at the next timestamp ``<= limit_s`` (empty when the
        stream is exhausted or the next event lies beyond the horizon)."""
        first = self._pull()
        if first is None:
            return []
        if first.time_s > limit_s:
            # Sorted stream: nothing at or before the horizon remains.
            self._exhausted = True
            self._lookahead = None
            return []
        batch = [first]
        while True:
            event = self._pull()
            if event is None:
                break
            if event.time_s != first.time_s:
                self._lookahead = event
                break
            batch.append(event)
        batch = list(canonical_event_order(batch))
        for event in batch:
            self._check(event)
        self._last_time = first.time_s
        self._streamed += len(batch)
        return batch


def replay_speed(events: Sequence[TraceEvent], factor: float) -> tuple[TraceEvent, ...]:
    """Time-scale a trace by ``factor`` (> 1 compresses, < 1 stretches):
    the cheap knob for churn-intensity sweeps over one recorded trace."""
    if not factor > 0:
        raise SpecError(f"replay factor must be > 0, got {factor}")
    return sort_trace(
        replace(event, time_s=event.time_s / factor) for event in events
    )
