"""The conferencing control-plane simulator (paper Sec. V-A).

Binds Alg. 1's jump chain to wall-clock time:

* each active session runs WAIT — an exponential countdown with the
  configured mean (the prototype uses 10 s) — then HOP;
* HOP is serialized across sessions: while one session migrates, the
  others' countdowns are paused for the freeze duration (the
  FREEZE/UNFREEZE handshake), implemented by shifting their pending wake
  events;
* migrations are priced by the dual-feed model and logged;
* metric samples (total inter-agent traffic, average conferencing delay,
  objective, per-session series) are taken on a fixed grid — these are the
  series plotted in Figs. 4-7;
* session arrivals bootstrap a new session against residual capacities and
  join the hop loop; departures release capacity (Fig. 5); resizes
  re-admit a live session against the current residuals;
* infrastructure faults (:mod:`repro.runtime.faults`) swap the solver
  onto a substrate view at each window boundary, recover stranded
  sessions per the schedule's policy, and feed the resilience metrics
  (recovery time, migration churn, SLA-violation seconds).

Session dynamics stream in open-loop: the simulator consumes a
:class:`~repro.runtime.traces.TracePlayer` one timestamp batch at a
time (a :class:`~repro.runtime.dynamics.DynamicsSchedule` is wrapped
into a player transparently), so unbounded generated traces play
without ever materializing a full schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

import repro.telemetry as tele
from repro.core.agrank import AgRankConfig
from repro.core.assignment import Assignment
from repro.core.delay import average_conferencing_delay, session_user_delays
from repro.core.markov import MarkovConfig
from repro.core.objective import ObjectiveEvaluator
from repro.errors import InfeasibleError, SimulationError
from repro.model.conference import Conference
from repro.netsim.noise import NoiseModel
from repro.runtime.dynamics import (
    DynamicsSchedule,
    SessionArrival,
    SessionResize,
)
from repro.runtime.events import EventHandle, EventQueue
from repro.runtime.faults import (
    Fault,
    FaultSchedule,
    apply_faults,
    outaged_sites,
    stranded_sessions,
)
from repro.runtime.live import LiveConference
from repro.runtime.metrics import TimeSeriesRecorder
from repro.runtime.migration import MigrationModel, MigrationRecord
from repro.runtime.traces import TracePlayer

Policy = Literal["nearest", "agrank"]


@dataclass(frozen=True)
class SimulationConfig:
    """Wall-clock parameters of a runtime experiment."""

    duration_s: float = 200.0
    sample_interval_s: float = 1.0
    #: Mean of the WAIT countdown (1 / tau); the prototype uses 10 s.
    hop_interval_mean_s: float = 10.0
    #: How long other sessions stay frozen during one migration.
    freeze_duration_s: float = 0.05
    markov: MarkovConfig = field(default_factory=MarkovConfig)
    initial_policy: Policy = "nearest"
    agrank: AgRankConfig | None = None
    seed: int = 0
    #: Session ids whose individual traffic/delay series are recorded.
    track_sessions: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise SimulationError("duration must be positive")
        if self.sample_interval_s <= 0:
            raise SimulationError("sample interval must be positive")
        if self.hop_interval_mean_s <= 0:
            raise SimulationError("hop interval mean must be positive")
        if self.freeze_duration_s < 0:
            raise SimulationError("freeze duration must be >= 0")


@dataclass
class SimulationResult:
    """Everything a runtime experiment produced."""

    recorder: TimeSeriesRecorder
    migrations: list[MigrationRecord]
    hops: int
    freezes: int
    final_assignment: Assignment
    config: SimulationConfig
    #: Resize (placement-renegotiation) events executed during the run.
    resizes: int = 0
    #: Dynamics events streamed from the trace player (open-loop feed).
    trace_events: int = 0
    #: Fault windows that actually started during the run.
    faults_injected: int = 0
    #: Stranded sessions re-placed by the ``migrate`` fault policy.
    fault_migrations: int = 0
    #: Stranded sessions removed by the ``drop`` policy (or migrate
    #: fallback when no feasible placement remained).
    sessions_dropped: int = 0
    #: Seconds (of sample grid) during which any active session's worst
    #: flow exceeded the delay cap.
    sla_violation_s: float = 0.0
    #: Per-fault recovery time: first violation-free sample after each
    #: fault's start, minus the start (faults unrecovered at the end of
    #: the horizon are not counted).
    recovery_times: tuple[float, ...] = ()

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` of a recorded series (e.g. ``"traffic"``)."""
        return self.recorder.series(name)

    @property
    def total_overhead_kb(self) -> float:
        """Cumulative dual-feed migration overhead."""
        return sum(record.overhead_kb for record in self.migrations)

    def initial_value(self, name: str) -> float:
        _times, values = self.series(name)
        return float(values[0])

    def final_value(self, name: str) -> float:
        return self.recorder.last(name)

    def steady_state_mean(self, name: str, tail_fraction: float = 0.25) -> float:
        """Mean of the series over its trailing ``tail_fraction`` window."""
        times, _values = self.series(name)
        t_start = float(times[-1]) - tail_fraction * (float(times[-1]) - float(times[0]))
        return self.recorder.mean_after(name, t_start)


class ConferencingSimulator:
    """Event-driven execution of Alg. 1 over a conference."""

    def __init__(
        self,
        evaluator: ObjectiveEvaluator,
        schedule: DynamicsSchedule | TracePlayer,
        config: SimulationConfig | None = None,
        noise: NoiseModel | None = None,
        migration_model: MigrationModel | None = None,
        initial_assignment: Assignment | None = None,
        faults: FaultSchedule | None = None,
    ):
        self._evaluator = evaluator
        self._conference: Conference = evaluator.conference
        self._player = (
            TracePlayer.from_schedule(schedule)
            if isinstance(schedule, DynamicsSchedule)
            else schedule
        )
        self._config = config if config is not None else SimulationConfig()
        self._noise = noise
        self._migration_model = (
            migration_model if migration_model is not None else MigrationModel()
        )
        self._initial_assignment = initial_assignment
        self._rng = np.random.default_rng(self._config.seed)

        self._queue = EventQueue()
        self._recorder = TimeSeriesRecorder()
        self._migrations: list[MigrationRecord] = []
        self._wake_handles: dict[int, tuple[EventHandle, float]] = {}
        self._freezes = 0
        self._resizes = 0
        self._pending_trace = 0
        self._live: LiveConference | None = None

        # Fault-injection state: the pristine evaluator/conference are
        # kept so every substrate view derives from unfaulted matrices
        # (never view-of-view); the live engine carries hop counters
        # across the solver swap a fault transition performs.
        self._faults = faults
        self._pristine_evaluator = evaluator
        self._pristine_conference = self._conference
        self._active_faults: list[Fault] = []
        self._faults_injected = 0
        self._fault_migrations = 0
        self._sessions_dropped = 0
        self._sla_violation_s = 0.0
        self._recovery_times: list[float] = []
        self._pending_recovery: list[tuple[Fault, float]] = []

    # ------------------------------------------------------------------ #
    # Event handlers                                                     #
    # ------------------------------------------------------------------ #

    def _draw_wait(self) -> float:
        return float(self._rng.exponential(self._config.hop_interval_mean_s))

    def _schedule_wake(self, sid: int, now: float) -> None:
        wake_at = now + self._draw_wait()
        handle = self._queue.schedule(wake_at, "wake", sid, priority=1)
        self._wake_handles[sid] = (handle, wake_at)

    def _freeze_others(self, hopping_sid: int, now: float) -> None:
        """FREEZE: pause every other session's countdown for the handshake
        duration by pushing their wake events back."""
        duration = self._config.freeze_duration_s
        if duration <= 0:
            return
        self._freezes += 1
        tele.count("sim.freezes")
        for sid, (handle, wake_at) in list(self._wake_handles.items()):
            if sid == hopping_sid:
                continue
            shifted = max(wake_at, now) + duration
            new_handle = self._queue.reschedule(handle, shifted)
            self._wake_handles[sid] = (new_handle, shifted)

    def _on_wake(self, sid: int, now: float) -> None:
        assert self._live is not None
        if sid not in self._wake_handles:
            return  # departed in the meantime
        before = self._live.assignment
        result = self._live.hop(sid)
        if result.moved and result.move is not None:
            self._freeze_others(sid, now)
            self._migrations.append(
                self._migration_model.price(self._conference, before, result.move, sid, now)
            )
        self._schedule_wake(sid, now)

    def _on_sample(self, now: float) -> None:
        assert self._live is not None
        active = self._live.context.active_sessions
        if active:
            traffic = sum(
                self._live.context.session_cost(sid).inter_agent_mbps
                for sid in active
            )
            delay = average_conferencing_delay(
                self._conference, self._live.assignment, active
            )
            self._recorder.record("traffic", now, traffic)
            self._recorder.record("delay", now, delay)
            self._recorder.record("phi", now, self._live.total_phi())
            self._recorder.record("sessions", now, float(len(active)))
            for sid in self._config.track_sessions:
                if sid in active:
                    cost = self._live.context.session_cost(sid)
                    per_user = session_user_delays(
                        self._conference, self._live.assignment, sid
                    )
                    self._recorder.record(f"s{sid}/traffic", now, cost.inter_agent_mbps)
                    self._recorder.record(
                        f"s{sid}/delay", now, float(np.mean(list(per_user.values())))
                    )
        if self._faults is not None:
            self._sample_resilience(active, now)
        tele.count("sim.samples")
        next_sample = now + self._config.sample_interval_s
        if next_sample <= self._config.duration_s + 1e-9:
            self._queue.schedule(next_sample, "sample", priority=1)

    def _on_arrival(self, sid: int, now: float) -> None:
        assert self._live is not None
        self._live.arrive(sid)
        self._schedule_wake(sid, now)
        tele.count("sim.arrivals")
        self._trace_event_done()

    def _on_departure(self, sid: int, now: float) -> None:
        assert self._live is not None
        del now
        handle_entry = self._wake_handles.pop(sid, None)
        if handle_entry is not None:
            handle_entry[0].cancel()
        self._live.depart(sid)
        tele.count("sim.departures")
        self._trace_event_done()

    def _on_resize(self, sid: int, now: float) -> None:
        """Re-admit a live session against the current residual
        capacities (the roster is fixed, so a membership change shows up
        as a placement renegotiation); its WAIT countdown keeps running."""
        assert self._live is not None
        del now
        if sid in self._wake_handles:
            self._live.resize(sid)
            self._resizes += 1
        self._trace_event_done()

    # ------------------------------------------------------------------ #
    # Fault injection                                                    #
    # ------------------------------------------------------------------ #

    def _on_fault(self, payload: tuple[str, Fault], now: float) -> None:
        """Apply one fault boundary: update the active set, rebuild the
        solver against the new substrate view, run the recovery policy."""
        phase, fault = payload
        if phase == "start":
            self._active_faults.append(fault)
            self._faults_injected += 1
            self._pending_recovery.append((fault, now))
            tele.count("sim.faults")
        else:
            self._active_faults.remove(fault)
        self._rebuild_solver()
        self._apply_fault_policy(now)

    def _rebuild_solver(self) -> None:
        """Swap the live engine onto the current substrate view.

        The view evaluator keeps the pristine objective weights and
        per-agent costs (no renormalization mid-run — the objective's
        scales are part of the experiment, not of the substrate); the
        engine carries the assignment, active set, hop counters and the
        rng object across the swap, so the wake/hop draw sequence is
        untouched.
        """
        assert self._live is not None
        if self._active_faults:
            view = apply_faults(self._pristine_conference, self._active_faults)
            evaluator = self._pristine_evaluator.with_conference(view)
        else:
            view = self._pristine_conference
            evaluator = self._pristine_evaluator
        self._conference = view
        self._evaluator = evaluator
        self._live.swap_evaluator(evaluator)

    def _apply_fault_policy(self, now: float) -> None:
        """Recover sessions stranded on outaged sites per the policy."""
        assert self._faults is not None and self._live is not None
        dead = outaged_sites(self._active_faults)
        if not dead or self._faults.policy == "none":
            return
        stranded = stranded_sessions(
            self._conference,
            self._live.assignment,
            self._live.context.active_sessions,
            dead,
        )
        for sid in stranded:
            self._live.depart(sid)
            if self._faults.policy == "migrate":
                try:
                    assignment = self._live.placement_for(sid)
                except InfeasibleError:
                    self._drop_session(sid)
                    continue
                self._live.context.add_session(sid, assignment)
                self._fault_migrations += 1
                tele.count("sim.fault_migrations")
            else:  # "drop"
                self._drop_session(sid)

    def _drop_session(self, sid: int) -> None:
        entry = self._wake_handles.pop(sid, None)
        if entry is not None:
            entry[0].cancel()
        self._sessions_dropped += 1
        tele.count("sim.sessions_dropped")

    def _sample_resilience(self, active: list[int], now: float) -> None:
        """Per-sample SLA/recovery bookkeeping (fault runs only).

        A sample is *violating* when any active session's worst flow
        exceeds the delay cap on the current substrate view; violating
        samples accumulate SLA-violation seconds, and the first clean
        sample after a fault's start resolves that fault's recovery
        time.  The ``stranded`` series counts sessions still touching a
        dead site (zero at every sample under the ``migrate`` policy —
        the property suite pins exactly that).
        """
        assert self._live is not None
        assignment = self._live.assignment
        profile = self._evaluator.profile
        violating = False
        for sid in active:
            _cost, max_flow = profile.session_delays(
                assignment.user_agent, assignment.task_agent, sid
            )
            if max_flow > self._conference.dmax_ms + 1e-9:
                violating = True
                break
        if violating:
            self._sla_violation_s += self._config.sample_interval_s
        elif self._pending_recovery:
            for _fault, started in self._pending_recovery:
                self._recovery_times.append(now - started)
            self._pending_recovery.clear()
        dead = outaged_sites(self._active_faults)
        stranded = (
            len(stranded_sessions(self._conference, assignment, active, dead))
            if dead
            else 0
        )
        self._recorder.record("stranded", now, float(stranded))

    # ------------------------------------------------------------------ #
    # Open-loop trace feed                                               #
    # ------------------------------------------------------------------ #

    _TRACE_KINDS = {
        SessionArrival: "arrival",
        SessionResize: "resize",
    }

    def _pump_trace(self) -> None:
        """Schedule the player's next timestamp batch (open-loop: one
        batch in flight at a time, pulled only when the previous batch
        has fully executed — unbounded streams never pile up)."""
        batch = self._player.next_batch(limit_s=self._config.duration_s)
        if batch:
            tele.count("trace.events", len(batch))
        self._pending_trace = len(batch)
        for event in batch:
            kind = self._TRACE_KINDS.get(type(event), "departure")
            self._queue.schedule(event.time_s, kind, event.sid)

    def _trace_event_done(self) -> None:
        self._pending_trace -= 1
        if self._pending_trace == 0:
            self._pump_trace()

    # ------------------------------------------------------------------ #
    # Main loop                                                          #
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Execute the simulation and return all recorded artifacts."""
        with tele.span("sim.bootstrap"):
            self._live = LiveConference.bootstrap(
                self._evaluator,
                list(self._player.initial_sids),
                markov=self._config.markov,
                initial_policy=self._config.initial_policy,
                agrank=self._config.agrank,
                noise=self._noise,
                rng=self._rng,
                initial_assignment=self._initial_assignment,
            )
        for sid in self._player.initial_sids:
            self._schedule_wake(sid, 0.0)
        self._pump_trace()
        if self._faults is not None:
            # Priority -1: at a shared instant faults apply before the
            # dynamics (0) and samples/wakes (1) they influence.
            for time_s, phase, fault in self._faults.transitions():
                if time_s > self._config.duration_s + 1e-9:
                    continue
                self._queue.schedule(
                    time_s, "fault", (phase, fault), priority=-1
                )
        self._queue.schedule(0.0, "sample", priority=1)

        while True:
            popped = self._queue.pop()
            if popped is None:
                break
            now, handle = popped
            if now > self._config.duration_s + 1e-9:
                break
            if handle.kind == "wake":
                self._on_wake(handle.payload, now)
            elif handle.kind == "sample":
                self._on_sample(now)
            elif handle.kind == "arrival":
                self._on_arrival(handle.payload, now)
            elif handle.kind == "departure":
                self._on_departure(handle.payload, now)
            elif handle.kind == "resize":
                self._on_resize(handle.payload, now)
            elif handle.kind == "fault":
                self._on_fault(handle.payload, now)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {handle.kind!r}")

        return SimulationResult(
            recorder=self._recorder,
            migrations=self._migrations,
            hops=self._live.hops,
            freezes=self._freezes,
            final_assignment=self._live.assignment,
            config=self._config,
            resizes=self._resizes,
            trace_events=self._player.events_streamed,
            faults_injected=self._faults_injected,
            fault_migrations=self._fault_migrations,
            sessions_dropped=self._sessions_dropped,
            sla_violation_s=self._sla_violation_s,
            recovery_times=tuple(self._recovery_times),
        )
