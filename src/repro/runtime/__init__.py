"""Discrete-event runtime: the prototype-system substitute.

The paper's Sec. V-A experiments run a C++/OpenCV prototype on EC2: each
session's initiator agent executes Alg. 1's WAIT/HOP loop (exponential
countdown, mean 10 s), hops are serialized across sessions with
FREEZE/UNFREEZE messages, migrations dual-feed briefly to avoid frozen
frames, and the operator observes inter-agent traffic and conferencing
delay over wall-clock time.

This package reproduces that control plane as a deterministic
discrete-event simulation:

* :mod:`repro.runtime.events` — the event queue (lazy cancellation, so
  FREEZE can shift pending countdowns);
* :mod:`repro.runtime.metrics` — time-series recording;
* :mod:`repro.runtime.migration` — the dual-feed overhead model
  (~13.2 kb per 240p migration at a 30 ms overlap, per the paper);
* :mod:`repro.runtime.dynamics` — session arrival/departure/resize
  schedules (Fig. 5) with a canonical intra-timestamp event order;
* :mod:`repro.runtime.traces` — trace file IO (CSV/JSONL), seeded
  stochastic session processes (Poisson / MMPP / diurnal) and the
  open-loop :class:`~repro.runtime.traces.TracePlayer`;
* :mod:`repro.runtime.simulation` — the simulator binding a
  :class:`~repro.core.markov.MarkovAssignmentSolver` to wall-clock time,
  fed one trace batch at a time.
"""

from repro.runtime.dynamics import (
    DynamicsSchedule,
    SessionArrival,
    SessionDeparture,
    SessionResize,
)
from repro.runtime.events import EventQueue
from repro.runtime.metrics import TimeSeriesRecorder
from repro.runtime.migration import MigrationModel, MigrationRecord
from repro.runtime.simulation import (
    ConferencingSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.runtime.traces import (
    SessionProcess,
    TraceEvent,
    TracePlayer,
    dump_trace,
    format_trace,
    load_trace,
    parse_trace,
    schedule_from_trace,
    trace_from_schedule,
)

__all__ = [
    "ConferencingSimulator",
    "DynamicsSchedule",
    "EventQueue",
    "MigrationModel",
    "MigrationRecord",
    "SessionArrival",
    "SessionDeparture",
    "SessionProcess",
    "SessionResize",
    "SimulationConfig",
    "SimulationResult",
    "TimeSeriesRecorder",
    "TraceEvent",
    "TracePlayer",
    "dump_trace",
    "format_trace",
    "load_trace",
    "parse_trace",
    "schedule_from_trace",
    "trace_from_schedule",
]
