"""Time-series recording for the runtime experiments."""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import SimulationError


class TimeSeriesRecorder:
    """Accumulates named ``(time, value)`` streams and exports arrays."""

    def __init__(self) -> None:
        self._series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record(self, name: str, time_s: float, value: float) -> None:
        """Append one observation to series ``name``."""
        points = self._series[name]
        if points and time_s < points[-1][0] - 1e-12:
            raise SimulationError(
                f"series {name!r}: non-monotonic time {time_s} after {points[-1][0]}"
            )
        points.append((time_s, float(value)))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._series))

    def __contains__(self, name: object) -> bool:
        return name in self._series

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` arrays of one series."""
        points = self._series.get(name)
        if not points:
            raise SimulationError(f"no series named {name!r}; have {self.names}")
        data = np.asarray(points, dtype=float)
        return data[:, 0], data[:, 1]

    def last(self, name: str) -> float:
        """The latest value of a series."""
        _times, values = self.series(name)
        return float(values[-1])

    def mean_after(self, name: str, t_start: float) -> float:
        """Mean of a series restricted to ``time >= t_start`` (steady-state
        averages for EXPERIMENTS.md)."""
        times, values = self.series(name)
        mask = times >= t_start
        if not mask.any():
            raise SimulationError(
                f"series {name!r} has no samples at or after t={t_start}"
            )
        return float(values[mask].mean())
