"""Event queue with lazy cancellation.

A standard heap-backed future-event list.  Events can be cancelled or
rescheduled (FREEZE shifts pending countdowns); cancellation is lazy —
superseded entries stay in the heap and are skipped on pop — which keeps
every operation O(log n).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass(order=True)
class _Entry:
    time_s: float
    priority: int
    sequence: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to one scheduled event."""

    __slots__ = ("kind", "payload", "priority", "cancelled")

    def __init__(self, kind: str, payload: Any, priority: int = 0):
        self.kind = kind
        self.payload = payload
        self.priority = priority
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = " (cancelled)" if self.cancelled else ""
        return f"EventHandle({self.kind}, {self.payload!r}){state}"


class EventQueue:
    """Time-ordered queue of :class:`EventHandle` items."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Simulation time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.handle.cancelled)

    def schedule(
        self,
        time_s: float,
        kind: str,
        payload: Any = None,
        priority: int = 0,
    ) -> EventHandle:
        """Add an event; ``time_s`` must not precede the current time.

        Ties at one timestamp pop in ``(priority, insertion order)``:
        lower-priority-number events first, so a caller can guarantee an
        ordering between event classes independent of when each was
        scheduled.  The simulator pins fault transitions (priority -1)
        before session dynamics (0) before samples and wakes (1) at a
        shared instant — an arrival coinciding with an outage bootstraps
        against the already-masked substrate view.
        """
        if time_s < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule {kind!r} at {time_s:.6f}s in the past "
                f"(now={self._now:.6f}s)"
            )
        handle = EventHandle(kind, payload, priority)
        heapq.heappush(
            self._heap, _Entry(time_s, priority, next(self._counter), handle)
        )
        return handle

    def reschedule(self, handle: EventHandle, time_s: float) -> EventHandle:
        """Cancel ``handle`` and schedule an identical event at ``time_s``."""
        handle.cancel()
        return self.schedule(time_s, handle.kind, handle.payload, handle.priority)

    def pop(self) -> tuple[float, EventHandle] | None:
        """Next live event as ``(time, handle)``, or None when drained."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.handle.cancelled:
                continue
            self._now = entry.time_s
            return entry.time_s, entry.handle
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without popping it."""
        while self._heap and self._heap[0].handle.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_s if self._heap else None
