"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime infeasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A conference model is malformed or internally inconsistent."""


class UnknownEntityError(ModelError):
    """A user, session, agent or representation id does not exist."""


class CapacityError(ReproError):
    """An operation would violate an agent capacity constraint."""


class InfeasibleError(ReproError):
    """No feasible assignment exists (or none could be constructed).

    Carries an optional :attr:`report` with the violated constraints of the
    best candidate considered, to aid debugging of over-constrained
    scenarios.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class ConvergenceError(ReproError):
    """An iterative procedure failed to converge within its budget."""


class SolverError(ReproError):
    """A solver was misconfigured or applied to an unsupported instance."""


class SimulationError(ReproError):
    """The discrete-event runtime reached an invalid state."""


class ExperimentError(ReproError):
    """An experiment runner received invalid parameters."""


class SpecError(ReproError):
    """A declarative fleet scenario spec is malformed or references
    unknown entities (regions, sites, solvers, experiments)."""
