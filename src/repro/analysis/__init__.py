"""Analysis utilities for experiment and fleet outputs.

* :mod:`repro.analysis.series` — time-series resampling, smoothing and
  the JSON-safe downsampling used by persisted records;
* :mod:`repro.analysis.stats` — box-plot statistics (Fig. 8), summary
  aggregates and bootstrap confidence intervals;
* :mod:`repro.analysis.convergence` — convergence-time detection on the
  Figs. 4-6 series;
* :mod:`repro.analysis.tables` — aligned ASCII table rendering (Table II);
* :mod:`repro.analysis.report` — the versioned ``results.jsonl`` record
  schema and cross-fleet comparison reports (spec diffs vs metric
  deltas, terminal + CSV);
* :mod:`repro.analysis.html` — the single-file HTML dashboard with
  inline SVG sparklines over the same comparison.
"""

from repro.analysis.convergence import convergence_time
from repro.analysis.html import render_html, sparkline_svg
from repro.analysis.report import (
    ENVELOPE_FIELDS,
    FLEET_METRIC_FIELDS,
    RECORD_STATUSES,
    REPORT_METRICS,
    SCHEMA_VERSION,
    SUMMARY_METRICS,
    FleetComparison,
    FleetRun,
    MetricStats,
    aggregate_records,
    canonical_results_digest,
    compare_fleets,
    comparison_csv,
    flatten_spec,
    load_fleet_run,
    load_fleet_runs,
    load_result_records,
    metric_stats,
    render_comparison,
    render_run_report,
    spec_diff,
    upgrade_record,
    validate_record,
    write_records,
)
from repro.analysis.series import downsample_series, moving_average, resample_step
from repro.analysis.stats import BoxStats, bootstrap_ci, box_stats, summarize
from repro.analysis.tables import render_table

__all__ = [
    "BoxStats",
    "ENVELOPE_FIELDS",
    "FLEET_METRIC_FIELDS",
    "FleetComparison",
    "FleetRun",
    "MetricStats",
    "RECORD_STATUSES",
    "REPORT_METRICS",
    "SCHEMA_VERSION",
    "SUMMARY_METRICS",
    "aggregate_records",
    "bootstrap_ci",
    "box_stats",
    "canonical_results_digest",
    "compare_fleets",
    "comparison_csv",
    "convergence_time",
    "downsample_series",
    "flatten_spec",
    "load_fleet_run",
    "load_fleet_runs",
    "load_result_records",
    "metric_stats",
    "moving_average",
    "render_comparison",
    "render_html",
    "render_run_report",
    "render_table",
    "resample_step",
    "spec_diff",
    "sparkline_svg",
    "summarize",
    "upgrade_record",
    "validate_record",
    "write_records",
]
