"""Analysis utilities for experiment outputs.

* :mod:`repro.analysis.series` — time-series resampling and smoothing;
* :mod:`repro.analysis.stats` — box-plot statistics (Fig. 8) and summary
  aggregates;
* :mod:`repro.analysis.convergence` — convergence-time detection on the
  Figs. 4-6 series;
* :mod:`repro.analysis.tables` — aligned ASCII table rendering (Table II).
"""

from repro.analysis.convergence import convergence_time
from repro.analysis.series import resample_step, moving_average
from repro.analysis.stats import BoxStats, box_stats, summarize
from repro.analysis.tables import render_table

__all__ = [
    "BoxStats",
    "box_stats",
    "convergence_time",
    "moving_average",
    "render_table",
    "resample_step",
    "summarize",
]
